"""Quickstart: the Pro-Temp workflow in under a minute.

1. Build the paper's Niagara-8 platform (floorplan + thermal RC + power).
2. Solve one design point of the convex program (Phase 1).
3. Build a small frequency table and do a run-time lookup (Phase 2).

Run:  python examples/quickstart.py
"""

from repro import Platform
from repro.core import ProTempOptimizer, build_frequency_table
from repro.units import mhz, to_mhz

def main() -> None:
    # 1. The evaluation platform: 8 cores, 1 GHz / 4 W, t_max = 100 C.
    platform = Platform.niagara8()
    print(platform.floorplan.summary())
    print()

    # 2. One Phase-1 solve: starting at 85 C everywhere, require an average
    #    of 500 MHz across the cores while never exceeding 100 C during the
    #    next 100 ms DFS window.
    optimizer = ProTempOptimizer(platform, step_subsample=5)
    assignment = optimizer.solve(t_start=85.0, f_target=mhz(500))
    print(f"feasible: {assignment.feasible}")
    print(
        "per-core frequencies (MHz):",
        [f"{to_mhz(f):.0f}" for f in assignment.frequencies],
    )
    print(f"predicted peak temperature: {assignment.predicted_peak:.1f} C")
    print(f"predicted max core gradient: {assignment.predicted_gradient:.2f} C")
    print()

    # Periphery cores (P1, P4, P5, P8) sit next to cooler cache/buffer
    # blocks, so the optimizer runs them faster than the sandwiched middle
    # cores (P2, P3, P6, P7) — the paper's Figure 10 effect.

    # 3. A small Phase-1 table and a run-time lookup.
    table = build_frequency_table(
        optimizer,
        t_grid=[70.0, 85.0, 95.0, 100.0],
        f_grid=[mhz(f) for f in (250, 500, 750, 1000)],
    )
    lookup = table.lookup(t_current=91.0, f_required=mhz(600))
    print(
        f"lookup(91 C, 600 MHz): serve {to_mhz(lookup.satisfied_target):.0f} "
        f"MHz -> {[f'{to_mhz(f):.0f}' for f in lookup.frequencies]}"
    )
    print(f"(shutdown window: {lookup.shutdown})")


if __name__ == "__main__":
    main()
