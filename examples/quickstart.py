"""Quickstart: the declarative scenario API in under a minute.

A scenario = platform x workload x policy x sim knobs x seed, all pure
data.  The ScenarioRunner materializes specs against the registries, builds
each distinct Phase-1 table exactly once, and runs the closed-loop
simulation.

Run:  python examples/quickstart.py
"""

from repro import ScenarioRunner, ScenarioSpec, WorkloadSpec

# Small table grids so the Phase-1 build finishes in seconds; drop the
# params entirely to use the full default design grid.
PROTEMP = {
    "name": "protemp",
    "params": {
        "t_grid": [70.0, 85.0, 95.0, 100.0],
        "f_grid": [2e8, 4e8, 6e8, 8e8, 1e9],
        "step_subsample": 10,
    },
}


def main() -> None:
    # 1. One scenario: the paper's reactive baseline on the mixed workload.
    spec = ScenarioSpec(
        platform="niagara8",
        workload=WorkloadSpec("mixed", duration=10.0),
        policy="basic-dfs",
        seed=7,
    )
    print(f"spec {spec.spec_hash}: {spec.label}")
    print(spec.to_json()[:72] + "...")  # JSON round-trippable
    print()

    # 2. A grid: both policies, two seeds — four scenarios, one table build.
    runner = ScenarioRunner()
    outcomes = runner.run_many(
        ScenarioSpec.grid(spec, policy=["basic-dfs", PROTEMP], seed=[7, 8])
    )
    print(f"{'scenario':<34s} {'peak C':>7s} {'>100C %':>8s} {'wait ms':>8s}")
    for outcome in outcomes:
        metrics = outcome.result.metrics
        print(
            f"{outcome.spec.label:<34s} {metrics.peak_temperature:7.1f} "
            f"{metrics.violation_fraction * 100:7.2f}% "
            f"{metrics.waiting.mean * 1e3:8.1f}"
        )
    print(f"({runner.tables_built} Phase-1 table built, shared by both "
          "Pro-Temp scenarios)")
    print()
    print("Basic-DFS overshoots 100 C (Figure 1); Pro-Temp never does")
    print("(Figure 2) — and still serves tasks with lower waiting times.")
    print()
    print("Same grid from the command line:")
    print("  protemp run examples/scenario_config.json --workers 4")


if __name__ == "__main__":
    main()
