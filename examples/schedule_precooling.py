"""Multi-window schedules and pre-cooling (extension, after reference [24]).

The Phase-1 table decides one window at a time.  When the demand profile is
known a few windows ahead (a scheduled encode burst, a periodic render), the
`ScheduleOptimizer` plans across windows jointly — e.g. *pre-cooling* the
chip so a burst that is thermally illegal from the current state becomes
legal two windows later.

Run:  python examples/schedule_precooling.py
"""

import numpy as np

from repro import Platform
from repro.core import ProTempOptimizer, ScheduleOptimizer
from repro.units import to_mhz


def main() -> None:
    platform = Platform.niagara8()
    single = ProTempOptimizer(platform, step_subsample=5)
    sched = ScheduleOptimizer(platform, horizon_windows=3, step_subsample=5)

    t_hot = 95.0
    # What the platform could serve right now vs after two idle windows.
    now = single.max_feasible_target(t_hot)
    idle = platform.power.injection_matrix() @ np.zeros(platform.n_cores)
    cooled = platform.thermal.simulate(t_hot, idle, 2 * sched.response.m)[-1]
    later = single.max_feasible_target(cooled)
    print(f"starting at {t_hot:.0f} C:")
    print(f"  max average frequency right now:        {to_mhz(now):6.0f} MHz")
    print(f"  after two idle windows (~{np.max(cooled):.1f} C): "
          f"{to_mhz(later):6.0f} MHz")
    print()

    burst = 0.9 * later
    print(f"demand profile: [idle, idle, burst={to_mhz(burst):.0f} MHz]")
    print(f"  burst feasible in a single window from {t_hot:.0f} C? "
          f"{single.is_feasible(t_hot, burst)}")

    result = sched.solve(t_hot, np.array([0.0, 0.0, burst]))
    print(f"  3-window schedule feasible? {result.feasible}")
    if result.feasible:
        for w, (avg, peak) in enumerate(
            zip(result.average_frequencies, result.window_peaks)
        ):
            print(
                f"    window {w}: avg {to_mhz(avg):6.0f} MHz, "
                f"peak {peak:5.1f} C"
            )
        print()
        print("The optimizer idles the first two windows (pre-cooling) and")
        print("then legally serves a burst that was infeasible on arrival.")


if __name__ == "__main__":
    main()
