"""Sharded grid runs with a persistent outcome store, then a merge.

Demonstrates the million-cell-grid workflow from docs/SCALING.md on a
small, fast grid:

1. slice one scenario grid into two deterministic shards (on real
   deployments each shard runs on its own host — here, two runners);
2. run each shard with its own outcome store directory;
3. merge the shard stores (``protemp merge`` does the same from the CLI)
   and check the union matches an unsharded run bit-identically;
4. re-run the full grid over the merged store: every cell replays, zero
   simulations, zero table builds.

Run:  python examples/sharded_grid.py
"""

import tempfile
from pathlib import Path

from repro import ScenarioRunner, ScenarioSpec, WorkloadSpec
from repro.scenario import DirectoryOutcomeStore, merge_stores, shard_specs


def main() -> None:
    # 2 policies x 2 workloads x 2 seeds on the fast 3-core row platform.
    specs = ScenarioSpec.grid(
        ScenarioSpec(
            platform={"name": "core-row", "params": {"n_cores": 3}},
            t_initial=60.0,
        ),
        policy=["no-tc", "basic-dfs"],
        workload=[
            WorkloadSpec("poisson", 2.0, {"offered_load": 0.4}),
            WorkloadSpec("compute", 2.0),
        ],
        seed=[0, 1],
    )
    print(f"grid: {len(specs)} scenarios")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # -- sharded runs (host 0 and host 1) --------------------------
        for index in range(2):
            shard = shard_specs(specs, index, 2)
            runner = ScenarioRunner(outcome_store=tmp / f"shard{index}")
            runner.run_many(shard)
            print(
                f"shard {index}/2: {len(shard)} cells, "
                f"{runner.scenarios_executed} executed"
            )

        # -- merge (what `protemp merge shard0 shard1` does) -----------
        merged = merge_stores(
            [DirectoryOutcomeStore(tmp / f"shard{i}") for i in range(2)]
        )
        merged_store = DirectoryOutcomeStore(tmp / "merged")
        for record in merged.records:
            merged_store.put(record)
        print(
            f"merged: {len(merged.records)} outcomes "
            f"({merged.duplicates} duplicates dropped)"
        )

        # -- the union is bit-identical to an unsharded run ------------
        unsharded = ScenarioRunner().run_many(specs)
        expected = sorted(
            (o.data_row() for o in unsharded), key=lambda r: r["spec_hash"]
        )
        assert merged.summary_rows() == expected
        print("merged summary rows == unsharded run: OK")

        # -- a warm store answers the whole grid without simulating ----
        warm = ScenarioRunner(outcome_store=merged_store)
        replayed = warm.run_many(specs)
        assert warm.scenarios_executed == 0
        assert all(o.outcome_cache_hit for o in replayed)
        print(
            f"warm re-run: {warm.outcomes_replayed} replayed, "
            f"{warm.scenarios_executed} executed, "
            f"{warm.tables_built} tables built"
        )
        print(
            f"{'scenario':<34s} {'peak C':>7s} {'wait ms':>8s}  source"
        )
        for outcome in replayed[:4]:
            print(
                f"{outcome.spec.label:<34s} {outcome.peak_c:7.1f} "
                f"{outcome.mean_wait_s * 1e3:8.1f}  outcome store"
            )


if __name__ == "__main__":
    main()
