"""Uniform vs per-core (variable) frequency assignment — Figures 9 and 10.

Niagara-class designs often clock all cores together.  The paper shows the
convex optimizer can buy extra performance by exploiting the floorplan:
periphery cores (next to the cooler L2 caches/buffers) can legally run
faster than the middle cores sandwiched between hot neighbours.

Run:  python examples/uniform_vs_variable.py
"""

from repro import Platform
from repro.analysis import run_feasibility_sweep, run_per_core_frequency


def main() -> None:
    platform = Platform.niagara8()

    print("Figure 9 — max feasible average frequency (MHz):")
    sweep = run_feasibility_sweep(platform=platform)
    print(f"  {'start C':>8s} {'uniform':>8s} {'variable':>9s} {'gain':>6s}")
    for t, u, v in zip(sweep.temps, sweep.uniform_mhz, sweep.variable_mhz):
        gain = (v / u - 1) * 100 if u > 0 else float("inf")
        print(f"  {t:8.0f} {u:8.0f} {v:9.0f} {gain:5.1f}%")
    print()

    print("Figure 10 — per-core frequencies at a binding target (MHz):")
    percore = run_per_core_frequency(platform=platform)
    print(f"  {'start C':>8s} {'P1 (edge)':>10s} {'P2 (middle)':>12s}")
    for t, p1, p2 in zip(percore.temps, percore.p1_mhz, percore.p2_mhz):
        print(f"  {t:8.0f} {p1:10.0f} {p2:12.0f}")
    print()
    print("P1 runs faster than P2 at every design point: the optimizer")
    print("compensates the floorplan's thermal asymmetry (section 5.3).")


if __name__ == "__main__":
    main()
