"""Serve-and-submit round trip: warm caches across submissions.

Boots the scenario service in-process on an ephemeral port (the same
stack ``protemp serve`` runs), submits a small policy-comparison grid
twice through the HTTP client, and prints the streamed NDJSON events —
the first submission executes every cell, the second replays everything
from the outcome store without a single solve.

Run with ``PYTHONPATH=src python examples/serve_and_submit.py``.
"""

from __future__ import annotations

import json
import threading

from repro.scenario import MemoryOutcomeStore
from repro.serving import ScenarioService, ServiceClient, make_server

CONFIG = {
    "base": {
        "platform": {"name": "core-row", "params": {"n_cores": 3}},
        "workload": {
            "name": "poisson",
            "duration": 2.0,
            "params": {"offered_load": 0.4},
        },
        "t_initial": 60.0,
    },
    "grid": {"policy": ["no-tc", "basic-dfs"], "seed": [0, 1]},
}


def submit_once(client: ServiceClient, label: str) -> None:
    print(f"--- {label}")
    for event in client.submit_and_stream(CONFIG):
        kind = event["event"]
        if kind == "outcome":
            row = event["row"]
            source = "store" if event["outcome_cache_hit"] else "solved"
            print(
                f"  [{source}] {row['scenario']:<34s} "
                f"peak {row['peak_c']:.1f} C, "
                f"wait {row['mean_wait_s'] * 1e3:.1f} ms"
            )
        elif kind == "done":
            print(
                f"  done: {event['scenarios_executed']} executed, "
                f"{event['outcomes_replayed']} from store "
                f"in {event['wall_time_s']:.2f}s"
            )


def main() -> None:
    service = ScenarioService(max_workers=2, outcome_store=MemoryOutcomeStore())
    server = make_server(service, port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        print("health:", json.dumps(client.health()["runner"]))
        submit_once(client, "cold submission (every cell solves)")
        submit_once(client, "warm submission (everything replays)")
        print("health:", json.dumps(client.health()["runner"]))
    finally:
        service.drain()
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
