"""Apply Pro-Temp to a custom 16-core platform.

Everything in the library is floorplan-driven, so bringing up a new chip is:
build (or load) a floorplan, wrap it in a Platform, and hand it to the same
optimizer/controller/simulator stack used for the Niagara-8 reproduction.

This example builds a 4x4 core grid with a surrounding cache ring, checks
its thermal calibration, and compares its feasibility boundary against the
8-core platform.

Run:  python examples/custom_floorplan.py
"""


from repro import Platform
from repro.core import ProTempOptimizer
from repro.floorplan import core_grid_with_cache_ring
from repro.thermal.calibration import calibration_report, format_report
from repro.units import mm, to_mhz


def main() -> None:
    floorplan = core_grid_with_cache_ring(
        4, 4, core_width=mm(2.2), core_height=mm(2.2), ring_width=mm(2.5),
        name="mesh16",
    )
    # Smaller cores at a lower per-core budget: 16 x 2.5 W.
    platform = Platform.from_floorplan(floorplan, p_max=2.5)
    print(floorplan.summary())
    print()
    report = calibration_report(platform)
    print(format_report(report, platform.core_names))
    print()

    optimizer = ProTempOptimizer(platform, step_subsample=5)
    print("feasibility boundary (max average MHz) vs starting temperature:")
    for t_start in (47.0, 67.0, 87.0, 97.0):
        boundary = optimizer.max_feasible_target(t_start)
        print(f"  {t_start:5.1f} C -> {to_mhz(boundary):6.0f} MHz")
    print()

    # Corner cores vs centre cores at a binding point.
    t_start = 87.0
    target = 0.95 * optimizer.max_feasible_target(t_start)
    assignment = optimizer.solve(t_start, target)
    freqs = assignment.frequencies
    names = platform.core_names
    by_freq = sorted(zip(freqs, names), reverse=True)
    print(f"assignment at {t_start:.0f} C, target {to_mhz(target):.0f} MHz:")
    print("  fastest cores:", [f"{n}={to_mhz(f):.0f}" for f, n in by_freq[:4]])
    print("  slowest cores:", [f"{n}={to_mhz(f):.0f}" for f, n in by_freq[-4:]])
    print()
    print("Corner cores (two ring edges) get the highest frequencies;")
    print("centre cores (four hot neighbours) get the lowest — the same")
    print("physics as the paper's P1-vs-P2 split, discovered automatically.")


if __name__ == "__main__":
    main()
