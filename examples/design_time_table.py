"""Phase 1 end-to-end: build, inspect and persist a frequency table.

This is the paper's Figure 3 design-time flow: sweep starting temperatures
and target frequencies, solve the convex program at each point, and store
the resulting per-core frequency vectors (Figure 4) for the run-time
controller.

Run:  python examples/design_time_table.py [out.json]
"""

import sys
import time

from repro import Platform
from repro.core import ProTempOptimizer, build_frequency_table
from repro.units import mhz, to_mhz


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "examples/.cache/table.json"
    platform = Platform.niagara8()
    optimizer = ProTempOptimizer(platform, step_subsample=5)

    t_grid = [60.0, 70.0, 80.0, 85.0, 90.0, 95.0, 97.5, 100.0]
    f_grid = [mhz(f) for f in range(100, 1001, 100)]

    def progress(done: int, total: int) -> None:
        if done % 20 == 0 or done == total:
            print(f"  {done}/{total} design points solved")

    start = time.time()
    table = build_frequency_table(
        optimizer, t_grid, f_grid, progress=progress
    )
    elapsed = time.time() - start
    print(f"Phase 1 finished in {elapsed:.1f}s "
          f"({len(t_grid) * len(f_grid)} design points)")
    print()

    # The feasibility boundary per row (the paper's Figure 9 y-values).
    print("max feasible average frequency per starting temperature:")
    for t in t_grid:
        f = table.max_feasible_target(t)
        print(f"  start {t:6.1f} C -> {to_mhz(f):6.0f} MHz")
    print()

    # A slice of the table around the interesting region.
    lookup = table.lookup(93.0, mhz(800))
    print(
        f"lookup(93 C, 800 MHz) -> serves {to_mhz(lookup.satisfied_target):.0f} MHz: "
        f"{[f'{to_mhz(f):.0f}' for f in lookup.frequencies]}"
    )

    table.save_json(out_path)
    print(f"table written to {out_path}")


if __name__ == "__main__":
    main()
