"""Closed-loop comparison: No-TC vs Basic-DFS vs Pro-Temp.

Reproduces the paper's headline story (Figures 1/2/6/7) on a computation-
intensive benchmark: the reactive baseline repeatedly overshoots 100 C while
Pro-Temp never violates it — and still finishes more work.

Run:  python examples/compare_policies.py  [duration_seconds]
"""

import sys

from repro import Platform
from repro.analysis import cached_table, run_simulation
from repro.control import BasicDFSPolicy, NoTCPolicy, ProTempPolicy
from repro.sim import PAPER_BAND_LABELS
from repro.units import to_mhz
from repro.workloads import compute_benchmark


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    platform = Platform.niagara8()
    print("building the Phase-1 table (cached after the first run)...")
    table = cached_table(
        platform, cache_path="examples/.cache/niagara8_table.json"
    )

    trace = compute_benchmark(duration, platform.n_cores, seed=42)
    print(trace.summary())
    print()

    header = (
        f"{'policy':<10s} {'<80':>6s} {'80-90':>6s} {'90-100':>7s} "
        f"{'>100':>6s} {'peak C':>7s} {'done':>12s} {'wait ms':>8s}"
    )
    print(header)
    print("-" * len(header))
    for policy in (
        NoTCPolicy(),
        BasicDFSPolicy(threshold=90.0),
        ProTempPolicy(table),
    ):
        result = run_simulation(platform, policy, trace, duration=duration)
        bands = result.band_fractions
        done = (
            f"{result.metrics.completed_tasks}/{result.metrics.arrived_tasks}"
        )
        print(
            f"{policy.name:<10s} "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[:1])
            + " "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[1:2])
            + " "
            + " ".join(f"{b * 100:6.1f}%" for b in bands[2:3])
            + " "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[3:])
            + f" {result.metrics.peak_temperature:7.1f}"
            + f" {done:>12s}"
            + f" {result.mean_waiting_time * 1e3:8.0f}"
        )
    print()
    print(f"(temperature bands: {', '.join(PAPER_BAND_LABELS)} Celsius;")
    print(" Pro-Temp's >100 column is structurally zero — the guarantee.)")


if __name__ == "__main__":
    main()
