"""Closed-loop comparison: No-TC vs Basic-DFS vs Pro-Temp.

Reproduces the paper's headline story (Figures 1/2/6/7) as a 3-policy
scenario grid on the computation-intensive benchmark: the reactive baseline
repeatedly overshoots 100 C while Pro-Temp never violates it — and still
finishes more work.

Run:  python examples/compare_policies.py  [duration_seconds]
"""

import sys

from repro import ScenarioRunner, ScenarioSpec, WorkloadSpec
from repro.sim import PAPER_BAND_LABELS


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    specs = ScenarioSpec.grid(
        ScenarioSpec(
            platform="niagara8",
            workload=WorkloadSpec("compute", duration),
            seed=42,
        ),
        policy=["no-tc", "basic-dfs", "protemp"],
    )
    print("building the Phase-1 table (cached on disk after the first run)...")
    runner = ScenarioRunner(table_cache_dir="examples/.cache/tables")
    outcomes = runner.run_many(specs)

    header = (
        f"{'policy':<10s} {'<80':>6s} {'80-90':>6s} {'90-100':>7s} "
        f"{'>100':>6s} {'peak C':>7s} {'done':>12s} {'wait ms':>8s}"
    )
    print(header)
    print("-" * len(header))
    for outcome in outcomes:
        result = outcome.result
        bands = result.band_fractions
        done = (
            f"{result.metrics.completed_tasks}/{result.metrics.arrived_tasks}"
        )
        print(
            f"{result.policy_name:<10s} "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[:1])
            + " "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[1:2])
            + " "
            + " ".join(f"{b * 100:6.1f}%" for b in bands[2:3])
            + " "
            + " ".join(f"{b * 100:5.1f}%" for b in bands[3:])
            + f" {result.metrics.peak_temperature:7.1f}"
            + f" {done:>12s}"
            + f" {result.mean_waiting_time * 1e3:8.0f}"
        )
    print()
    print(f"(temperature bands: {', '.join(PAPER_BAND_LABELS)} Celsius;")
    print(" Pro-Temp's >100 column is structurally zero — the guarantee.)")


if __name__ == "__main__":
    main()
