"""Plain-text and CSV rendering of experiment results.

The paper's figures are bar charts and line plots; a terminal reproduction
reports the same numbers as aligned ASCII tables plus optional CSV files so
they can be re-plotted elsewhere.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: cell values (converted with ``str``; floats pre-format them).
        title: optional title line.

    Returns:
        The formatted table as a single string.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write rows to a CSV file (for external re-plotting)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def format_band_bars(
    labels: Sequence[str],
    fractions_by_policy: dict[str, Sequence[float]],
    *,
    width: int = 40,
) -> str:
    """Textual stacked-bar rendering of Figure 6-style band fractions."""
    lines = []
    for policy, fractions in fractions_by_policy.items():
        lines.append(f"{policy}:")
        for label, fraction in zip(labels, fractions):
            bar = "#" * int(round(fraction * width))
            lines.append(f"  {label:>7s} {fraction * 100:6.2f}% {bar}")
    return "\n".join(lines)
