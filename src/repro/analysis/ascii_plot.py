"""Minimal ASCII line plots for terminal-rendered figures.

The paper's Figures 1, 2 and 8 are time-series plots; the CLI and examples
render them as text so the reproduction needs no plotting dependency.
"""

from __future__ import annotations

import numpy as np


def ascii_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 18,
    y_label: str = "",
    x_label: str = "",
    hline: float | None = None,
) -> str:
    """Render one or more series as an ASCII plot.

    Args:
        x: shared x values, shape (n,).
        series: label -> y values (each shape (n,)); the first eight series
            get distinct glyphs.
        width: plot width in characters (excluding the axis gutter).
        height: plot height in rows.
        y_label: y-axis caption.
        x_label: x-axis caption.
        hline: optional horizontal reference line (e.g. t_max) drawn
            with ``-``.

    Returns:
        The rendered plot.
    """
    x = np.asarray(x, dtype=float)
    if len(series) == 0 or len(x) == 0:
        return "(empty plot)"
    glyphs = "*o+x#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_min = float(np.min(all_y))
    y_max = float(np.max(all_y))
    if hline is not None:
        y_min = min(y_min, hline)
        y_max = max(y_max, hline)
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(xv: float) -> int:
        return min(width - 1, int((xv - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(yv: float) -> int:
        frac = (yv - y_min) / (y_max - y_min)
        return min(height - 1, height - 1 - int(frac * (height - 1)))

    if hline is not None:
        row = to_row(hline)
        for col in range(width):
            canvas[row][col] = "-"

    for idx, (label, y) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        y = np.asarray(y, dtype=float)
        for xv, yv in zip(x, y):
            canvas[to_row(yv)][to_col(xv)] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    for row_idx, row in enumerate(canvas):
        frac = 1.0 - row_idx / (height - 1)
        y_tick = y_min + frac * (y_max - y_min)
        lines.append(f"{y_tick:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_min:<12.1f}" + " " * max(0, width - 24) + f"{x_max:>12.1f}"
    )
    if x_label:
        lines.append(" " * 9 + x_label)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
