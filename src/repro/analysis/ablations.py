"""Ablation studies for Pro-Temp's design choices.

Each function isolates one knob the paper (or our reproduction) fixes and
measures what changes.  These back the `benchmarks/bench_ablations.py`
harness and EXPERIMENTS.md's discussion:

* gradient objective weight (Eq. 5's trade-off),
* thermal-sensor noise in the control loop (robustness of the table's
  round-up semantics),
* Phase-1 grid resolution (safety is grid-independent; performance is not),
* DFS period (reactive overshoot grows with it; proactive feasibility
  shrinks),
* constraint-step thinning (`step_subsample` fidelity),
* temperature-dependent leakage the optimizer did not model (guarantee
  stress + margin remediation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cache import DEFAULT_F_GRID
from repro.control import BasicDFSPolicy, ProTempPolicy, ThermalManagementUnit
from repro.core import ProTempOptimizer, build_frequency_table
from repro.core.table import FrequencyTable
from repro.platform import Platform
from repro.power import LeakageModel
from repro.sim import MulticoreSimulator, SimulationConfig
from repro.thermal.sensors import IdealSensor, NoisySensor
from repro.units import mhz, to_mhz
from repro.workloads import compute_benchmark

# ---------------------------------------------------------------------------
# Gradient weight (Eq. 5)
# ---------------------------------------------------------------------------


@dataclass
class GradientWeightAblation:
    """Trade-off between total power and spatial gradient.

    Attributes:
        weights: objective weights swept.
        gradients: predicted max core gradient at each weight (Celsius).
        total_power: total core power at each weight (W).
    """

    weights: tuple[float, ...]
    gradients: list[float]
    total_power: list[float]


def ablate_gradient_weight(
    platform: Platform,
    *,
    t_start: float = 85.0,
    f_target: float = mhz(500),
    weights: tuple[float, ...] = (0.0, 0.5, 1.0, 5.0, 20.0),
) -> GradientWeightAblation:
    """Sweep Eq. 5's gradient weight at a fixed design point."""
    gradients, powers = [], []
    for weight in weights:
        optimizer = ProTempOptimizer(
            platform,
            step_subsample=5,
            minimize_gradient=weight > 0,
            gradient_weight=max(weight, 1e-9),
        )
        a = optimizer.solve(t_start, f_target)
        gradients.append(a.predicted_gradient if a.feasible else np.inf)
        powers.append(float(np.sum(a.core_power)))
    return GradientWeightAblation(
        weights=weights, gradients=gradients, total_power=powers
    )


# ---------------------------------------------------------------------------
# Sensor noise robustness
# ---------------------------------------------------------------------------


@dataclass
class SensorNoiseAblation:
    """Closed-loop Pro-Temp under noisy sensing.

    Attributes:
        noise_stds: sensor noise levels swept (Celsius).
        violation_fractions: fraction of (core, step) samples above t_max.
        peaks: hottest observed core temperature (Celsius).
    """

    noise_stds: tuple[float, ...]
    violation_fractions: list[float]
    peaks: list[float]


def ablate_sensor_noise(
    platform: Platform,
    table: FrequencyTable,
    *,
    noise_stds: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
    duration: float = 20.0,
    seed: int = 7,
) -> SensorNoiseAblation:
    """Run the closed loop with increasingly noisy sensors.

    The run-time lookup rounds the measured maximum *up* to the next grid
    row, which absorbs under-reads up to the local grid spacing; larger
    noise can break the guarantee — this ablation measures by how much.
    """
    trace = compute_benchmark(duration, platform.n_cores, seed=seed)
    fractions, peaks = [], []
    for std in noise_stds:
        sensor = (
            IdealSensor()
            if std == 0
            else NoisySensor(noise_std=std, quantization=0.5, seed=seed)
        )
        tmu = ThermalManagementUnit(
            policy=ProTempPolicy(table),
            f_max=platform.f_max,
            t_max=platform.t_max,
            window=0.1,
            sensor=sensor,
        )
        sim = MulticoreSimulator(
            platform, tmu, config=SimulationConfig(max_time=duration)
        )
        result = sim.run(trace)
        fractions.append(result.metrics.violation_fraction)
        peaks.append(result.metrics.peak_temperature)
    return SensorNoiseAblation(
        noise_stds=noise_stds, violation_fractions=fractions, peaks=peaks
    )


# ---------------------------------------------------------------------------
# Phase-1 grid resolution
# ---------------------------------------------------------------------------


@dataclass
class TableResolutionAblation:
    """Performance vs table grid density (safety must be unaffected).

    Attributes:
        labels: grid descriptions.
        cells: design points per table.
        mean_frequency_mhz: closed-loop mean frequency served.
        completed_tasks: tasks finished within the horizon.
        violations: violation fractions (must all be 0).
    """

    labels: list[str]
    cells: list[int]
    mean_frequency_mhz: list[float]
    completed_tasks: list[int]
    violations: list[float]


def ablate_table_resolution(
    platform: Platform,
    default_table: FrequencyTable,
    *,
    duration: float = 20.0,
    seed: int = 7,
) -> TableResolutionAblation:
    """Compare a deliberately coarse Phase-1 grid with the default one."""
    optimizer = ProTempOptimizer(platform, step_subsample=5)
    coarse = build_frequency_table(
        optimizer,
        [70.0, 90.0, 100.0],
        [mhz(250), mhz(500), mhz(1000)],
    )
    trace = compute_benchmark(duration, platform.n_cores, seed=seed)
    labels, cells, freqs, completed, violations = [], [], [], [], []
    for label, table in (
        ("coarse 3x3", coarse),
        (
            f"default {len(default_table.t_grid)}x{len(default_table.f_grid)}",
            default_table,
        ),
    ):
        tmu = ThermalManagementUnit(
            policy=ProTempPolicy(table),
            f_max=platform.f_max,
            t_max=platform.t_max,
            window=0.1,
        )
        sim = MulticoreSimulator(
            platform, tmu, config=SimulationConfig(max_time=duration)
        )
        result = sim.run(trace)
        labels.append(label)
        cells.append(len(table.t_grid) * len(table.f_grid))
        freqs.append(to_mhz(result.metrics.mean_frequency))
        completed.append(result.metrics.completed_tasks)
        violations.append(result.metrics.violation_fraction)
    return TableResolutionAblation(
        labels=labels,
        cells=cells,
        mean_frequency_mhz=freqs,
        completed_tasks=completed,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# DFS period
# ---------------------------------------------------------------------------


@dataclass
class DfsPeriodAblation:
    """Reactive overshoot and proactive feasibility vs the DFS period.

    Attributes:
        windows: DFS periods swept (s).
        basic_violation_fractions: Basic-DFS time above t_max.
        basic_peaks: Basic-DFS hottest sample (Celsius).
        protemp_boundaries_mhz: Pro-Temp max feasible average frequency at
            an 85 C start for each window length.
    """

    windows: tuple[float, ...]
    basic_violation_fractions: list[float]
    basic_peaks: list[float]
    protemp_boundaries_mhz: list[float]


def ablate_dfs_period(
    platform: Platform,
    *,
    windows: tuple[float, ...] = (0.05, 0.1, 0.2),
    duration: float = 20.0,
    seed: int = 7,
) -> DfsPeriodAblation:
    """Sweep the DFS period for both the baseline and the optimizer."""
    trace = compute_benchmark(duration, platform.n_cores, seed=seed)
    fractions, peaks, boundaries = [], [], []
    for window in windows:
        tmu = ThermalManagementUnit(
            policy=BasicDFSPolicy(threshold=90.0),
            f_max=platform.f_max,
            t_max=platform.t_max,
            window=window,
        )
        sim = MulticoreSimulator(
            platform,
            tmu,
            config=SimulationConfig(max_time=duration, window=window),
        )
        result = sim.run(trace)
        fractions.append(result.metrics.violation_fraction)
        peaks.append(result.metrics.peak_temperature)
        optimizer = ProTempOptimizer(
            platform, horizon=window, step_subsample=5
        )
        boundaries.append(to_mhz(optimizer.max_feasible_target(85.0)))
    return DfsPeriodAblation(
        windows=windows,
        basic_violation_fractions=fractions,
        basic_peaks=peaks,
        protemp_boundaries_mhz=boundaries,
    )


# ---------------------------------------------------------------------------
# Constraint-step thinning fidelity
# ---------------------------------------------------------------------------


@dataclass
class SubsampleAblation:
    """Effect of thinning the per-step temperature constraints.

    Attributes:
        subsamples: thinning factors swept (1 = the paper's every-step).
        boundaries_mhz: feasibility boundary at 85 C per factor.
        worst_overshoot: the worst violation (Celsius above t_max; negative
            means margin) when each factor's boundary solution is
            re-simulated at *full* step resolution.
    """

    subsamples: tuple[int, ...]
    boundaries_mhz: list[float]
    worst_overshoot: list[float]


def ablate_step_subsample(
    platform: Platform,
    *,
    subsamples: tuple[int, ...] = (1, 2, 5, 10, 25),
    t_start: float = 85.0,
) -> SubsampleAblation:
    """Quantify the safety cost of constraining every k-th step only."""
    boundaries, overshoots = [], []
    for factor in subsamples:
        optimizer = ProTempOptimizer(platform, step_subsample=factor)
        boundary = optimizer.max_feasible_target(t_start)
        boundaries.append(to_mhz(boundary))
        a = optimizer.solve(t_start, boundary * 0.995)
        if not a.feasible:
            overshoots.append(np.nan)
            continue
        node_power = platform.power.injection_matrix() @ a.core_power
        traj = platform.thermal.simulate(
            t_start, node_power, optimizer.response.m
        )
        overshoots.append(float(traj.max() - platform.t_max))
    return SubsampleAblation(
        subsamples=subsamples,
        boundaries_mhz=boundaries,
        worst_overshoot=overshoots,
    )


# ---------------------------------------------------------------------------
# Unmodeled leakage stress + margin remediation
# ---------------------------------------------------------------------------


@dataclass
class LeakageStressAblation:
    """Guarantee under leakage the optimizer did not model.

    Attributes:
        leak_violation: violation fraction when the plant adds
            temperature-dependent leakage but the table assumed none.
        leak_peak: hottest sample in that run (Celsius).
        guarded_violation: same plant, but the table was built against a
            reduced temperature cap (a design margin).
        guarded_peak: hottest sample of the guarded run.
        margin: the cap reduction used (Celsius).
    """

    leak_violation: float
    leak_peak: float
    guarded_violation: float
    guarded_peak: float
    margin: float


def ablate_leakage_stress(
    platform: Platform,
    table: FrequencyTable,
    *,
    margin: float = 5.0,
    duration: float = 20.0,
    seed: int = 7,
) -> LeakageStressAblation:
    """Stress the guarantee with unmodeled leakage, then add a margin.

    The leaky plant adds an exponential leakage term per core
    (0.4 W at 60 C, +1.2%/K — roughly +0.6 W/core near the cap, enough to
    visibly break the table's built-in conservatism) that the Phase-1
    optimization knew nothing about; violations appear.  The remediation
    builds the table against ``t_max - margin`` — the classic guard-band —
    and must restore zero violations while the *reported* limit stays at
    ``t_max``.  (5 C suffices for this leakage level; 3 C does not —
    measured in the benchmark.)
    """
    leak = LeakageModel(p_ref=0.4, alpha=0.012, t_ref=60.0)
    leaky = Platform.niagara8(leakage=leak, t_max=platform.t_max)
    trace = compute_benchmark(duration, platform.n_cores, seed=seed)

    def run(with_table: FrequencyTable):
        tmu = ThermalManagementUnit(
            policy=ProTempPolicy(with_table),
            f_max=leaky.f_max,
            t_max=leaky.t_max,
            window=0.1,
        )
        sim = MulticoreSimulator(
            leaky, tmu, config=SimulationConfig(max_time=duration)
        )
        return sim.run(trace)

    stressed = run(table)

    guard_platform = Platform.niagara8(t_max=platform.t_max - margin)
    guard_optimizer = ProTempOptimizer(guard_platform, step_subsample=5)
    guard_table = build_frequency_table(
        guard_optimizer,
        list(table.t_grid),
        list(DEFAULT_F_GRID),
    )
    guarded = run(guard_table)

    return LeakageStressAblation(
        leak_violation=stressed.metrics.violation_fraction,
        leak_peak=stressed.metrics.peak_temperature,
        guarded_violation=guarded.metrics.violation_fraction,
        guarded_peak=guarded.metrics.peak_temperature,
        margin=margin,
    )
