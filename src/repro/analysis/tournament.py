"""Ranked head-to-head tournaments over policy x platform x workload grids.

The paper's evaluation is one three-way comparison (No-TC / Basic-DFS /
Pro-Temp); with the controller zoo registered, "compare every controller
on every scenario" becomes a *tournament*: expand a scenario grid, run it
through :class:`~repro.scenario.runner.ScenarioRunner` (so an outcome
store makes re-runs replay with zero solves), then reduce the outcomes to

* **per-policy standings** — violations, time above the 90 C band edge,
  throughput, waiting, mean/max peak temperature, win/loss/tie record;
* **a pairwise win matrix** — policies are compared *match by match*: a
  match is one cell of the non-policy grid (platform x workload x seed x
  simulation knobs), and policy A beats policy B on a match when A's
  score tuple is strictly better (lexicographic on violation fraction,
  throughput, mean wait, peak temperature — in that order, so thermal
  safety dominates and raw speed only breaks ties);
* **a ranking** — most match wins first, standings metrics as
  tie-breakers, policy id as the final deterministic tie-breaker.

Everything in the ``tournament`` section is a pure, deterministic function
of the outcome rows: no wall times, no cache provenance, no iteration-
order dependence (cells are sorted before reduction).  The same store
therefore always renders the same ranking — byte-identical JSON — whether
the cells were computed serially, in parallel, on another host, or
replayed, which is what the CI tournament-smoke job asserts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import ScenarioError
from repro.scenario.specs import ScenarioSpec, _spec_hash
from repro.sim.metrics import PAPER_BAND_EDGES, PAPER_BAND_LABELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.runner import ScenarioOutcome, ScenarioRunner
    from repro.scenario.store import OutcomeStore

#: Version of the ``tournament`` report section (bump on shape changes).
TOURNAMENT_SCHEMA_VERSION = 1

#: Band edge (Celsius) above which time counts as "hot" in the standings.
HOT_BAND_EDGE = 90.0


def competitor_id(policy: Mapping[str, Any]) -> str:
    """Stable competitor identity for a policy sub-spec dict.

    The registry name alone would conflate two parameterizations of the
    same policy (e.g. two ``protemp`` table resolutions in one grid), so
    parameterized entries get a short params digest suffix.
    """
    params = dict(policy.get("params") or {})
    if not params:
        return str(policy["name"])
    digest = _spec_hash({"name": policy["name"], "params": params})[:6]
    return f"{policy['name']}#{digest}"


def match_key(spec_dict: Mapping[str, Any]) -> str:
    """The non-policy identity of a scenario cell.

    Two cells belong to the same *match* when they agree on everything
    except the policy under test (and the cosmetic ``name`` label).  Keyed
    on the canonical hash payload, so trace-file workloads match across
    file locations just as the outcome store does.
    """
    payload = dict(ScenarioSpec.from_dict(dict(spec_dict)).hash_dict())
    payload.pop("policy", None)
    payload.pop("name", None)
    return _spec_hash(payload)


def cell_score(summary: Mapping[str, Any]) -> tuple[float, float, float, float]:
    """Lexicographic score of one cell — lower is better.

    Order: violation fraction (thermal safety first), negated throughput
    (completed/arrived), mean waiting time, peak temperature.
    """
    arrived = int(summary.get("arrived_tasks") or 0)
    completed = int(summary.get("completed_tasks") or 0)
    throughput = completed / arrived if arrived else 0.0
    return (
        float(summary["violation_fraction"]),
        -throughput,
        float(summary["mean_wait_s"]),
        float(summary["peak_c"]),
    )


def _hot_fraction(summary: Mapping[str, Any]) -> float:
    """Fraction of (core, step) time above :data:`HOT_BAND_EDGE`."""
    fractions = summary.get("band_fractions") or []
    hot = 0.0
    for edge_low, fraction in zip((0.0,) + PAPER_BAND_EDGES, fractions):
        if edge_low >= HOT_BAND_EDGE:
            hot += float(fraction)
    return hot


def tournament_table(
    cells: Iterable[tuple[Mapping[str, Any], Mapping[str, Any]]],
) -> dict[str, Any]:
    """Reduce ``(spec_dict, summary_row)`` cells to the tournament section.

    Args:
        cells: one entry per scenario cell — the spec's
            :meth:`~repro.scenario.specs.ScenarioSpec.to_dict` payload and
            its deterministic summary row
            (:meth:`~repro.scenario.runner.ScenarioOutcome.data_row` /
            ``StoredOutcome.summary``).

    Returns:
        The deterministic ``tournament`` report section: ``policies``
        (standings in ranked order), ``ranking``, ``win_matrix``,
        ``n_matches``, ``n_cells``.

    Raises:
        ScenarioError: with fewer than two distinct competitors (a
            tournament needs opponents) or duplicate cells for one
            (competitor, match) slot.
    """
    # (competitor, match) -> (score, summary, display label); sorted
    # reduction order makes every float accumulation deterministic.
    slots: dict[tuple[str, str], tuple[tuple, Mapping[str, Any]]] = {}
    labels: dict[str, str] = {}
    for spec_dict, summary in cells:
        policy = dict(spec_dict.get("policy") or {"name": "?"})
        competitor = competitor_id(policy)
        key = (competitor, match_key(spec_dict))
        if key in slots:
            raise ScenarioError(
                f"duplicate tournament cell for policy {competitor!r} "
                "(same non-policy scenario twice; deduplicate the grid "
                "or merge the stores first)"
            )
        slots[key] = (cell_score(summary), summary)
        labels.setdefault(competitor, str(summary.get("policy", competitor)))

    competitors = sorted({comp for comp, _ in slots})
    if len(competitors) < 2:
        raise ScenarioError(
            f"a tournament needs at least two distinct policies, got "
            f"{competitors or 'none'} (put a 'policy' axis in the grid)"
        )
    matches = sorted({match for _, match in slots})

    standings: dict[str, dict[str, Any]] = {
        comp: {
            "policy": comp,
            "label": labels[comp],
            "cells": 0,
            "wins": 0,
            "losses": 0,
            "ties": 0,
            "violation_fraction": 0.0,
            "time_above_90_fraction": 0.0,
            "mean_wait_s": 0.0,
            "completed_tasks": 0,
            "arrived_tasks": 0,
            "mean_peak_c": 0.0,
            "max_peak_c": 0.0,
        }
        for comp in competitors
    }
    win_matrix: dict[str, dict[str, dict[str, int]]] = {
        a: {
            b: {"wins": 0, "ties": 0, "matches": 0}
            for b in competitors
            if b != a
        }
        for a in competitors
    }

    for comp in competitors:
        for match in matches:
            entry = slots.get((comp, match))
            if entry is None:
                continue
            _, summary = entry
            row = standings[comp]
            row["cells"] += 1
            row["violation_fraction"] += float(summary["violation_fraction"])
            row["time_above_90_fraction"] += _hot_fraction(summary)
            row["mean_wait_s"] += float(summary["mean_wait_s"])
            row["completed_tasks"] += int(summary.get("completed_tasks") or 0)
            row["arrived_tasks"] += int(summary.get("arrived_tasks") or 0)
            peak = float(summary["peak_c"])
            row["mean_peak_c"] += peak
            if peak > row["max_peak_c"]:
                row["max_peak_c"] = peak

    for match in matches:
        for i, a in enumerate(competitors):
            entry_a = slots.get((a, match))
            if entry_a is None:
                continue
            for b in competitors[i + 1 :]:
                entry_b = slots.get((b, match))
                if entry_b is None:
                    continue
                score_a, score_b = entry_a[0], entry_b[0]
                win_matrix[a][b]["matches"] += 1
                win_matrix[b][a]["matches"] += 1
                if score_a < score_b:
                    win_matrix[a][b]["wins"] += 1
                    standings[a]["wins"] += 1
                    standings[b]["losses"] += 1
                elif score_b < score_a:
                    win_matrix[b][a]["wins"] += 1
                    standings[b]["wins"] += 1
                    standings[a]["losses"] += 1
                else:
                    win_matrix[a][b]["ties"] += 1
                    win_matrix[b][a]["ties"] += 1
                    standings[a]["ties"] += 1
                    standings[b]["ties"] += 1

    for row in standings.values():
        cells_n = row["cells"] or 1
        row["violation_fraction"] /= cells_n
        row["time_above_90_fraction"] /= cells_n
        row["mean_wait_s"] /= cells_n
        row["mean_peak_c"] /= cells_n
        arrived = row["arrived_tasks"]
        row["throughput"] = (
            row["completed_tasks"] / arrived if arrived else 0.0
        )

    def rank_key(comp: str) -> tuple:
        row = standings[comp]
        return (
            -row["wins"],
            row["violation_fraction"],
            -row["throughput"],
            row["mean_wait_s"],
            row["mean_peak_c"],
            comp,
        )

    ranking = sorted(competitors, key=rank_key)
    return {
        "schema_version": TOURNAMENT_SCHEMA_VERSION,
        "band_labels": list(PAPER_BAND_LABELS),
        "n_cells": len(slots),
        "n_matches": len(matches),
        "ranking": ranking,
        "policies": [standings[comp] for comp in ranking],
        "win_matrix": win_matrix,
    }


def tournament_from_outcomes(
    outcomes: "Sequence[ScenarioOutcome]",
) -> dict[str, Any]:
    """Tournament section from freshly run/replayed scenario outcomes."""
    return tournament_table(
        (outcome.spec.to_dict(), outcome.data_row()) for outcome in outcomes
    )


def tournament_from_records(
    records: "Iterable[Any]",
) -> dict[str, Any]:
    """Tournament section from stored outcome records (``StoredOutcome``).

    Records are deduplicated by spec hash (the first occurrence wins, so
    reporting over a store plus its shard copies is fine) and sorted
    before reduction, making the section a pure function of the record
    *set* regardless of iteration order.
    """
    unique: dict[str, Any] = {}
    for record in records:
        unique.setdefault(record.spec_hash, record)
    ordered = [unique[key] for key in sorted(unique)]
    return tournament_table((r.spec, r.summary) for r in ordered)


def tournament_from_store(store: "OutcomeStore") -> dict[str, Any]:
    """Tournament section from a saved outcome store's records.

    The same records always produce the same section, so ``protemp
    report --tournament STORE`` renders exactly the ranking the original
    ``protemp tournament`` run emitted.
    """
    return tournament_from_records(store.records())


def run_tournament(
    config: dict[str, Any] | str,
    *,
    runner: "ScenarioRunner",
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> dict[str, Any]:
    """Run a tournament config through a runner and build the full report.

    Args:
        config: a scenario-grid config (the ``protemp run`` format; the
            grid must contain a ``policy`` axis with >= 2 entries).
        runner: the runner to execute through; give it an outcome store
            to make warm re-runs replay with ``scenarios_executed == 0``.
        shard_index: with `shard_count`, run only one deterministic shard
            (for splitting the grid across hosts; ranking a single shard
            only makes sense after merging stores).
        shard_count: total number of shards.

    Returns:
        ``{"schema_version", "tournament", "run"}`` — ``tournament`` is
        the deterministic section, ``run`` carries this call's cache
        provenance (scenarios executed/replayed, tables built).
    """
    executed_before = runner.scenarios_executed
    replayed_before = runner.outcomes_replayed
    built_before = runner.tables_built
    outcomes = runner.run_config(
        config, shard_index=shard_index, shard_count=shard_count
    )
    section = tournament_from_outcomes(outcomes)
    return {
        "schema_version": TOURNAMENT_SCHEMA_VERSION,
        "tournament": section,
        "run": {
            "scenarios": len(outcomes),
            "scenarios_executed": runner.scenarios_executed - executed_before,
            "outcomes_replayed": runner.outcomes_replayed - replayed_before,
            "tables_built": runner.tables_built - built_before,
        },
    }


def render_tournament(section: Mapping[str, Any]) -> str:
    """Human-readable text rendering of a tournament section."""
    lines: list[str] = [
        f"tournament: {section['n_matches']} matches x "
        f"{len(section['ranking'])} policies ({section['n_cells']} cells)"
    ]
    header = (
        f"{'#':>2s}  {'policy':<24s} {'W-L-T':>9s} {'viol%':>7s} "
        f"{'>90C%':>7s} {'thru%':>7s} {'wait ms':>8s} {'peak C':>7s} "
        f"{'max C':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rank, row in enumerate(section["policies"], start=1):
        record = f"{row['wins']}-{row['losses']}-{row['ties']}"
        lines.append(
            f"{rank:>2d}  {row['label'][:24]:<24s} {record:>9s} "
            f"{row['violation_fraction'] * 100:6.2f}% "
            f"{row['time_above_90_fraction'] * 100:6.2f}% "
            f"{row['throughput'] * 100:6.1f}% "
            f"{row['mean_wait_s'] * 1e3:8.1f} "
            f"{row['mean_peak_c']:7.1f} {row['max_peak_c']:7.1f}"
        )
    ranking = section["ranking"]
    matrix = section["win_matrix"]
    lines.append("")
    lines.append("head-to-head wins (row beats column):")
    width = max(8, max(len(c) for c in ranking) + 1)
    lines.append(
        " " * width + "".join(f"{c[:width - 1]:>{width}s}" for c in ranking)
    )
    for a in ranking:
        cells = []
        for b in ranking:
            if a == b:
                cells.append(f"{'-':>{width}s}")
            else:
                pair = matrix[a][b]
                cells.append(f"{pair['wins']:>{width}d}")
        lines.append(f"{a[:width]:<{width}s}" + "".join(cells))
    return "\n".join(lines) + "\n"


def tournament_json(report: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of the full tournament report.

    Sorted keys, ``allow_nan=False`` — the byte-identical artifact the CI
    smoke job diffs between cold and warm runs (after dropping the
    ``run`` provenance, which legitimately differs).
    """
    return json.dumps(
        dict(report), indent=1, sort_keys=True, allow_nan=False
    )
