"""One runner per paper figure (the per-experiment index of DESIGN.md).

Every figure-level runner is a thin *scenario grid + reducer* on top of
`repro.scenario`: it declares the grid of :class:`ScenarioSpec` cells the
figure needs, hands them to a :class:`ScenarioRunner` (which deduplicates
platforms and Phase-1 tables), and reduces the outcomes into a small result
object exposing the figure's series plus a ``text()`` rendering.  The
optimizer-probe figures (9/10) reuse the same runner's artifact caches.

Every runner is deterministic (seeded), scales with a ``duration`` knob so
tests can use short horizons.  The benchmarks in ``benchmarks/`` wrap these
runners and assert the paper's qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.cache import cached_table
from repro.analysis.report import format_band_bars, format_table
from repro.control import DFSPolicy, ThermalManagementUnit
from repro.core.table import FrequencyTable
from repro.platform import Platform
from repro.scenario import (
    POLICIES,
    PlatformSpec,
    PolicySpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.sim import (
    PAPER_BAND_LABELS,
    MulticoreSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.queueing import AssignmentPolicy
from repro.sim.task import TaskTrace
from repro.units import to_mhz

#: Paper constants (section 5.2).
BASIC_DFS_THRESHOLD = 90.0

#: Figure 9/10 starting-temperature axis (Celsius).
FEASIBILITY_TEMPS = (27.0, 37.0, 47.0, 57.0, 67.0, 77.0, 87.0, 97.0)

#: The evaluation platform, as a spec (paper section 5).
NIAGARA_SPEC = PlatformSpec("niagara8")

#: The paper's three run-time policies, as specs.
NOTC_SPEC = PolicySpec("no-tc")
BASIC_DFS_SPEC = PolicySpec("basic-dfs", {"threshold": BASIC_DFS_THRESHOLD})
PROTEMP_SPEC = PolicySpec("protemp")


def make_platform() -> Platform:
    """The evaluation platform (paper section 5)."""
    return Platform.niagara8()


def run_simulation(
    platform: Platform,
    policy: DFSPolicy,
    trace: TaskTrace,
    *,
    duration: float,
    assignment: AssignmentPolicy | None = None,
    t_initial: float = 45.0,
) -> SimulationResult:
    """Run one closed-loop simulation with the standard configuration.

    The low-level escape hatch for callers holding live objects (a policy
    instance, a pre-built trace); spec-driven callers should build a
    :class:`ScenarioSpec` and use :class:`ScenarioRunner` instead.
    """
    tmu = ThermalManagementUnit(
        policy=policy,
        f_max=platform.f_max,
        t_max=platform.t_max,
        window=0.1,
    )
    sim = MulticoreSimulator(
        platform,
        tmu,
        assignment=assignment,
        config=SimulationConfig(max_time=duration, t_initial=t_initial),
    )
    return sim.run(trace)


def _figure_runner(
    platform: Platform | None,
    table: FrequencyTable | None,
    policy_specs: tuple[PolicySpec, ...],
    outcome_store=None,
) -> tuple[ScenarioRunner, Platform]:
    """A ScenarioRunner primed with the caller's pre-built artifacts.

    When `table` is None but a table-driven policy is in the grid, the
    shared `repro.analysis.cache.cached_table` build is primed in, so
    repeated figure runs in one process reuse a single Phase-1 table.

    `outcome_store` (an `repro.scenario.store.OutcomeStore` or directory
    path) lets summary-level figures replay already-computed scenarios
    instead of re-simulating them; the shared table is primed *lazily*, so
    a figure whose every cell replays never pays the Phase-1 build.
    """
    platform = platform or make_platform()
    runner = ScenarioRunner(outcome_store=outcome_store)
    runner.prime_platform(NIAGARA_SPEC, platform)
    table_specs = [
        spec for spec in policy_specs if POLICIES.get(spec.name).needs_table
    ]
    if table is not None:
        for spec in table_specs:
            runner.prime_table(NIAGARA_SPEC, spec, table)
    else:
        for spec in table_specs:
            runner.prime_table_lazy(
                NIAGARA_SPEC, spec, lambda: cached_table(platform)
            )
    return runner, platform


# ---------------------------------------------------------------------------
# Figures 1 & 2 — temperature snapshots under Basic-DFS vs Pro-Temp
# ---------------------------------------------------------------------------


@dataclass
class SnapshotResult:
    """Core-temperature time series for one policy (Figures 1 and 2).

    Attributes:
        policy_name: which policy ran.
        times: sample times (s).
        temperature: P1 temperature (Celsius) at those times.
        t_max: the limit (100 C).
        violation_fraction: fraction of (core, step) samples above t_max.
        peak: hottest core sample (Celsius).
    """

    policy_name: str
    times: np.ndarray
    temperature: np.ndarray
    t_max: float
    violation_fraction: float
    peak: float

    def text(self) -> str:
        """Summary line matching the figure caption."""
        return (
            f"{self.policy_name}: P1 over {self.times[-1]:.0f}s, peak "
            f"{self.peak:.1f}C, {self.violation_fraction * 100:.1f}% of "
            f"core-time above {self.t_max:.0f}C"
        )


def run_snapshot(
    policy_kind: str,
    *,
    duration: float = 60.0,
    seed: int = 7,
    platform: Platform | None = None,
    table: FrequencyTable | None = None,
) -> SnapshotResult:
    """Figure 1 (``policy_kind="basic"``) / Figure 2 (``"protemp"``).

    Mixed-benchmark trace; returns processor P1's temperature history.
    """
    if policy_kind == "basic":
        policy_spec = BASIC_DFS_SPEC
    elif policy_kind == "protemp":
        policy_spec = PROTEMP_SPEC
    else:
        raise ValueError(f"unknown policy kind {policy_kind!r}")
    runner, platform = _figure_runner(platform, table, (policy_spec,))
    outcome = runner.run(
        ScenarioSpec(
            platform=NIAGARA_SPEC,
            workload=WorkloadSpec("mixed", duration),
            policy=policy_spec,
            seed=seed,
            name=f"fig1/2-{policy_kind}",
        )
    )
    # Timeseries-level figure: needs a full SimulationResult (outcome
    # stores persist summary rows only, so no outcome_store replay here).
    result = outcome.require_result()
    return SnapshotResult(
        policy_name=result.policy_name,
        times=result.timeseries.times,
        temperature=result.timeseries.core(0),
        t_max=platform.t_max,
        violation_fraction=result.metrics.violation_fraction,
        peak=result.metrics.peak_temperature,
    )


# ---------------------------------------------------------------------------
# Figure 6 — time per temperature band for the three policies
# ---------------------------------------------------------------------------


@dataclass
class BandComparisonResult:
    """Figure 6 data: per-policy band fractions.

    Attributes:
        trace_kind: "mixed" (6a) or "compute" (6b).
        fractions: policy name -> 4 band fractions (<80, 80-90, 90-100,
            >100), averaged across cores.
        waiting: policy name -> mean task waiting time (s).
    """

    trace_kind: str
    fractions: dict[str, np.ndarray]
    waiting: dict[str, float] = field(default_factory=dict)

    def text(self) -> str:
        """Figure 6-style band table."""
        return format_band_bars(
            PAPER_BAND_LABELS,
            {k: list(v) for k, v in self.fractions.items()},
        )

    def rows(self) -> list[list[object]]:
        """Rows: policy, then one column per band."""
        return [
            [name, *[float(f) for f in fractions]]
            for name, fractions in self.fractions.items()
        ]


def run_band_comparison(
    trace_kind: str,
    *,
    duration: float = 40.0,
    seed: int = 7,
    platform: Platform | None = None,
    table: FrequencyTable | None = None,
    outcome_store=None,
) -> BandComparisonResult:
    """Figure 6a (``trace_kind="mixed"``) / 6b (``"compute"``).

    A summary-level reducer: with `outcome_store`, cells already in the
    store replay without re-simulating (band fractions and waiting times
    live in the stored summary rows).
    """
    policy_specs = (NOTC_SPEC, BASIC_DFS_SPEC, PROTEMP_SPEC)
    runner, platform = _figure_runner(
        platform, table, policy_specs, outcome_store
    )
    outcomes = runner.run_many(
        ScenarioSpec.grid(
            ScenarioSpec(
                platform=NIAGARA_SPEC,
                workload=WorkloadSpec(trace_kind, duration),
                seed=seed,
                name=f"fig6-{trace_kind}",
            ),
            policy=policy_specs,
        )
    )
    fractions: dict[str, np.ndarray] = {}
    waiting: dict[str, float] = {}
    for outcome in outcomes:
        fractions[outcome.policy_label] = outcome.band_fractions
        waiting[outcome.policy_label] = outcome.mean_wait_s
    return BandComparisonResult(
        trace_kind=trace_kind, fractions=fractions, waiting=waiting
    )


# ---------------------------------------------------------------------------
# Figure 7 — normalized average task waiting time
# ---------------------------------------------------------------------------


@dataclass
class WaitingResult:
    """Figure 7 data.

    Attributes:
        basic_wait: Basic-DFS mean waiting time (s).
        protemp_wait: Pro-Temp mean waiting time (s).
    """

    basic_wait: float
    protemp_wait: float

    @property
    def normalized(self) -> float:
        """Pro-Temp wait / Basic-DFS wait (the paper reports ~0.4)."""
        if self.basic_wait == 0:
            return 0.0 if self.protemp_wait == 0 else np.inf
        return self.protemp_wait / self.basic_wait

    def text(self) -> str:
        """Figure 7 caption-style summary."""
        return format_table(
            ["policy", "mean wait (ms)", "normalized"],
            [
                ["Basic-DFS", self.basic_wait * 1e3, 1.0],
                ["Pro-Temp", self.protemp_wait * 1e3, self.normalized],
            ],
            title="Figure 7: average task waiting time",
        )


def run_waiting_comparison(
    *,
    duration: float = 40.0,
    seed: int = 7,
    platform: Platform | None = None,
    table: FrequencyTable | None = None,
    outcome_store=None,
) -> WaitingResult:
    """Figure 7: waiting times on the computation-intensive benchmark.

    A summary-level reducer: replays from `outcome_store` when given.
    """
    policy_specs = (BASIC_DFS_SPEC, PROTEMP_SPEC)
    runner, platform = _figure_runner(
        platform, table, policy_specs, outcome_store
    )
    basic, protemp = runner.run_many(
        ScenarioSpec.grid(
            ScenarioSpec(
                platform=NIAGARA_SPEC,
                workload=WorkloadSpec("compute", duration),
                seed=seed,
                name="fig7",
            ),
            policy=policy_specs,
        )
    )
    return WaitingResult(
        basic_wait=basic.mean_wait_s,
        protemp_wait=protemp.mean_wait_s,
    )


# ---------------------------------------------------------------------------
# Figure 8 — P1/P2 temperatures over time under Pro-Temp
# ---------------------------------------------------------------------------


@dataclass
class GradientTimeseriesResult:
    """Figure 8 data.

    Attributes:
        times: sample times (s).
        p1: P1 temperatures (Celsius).
        p2: P2 temperatures (Celsius).
        mean_gap: average |P1 - P2| over the run.
        max_gap: peak |P1 - P2|.
    """

    times: np.ndarray
    p1: np.ndarray
    p2: np.ndarray
    mean_gap: float
    max_gap: float

    def text(self) -> str:
        """Caption-style summary."""
        return (
            f"Figure 8: P1/P2 under Pro-Temp — mean gap "
            f"{self.mean_gap:.2f}C, max gap {self.max_gap:.2f}C"
        )


def run_gradient_timeseries(
    *,
    duration: float = 60.0,
    seed: int = 7,
    platform: Platform | None = None,
    table: FrequencyTable | None = None,
) -> GradientTimeseriesResult:
    """Figure 8: the two processors' temperatures under Pro-Temp."""
    runner, platform = _figure_runner(platform, table, (PROTEMP_SPEC,))
    outcome = runner.run(
        ScenarioSpec(
            platform=NIAGARA_SPEC,
            workload=WorkloadSpec("mixed", duration),
            policy=PROTEMP_SPEC,
            seed=seed,
            name="fig8",
        )
    )
    result = outcome.require_result()
    p1 = result.timeseries.core(0)
    p2 = result.timeseries.core(1)
    gaps = np.abs(p1 - p2)
    return GradientTimeseriesResult(
        times=result.timeseries.times,
        p1=p1,
        p2=p2,
        mean_gap=float(gaps.mean()) if len(gaps) else 0.0,
        max_gap=float(gaps.max()) if len(gaps) else 0.0,
    )


# ---------------------------------------------------------------------------
# Figure 9 — uniform vs variable feasible average frequency
# ---------------------------------------------------------------------------


@dataclass
class FeasibilitySweepResult:
    """Figure 9 data.

    Attributes:
        temps: starting temperatures (Celsius).
        uniform_mhz: max feasible average frequency, uniform mode (MHz).
        variable_mhz: same for per-core (variable) mode (MHz).
    """

    temps: np.ndarray
    uniform_mhz: np.ndarray
    variable_mhz: np.ndarray

    def text(self) -> str:
        """Figure 9-style series table."""
        rows = [
            [t, u, v]
            for t, u, v in zip(self.temps, self.uniform_mhz, self.variable_mhz)
        ]
        return format_table(
            ["start temp (C)", "uniform (MHz)", "variable (MHz)"],
            rows,
            title="Figure 9: max feasible average frequency",
        )


def run_feasibility_sweep(
    *,
    temps: tuple[float, ...] = FEASIBILITY_TEMPS,
    platform: Platform | None = None,
) -> FeasibilitySweepResult:
    """Figure 9: sweep starting temperature for both assignment modes.

    An optimizer probe, not a closed-loop simulation — it still runs on
    the :class:`ScenarioRunner` substrate, whose artifact caches hold one
    optimizer per (platform spec, mode).
    """
    runner, platform = _figure_runner(platform, None, ())
    var_opt = runner.optimizer(NIAGARA_SPEC, mode="variable")
    uni_opt = runner.optimizer(NIAGARA_SPEC, mode="uniform")
    uniform = [to_mhz(uni_opt.max_feasible_target(t)) for t in temps]
    variable = [to_mhz(var_opt.max_feasible_target(t)) for t in temps]
    return FeasibilitySweepResult(
        temps=np.array(temps),
        uniform_mhz=np.array(uniform),
        variable_mhz=np.array(variable),
    )


# ---------------------------------------------------------------------------
# Figure 10 — per-core frequencies chosen by the optimizer
# ---------------------------------------------------------------------------


@dataclass
class PerCoreFrequencyResult:
    """Figure 10 data.

    Attributes:
        temps: starting temperatures (Celsius).
        p1_mhz: optimizer frequency for periphery core P1 (MHz).
        p2_mhz: optimizer frequency for middle core P2 (MHz).
    """

    temps: np.ndarray
    p1_mhz: np.ndarray
    p2_mhz: np.ndarray

    def text(self) -> str:
        """Figure 10-style series table."""
        rows = [
            [t, a, b] for t, a, b in zip(self.temps, self.p1_mhz, self.p2_mhz)
        ]
        return format_table(
            ["start temp (C)", "P1 (MHz)", "P2 (MHz)"],
            rows,
            title="Figure 10: per-core frequencies (variable assignment)",
        )


def run_per_core_frequency(
    *,
    temps: tuple[float, ...] = FEASIBILITY_TEMPS,
    target_fraction: float = 0.97,
    platform: Platform | None = None,
) -> PerCoreFrequencyResult:
    """Figure 10: P1 vs P2 frequency at a near-maximal feasible target.

    At each starting temperature the variable-mode program is solved for
    ``target_fraction`` of the max feasible average frequency, so the
    thermal constraints bind and the periphery/middle split is visible.
    """
    runner, platform = _figure_runner(platform, None, ())
    optimizer = runner.optimizer(NIAGARA_SPEC, mode="variable")
    p1_list, p2_list = [], []
    for t in temps:
        f_max_feasible = optimizer.max_feasible_target(t)
        assignment = optimizer.solve(t, f_max_feasible * target_fraction)
        p1_list.append(to_mhz(assignment.frequencies[0]))
        p2_list.append(to_mhz(assignment.frequencies[1]))
    return PerCoreFrequencyResult(
        temps=np.array(temps),
        p1_mhz=np.array(p1_list),
        p2_mhz=np.array(p2_list),
    )


# ---------------------------------------------------------------------------
# Figure 11 — effect of the task-assignment policy
# ---------------------------------------------------------------------------


@dataclass
class AssignmentEffectResult:
    """Figure 11 / section 5.4 data.

    Attributes:
        basic_first_idle_over: Basic-DFS fraction of core-time above t_max
            with the default first-idle assignment.
        basic_coolest_over: same with the temperature-aware assignment.
        protemp_gradient_first_idle: Pro-Temp mean spatial gradient with
            first-idle assignment (Celsius).
        protemp_gradient_coolest: same with the temperature-aware
            assignment (Celsius).
    """

    basic_first_idle_over: float
    basic_coolest_over: float
    protemp_gradient_first_idle: float
    protemp_gradient_coolest: float

    @property
    def gradient_reduction(self) -> float:
        """Relative reduction of Pro-Temp's spatial gradient (paper: ~16%)."""
        if self.protemp_gradient_first_idle == 0:
            return 0.0
        return 1.0 - (
            self.protemp_gradient_coolest / self.protemp_gradient_first_idle
        )

    def text(self) -> str:
        """Figure 11-style table."""
        rows = [
            ["Basic-DFS, first-idle", self.basic_first_idle_over * 100],
            ["Basic-DFS, temperature-aware", self.basic_coolest_over * 100],
        ]
        table = format_table(
            ["configuration", "% core-time above t_max"],
            rows,
            title="Figure 11: effect of task assignment",
        )
        return table + (
            f"\nPro-Temp spatial gradient: {self.protemp_gradient_first_idle:.2f}C "
            f"-> {self.protemp_gradient_coolest:.2f}C "
            f"({self.gradient_reduction * 100:.0f}% reduction)"
        )


def run_assignment_effect(
    *,
    duration: float = 40.0,
    seed: int = 7,
    platform: Platform | None = None,
    table: FrequencyTable | None = None,
    outcome_store=None,
) -> AssignmentEffectResult:
    """Figure 11: Basic-DFS and Pro-Temp under both assignment policies.

    Uses the thread-level server workload (long jobs, partial occupancy) —
    the regime of the temperature-aware assignment of [26] the paper
    integrates; see `repro.workloads.benchmarks.server_benchmark` for why
    the 1-10 ms task mixes cannot exhibit an assignment effect.
    """
    policy_specs = (BASIC_DFS_SPEC, PROTEMP_SPEC)
    runner, platform = _figure_runner(
        platform, table, policy_specs, outcome_store
    )
    basic_fi, basic_cf, pro_fi, pro_cf = runner.run_many(
        ScenarioSpec.grid(
            ScenarioSpec(
                platform=NIAGARA_SPEC,
                workload=WorkloadSpec("server", duration),
                seed=seed,
                name="fig11",
            ),
            policy=policy_specs,
            assignment=["first-idle", "coolest-first"],
        )
    )
    return AssignmentEffectResult(
        basic_first_idle_over=basic_fi.violation_fraction,
        basic_coolest_over=basic_cf.violation_fraction,
        protemp_gradient_first_idle=pro_fi.gradient_mean_c,
        protemp_gradient_coolest=pro_cf.gradient_mean_c,
    )
