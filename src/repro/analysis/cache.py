"""Caching for the expensive Phase-1 table builds.

Phase 1 is a design-time activity ("performed only once for a system at
design time", section 3.2) — the paper quotes hours on 2007 hardware.  Our
build takes tens of seconds, but experiments and benchmarks share tables, so
this module provides an in-process cache plus optional JSON persistence.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.protemp import ProTempOptimizer
from repro.core.table import FrequencyTable, build_frequency_table
from repro.platform import Platform

# The canonical grid defaults live with the scenario specs (the scenario
# runner and this legacy cache must agree on them); re-exported here for
# backwards compatibility.
from repro.scenario.specs import (
    DEFAULT_F_GRID,
    DEFAULT_STEP_SUBSAMPLE,
    DEFAULT_T_GRID,
)

_memory_cache: dict[tuple, FrequencyTable] = {}


def default_optimizer(
    platform: Platform,
    *,
    mode: str = "variable",
    step_subsample: int = DEFAULT_STEP_SUBSAMPLE,
) -> ProTempOptimizer:
    """The optimizer configuration shared by experiments and benchmarks."""
    return ProTempOptimizer(
        platform, mode=mode, step_subsample=step_subsample  # type: ignore[arg-type]
    )


def cached_table(
    platform: Platform,
    *,
    mode: str = "variable",
    t_grid: tuple[float, ...] = DEFAULT_T_GRID,
    f_grid: tuple[float, ...] = DEFAULT_F_GRID,
    cache_path: str | Path | None = None,
) -> FrequencyTable:
    """Phase-1 table for `platform`, cached in memory and optionally on disk.

    Args:
        platform: the platform (its name participates in the cache key).
        mode: ``"variable"`` or ``"uniform"`` assignment.
        t_grid: starting-temperature grid (Celsius).
        f_grid: frequency-target grid (Hz).
        cache_path: optional JSON file; loaded when present, written after a
            fresh build.

    Returns:
        The :class:`FrequencyTable`.
    """
    key = (platform.name, mode, t_grid, f_grid, platform.t_max)
    if key in _memory_cache:
        return _memory_cache[key]
    if cache_path is not None:
        path = Path(cache_path)
        if path.exists():
            table = FrequencyTable.load_json(path)
            if (
                tuple(table.t_grid) == t_grid
                and tuple(table.f_grid) == f_grid
                and table.metadata.get("platform") == platform.name
                and table.metadata.get("mode") == mode
            ):
                _memory_cache[key] = table
                return table
    optimizer = default_optimizer(platform, mode=mode)
    table = build_frequency_table(optimizer, list(t_grid), list(f_grid))
    _memory_cache[key] = table
    if cache_path is not None:
        path = Path(cache_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        table.save_json(path)
    return table


def clear_memory_cache() -> None:
    """Drop all in-process cached tables (used by tests)."""
    _memory_cache.clear()
