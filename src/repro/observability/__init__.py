"""Process observability: metric registry, nested spans, run reports.

`repro.observability.report` is intentionally *not* re-exported here:
it reads job journals from `repro.serving`, and the scenario layer
imports this package — importing report eagerly would make the import
graph circular.  CLI and tests import it by module path.
"""

from repro.observability.metrics import (
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.spans import SpanTracker

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTracker",
]
