"""Nested span timing: who spent the wall-time, and inside what.

A *span* is a named ``with`` block.  Spans opened while another span is
active on the same thread become its children, so the aggregate is a
tree keyed by path — ``scenario`` → ``table_resolve`` → ``table_build``
tells you not just that table builds are slow but which fraction of
scenario time they account for.  Per-thread nesting state lives in a
``threading.local`` (no cross-thread sharing to guard); only the
aggregated statistics are shared, and every write to them happens under
the registry lock.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any


class _SpanStats:
    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s: float | None = None
        self.max_s: float | None = None

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        if self.min_s is None or duration < self.min_s:
            self.min_s = duration
        if self.max_s is None or duration > self.max_s:
            self.max_s = duration


class SpanTracker:
    """Aggregates nested span timings into a path-keyed tree."""

    def __init__(
        self, *, lock: threading.RLock, clock: Callable[[], float]
    ) -> None:
        self._lock = lock
        with self._lock:
            self._clock = clock
            self._stats: dict[tuple[str, ...], _SpanStats] = {}
            self._local = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack  # type: ignore[no-any-return]

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        stack = self._stack()
        stack.append(name)
        path = tuple(stack)
        start = self._clock()
        try:
            yield
        finally:
            duration = self._clock() - start
            popped = stack.pop()
            assert popped == name
            with self._lock:
                self._record_locked(path, duration)

    def _record_locked(self, path: tuple[str, ...], duration: float) -> None:
        stats = self._stats.get(path)
        if stats is None:
            stats = _SpanStats()
            self._stats[path] = stats
        stats.add(duration)

    def active_depth(self) -> int:
        """Nesting depth of the calling thread (0 outside any span)."""
        return len(self._stack())

    def paths(self) -> list[tuple[str, ...]]:
        with self._lock:
            return sorted(self._stats)

    def tree(self) -> dict[str, Any]:
        """Nested ``{name: {count, total_s, min_s, max_s, children}}``.

        A parent span finishes *after* its children, so a child path can
        be recorded while its parent has no stats yet; such placeholder
        nodes report ``count == 0`` until the parent closes.
        """
        with self._lock:
            root: dict[str, Any] = {}
            for path in sorted(self._stats):
                level = root
                for name in path:
                    node = level.get(name)
                    if node is None:
                        node = {
                            "count": 0,
                            "total_s": 0.0,
                            "min_s": None,
                            "max_s": None,
                            "children": {},
                        }
                        level[name] = node
                    level = node["children"]
                stats = self._stats[path]
                node["count"] = stats.count
                node["total_s"] = stats.total_s
                node["min_s"] = stats.min_s
                node["max_s"] = stats.max_s
            return root
