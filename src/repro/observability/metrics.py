"""Lock-safe process metrics: counters, gauges, histograms, timers.

The registry is the service's single source of telemetry truth: the
scenario runner, the outcome stores, and the job manager all write into
one :class:`MetricsRegistry`, and ``/metrics``, ``/healthz``
reconciliation, and ``protemp report`` all read from it.  Three design
rules keep it honest:

* **One lock.**  Every metric instance shares the registry's lock, so a
  ``snapshot()`` is a consistent cut across all instruments — counters
  observed together were incremented together.  The classes are listed
  in ``protemp check``'s PT002 shared-state table, so an unguarded write
  is a static-analysis failure, not a code-review hope.
* **Monotone counters.**  ``Counter.inc`` rejects negative deltas; a
  counter that can go down is a gauge, and reconciliation tests rely on
  monotonicity.
* **Injectable clock.**  Timers read an injected ``clock`` callable
  (default ``time.perf_counter``), so tests drive deterministic,
  clock-free latency through the same code path production uses.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.observability.spans import SpanTracker

SNAPSHOT_SCHEMA_VERSION = 1

#: Histogram bucket upper bounds, in seconds.  Chosen for the observed
#: dynamic range of this service: store round-trips are sub-millisecond,
#: scenario executions tens of milliseconds to seconds, table builds
#: seconds to minutes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """A monotonically increasing count.  Negative increments raise."""

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self._lock = lock
        with self._lock:
            self.name = name
            self.help_text = help_text
            self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, in-flight counts)."""

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self._lock = lock
        with self._lock:
            self.name = name
            self.help_text = help_text
            self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max summary stats."""

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self._lock = lock
        with self._lock:
            self.name = name
            self.help_text = help_text
            self._bounds = tuple(sorted(buckets))
            self._bucket_counts = [0] * (len(self._bounds) + 1)  # +inf tail
            self._count = 0
            self._sum = 0.0
            self._min: float | None = None
            self._max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float | None:
        with self._lock:
            if self._count == 0:
                return None
            return self._sum / self._count

    def stats(self) -> dict[str, Any]:
        with self._lock:
            cumulative: list[dict[str, Any]] = []
            running = 0
            for bound, n in zip(self._bounds, self._bucket_counts[:-1]):
                running += n
                cumulative.append({"le": bound, "count": running})
            cumulative.append({"le": "+Inf", "count": self._count})
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": cumulative,
            }


class MetricsRegistry:
    """Get-or-create registry for all instruments plus nested span timing.

    ``counter``/``gauge``/``histogram`` are idempotent by name — asking
    twice returns the same instance, so instrumentation sites never need
    to coordinate creation.  Re-registering a name as a different kind
    is a bug and raises.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self._lock = threading.RLock()
        with self._lock:
            self._clock: Callable[[], float] = (
                clock if clock is not None else time.perf_counter
            )
            self._counters: dict[str, Counter] = {}
            self._gauges: dict[str, Gauge] = {}
            self._histograms: dict[str, Histogram] = {}
            #: Labelled counter families: family name -> sorted label
            #: items -> Counter (whose ``name`` is the full series name).
            self._labelled_counters: dict[
                str, dict[tuple[tuple[str, str], ...], Counter]
            ] = {}
            self._labelled_help: dict[str, str] = {}
            self._spans = SpanTracker(lock=self._lock, clock=self._clock)

    # -- instrument creation ------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
            "labelled counter": self._labelled_counters,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def labelled_counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> Counter:
        """Get-or-create one series of a labelled counter family.

        Same monotone semantics as :meth:`counter`, but the family fans
        out into one series per distinct label set (e.g. per-policy
        tournament counters: ``scenarios_executed_by_policy{policy=...}``).
        Series appear in :meth:`snapshot` under their full
        ``name{key="value"}`` series name and render as proper Prometheus
        labels.  A family name cannot collide with a plain metric.

        Args:
            name: family name (shared by all series).
            help_text: family help text (first caller wins).
            **labels: label key/value pairs; at least one required, values
                are coerced to ``str``.
        """
        if not labels:
            raise ValueError(
                f"labelled counter {name!r} needs at least one label "
                "(use counter() for unlabelled metrics)"
            )
        key = _label_key(name, labels)
        with self._lock:
            self._check_kind(name, "labelled counter")
            family = self._labelled_counters.setdefault(name, {})
            self._labelled_help.setdefault(name, help_text)
            found = family.get(key)
            if found is None:
                found = Counter(_series_name(name, key), help_text, self._lock)
                family[key] = found
            return found

    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            self._check_kind(name, "counter")
            found = self._counters.get(name)
            if found is None:
                found = Counter(name, help_text, self._lock)
                self._counters[name] = found
            return found

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        with self._lock:
            self._check_kind(name, "gauge")
            found = self._gauges.get(name)
            if found is None:
                found = Gauge(name, help_text, self._lock)
                self._gauges[name] = found
            return found

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            self._check_kind(name, "histogram")
            found = self._histograms.get(name)
            if found is None:
                found = Histogram(name, help_text, self._lock, buckets)
                self._histograms[name] = found
            return found

    # -- timing -------------------------------------------------------------

    @contextmanager
    def time(self, name: str, help_text: str = "") -> Iterator[None]:
        """Observe the duration of the ``with`` body into histogram *name*."""
        hist = self.histogram(name, help_text)
        start = self._clock()
        try:
            yield
        finally:
            hist.observe(self._clock() - start)

    def span(self, name: str) -> Any:
        """Open a nested timing span (see :class:`SpanTracker`)."""
        return self._spans.span(name)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent, JSON-serializable cut of every instrument.

        Labelled counter series appear in ``counters`` under their full
        ``name{key="value"}`` series names, alongside plain counters (the
        braces keep the namespaces disjoint).
        """
        with self._lock:
            counters = {
                name: c.value for name, c in self._counters.items()
            }
            for family in self._labelled_counters.values():
                for series in family.values():
                    counters[series.name] = series.value
            return {
                "schema_version": SNAPSHOT_SCHEMA_VERSION,
                "counters": dict(sorted(counters.items())),
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.stats()
                    for name, h in sorted(self._histograms.items())
                },
                "spans": self._spans.tree(),
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (metric names prefixed ``protemp_``)."""
        with self._lock:
            lines: list[str] = []
            for name, counter in sorted(self._counters.items()):
                full = f"protemp_{name}"
                if counter.help_text:
                    lines.append(f"# HELP {full} {counter.help_text}")
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {_format_value(counter.value)}")
            for name, family in sorted(self._labelled_counters.items()):
                full = f"protemp_{name}"
                help_text = self._labelled_help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} counter")
                for key, series in sorted(family.items()):
                    lines.append(
                        f"protemp_{series.name} "
                        f"{_format_value(series.value)}"
                    )
            for name, gauge in sorted(self._gauges.items()):
                full = f"protemp_{name}"
                if gauge.help_text:
                    lines.append(f"# HELP {full} {gauge.help_text}")
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_format_value(gauge.value)}")
            for name, hist in sorted(self._histograms.items()):
                full = f"protemp_{name}"
                stats = hist.stats()
                if hist.help_text:
                    lines.append(f"# HELP {full} {hist.help_text}")
                lines.append(f"# TYPE {full} histogram")
                for bucket in stats["buckets"]:
                    le = bucket["le"]
                    le_text = le if isinstance(le, str) else _format_value(le)
                    lines.append(
                        f'{full}_bucket{{le="{le_text}"}} {bucket["count"]}'
                    )
                lines.append(f"{full}_sum {_format_value(stats['sum'])}")
                lines.append(f"{full}_count {stats['count']}")
            return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_key(
    name: str, labels: dict[str, str]
) -> tuple[tuple[str, str], ...]:
    """Validate and canonicalize a label mapping (sorted items)."""
    items: list[tuple[str, str]] = []
    for key in sorted(labels):
        if not key.isidentifier():
            raise ValueError(
                f"metric {name!r}: label name {key!r} is not an identifier"
            )
        value = str(labels[key])
        if any(ch in value for ch in ('"', "\\", "\n")):
            raise ValueError(
                f"metric {name!r}: label value {value!r} contains "
                "a quote, backslash, or newline"
            )
        items.append((key, value))
    return tuple(items)


def _series_name(name: str, key: tuple[tuple[str, str], ...]) -> str:
    """The full ``name{k="v",...}`` series name for a label key."""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"
