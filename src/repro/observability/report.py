"""`protemp report`: summarize a run from its persisted artifacts.

A finished run leaves up to three artifacts behind — the outcome store
(what was computed), the job journal (what the service accepted and how
it went), and a ``/metrics`` snapshot (where the wall-time went).  This
module turns any subset of them into one report: per-policy solve
counts and wall times, cache-hit tallies, job states and priorities,
and a per-phase wall-time table flattened from the span tree.

The totals here are *the same numbers* the service exposes live:
``report["stores"][i]["totals"]["records"]`` counts the rows that
``/metrics``' ``scenarios_executed_total`` counted as they were solved,
which is what the reconciliation tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.scenario.store import OutcomeStore, open_existing_store

REPORT_SCHEMA_VERSION = 1


def store_report(store: OutcomeStore) -> dict[str, Any]:
    """Summarize one outcome store: solve counts, wall time, cache hits."""
    total = 0
    solve_wall = 0.0
    table_hits = 0
    table_builds = 0
    table_keys: set[str] = set()
    policies: dict[str, dict[str, Any]] = {}
    for record in store.records():
        total += 1
        provenance = record.provenance
        wall = float(provenance.get("solve_wall_time_s") or 0.0)
        solve_wall += wall
        if provenance.get("table_cache_hit"):
            table_hits += 1
        elif provenance.get("table_key"):
            table_builds += 1
        key = provenance.get("table_key")
        if key:
            table_keys.add(str(key))
        name = str(record.summary.get("policy", "?"))
        entry = policies.setdefault(
            name,
            {"records": 0, "solve_wall_time_s": 0.0, "max_solve_wall_time_s": 0.0},
        )
        entry["records"] += 1
        entry["solve_wall_time_s"] += wall
        if wall > entry["max_solve_wall_time_s"]:
            entry["max_solve_wall_time_s"] = wall
    return {
        "totals": {
            "records": total,
            "solve_wall_time_s": solve_wall,
            "table_cache_hits": table_hits,
            "table_cold_builds": table_builds,
            "distinct_table_keys": len(table_keys),
        },
        "policies": {name: policies[name] for name in sorted(policies)},
    }


def journal_report(state_path: str | Path) -> dict[str, Any]:
    """Summarize a job journal: states, counters, priorities, durations."""
    from repro.serving.state import JobJournal

    journal = JobJournal(state_path)
    try:
        states: dict[str, int] = {}
        executed = 0
        replayed = 0
        failed = 0
        priorities: dict[str, int] = {}
        jobs: list[dict[str, Any]] = []
        for entry in journal.entries():
            states[entry.state] = states.get(entry.state, 0) + 1
            executed += entry.scenarios_executed
            replayed += entry.outcomes_replayed
            failed += entry.failed
            priorities[str(entry.priority)] = (
                priorities.get(str(entry.priority), 0) + 1
            )
            duration: float | None = None
            if entry.finished_at is not None:
                duration = entry.finished_at - entry.created_at
            jobs.append(
                {
                    "job_id": entry.job_id,
                    "state": entry.state,
                    "priority": entry.priority,
                    "n_scenarios": entry.n_scenarios,
                    "scenarios_executed": entry.scenarios_executed,
                    "outcomes_replayed": entry.outcomes_replayed,
                    "failed": entry.failed,
                    "duration_s": duration,
                }
            )
        return {
            "schema_version": journal.schema_version(),
            "jobs": jobs,
            "totals": {
                "jobs": len(jobs),
                "by_state": {s: states[s] for s in sorted(states)},
                "by_priority": {p: priorities[p] for p in sorted(priorities)},
                "scenarios_executed": executed,
                "outcomes_replayed": replayed,
                "failed": failed,
            },
        }
    finally:
        journal.close()


def _flatten_spans(
    tree: dict[str, Any], prefix: str = ""
) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for name in sorted(tree):
        node = tree[name]
        path = f"{prefix}/{name}" if prefix else name
        rows.append(
            {
                "phase": path,
                "count": node["count"],
                "total_s": node["total_s"],
                "mean_s": (
                    node["total_s"] / node["count"] if node["count"] else None
                ),
                "max_s": node["max_s"],
            }
        )
        rows.extend(_flatten_spans(node["children"], path))
    return rows


def metrics_report(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Summarize a ``/metrics`` JSON snapshot: counters + phase table."""
    return {
        "schema_version": snapshot.get("schema_version"),
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "phases": _flatten_spans(snapshot.get("spans", {})),
    }


def build_report(
    *,
    stores: list[str] | None = None,
    state: str | None = None,
    metrics: str | None = None,
    tournament: bool = False,
) -> dict[str, Any]:
    """Assemble the full report from any subset of run artifacts.

    Args:
        stores: outcome-store locations (`open_existing_store` grammar —
            the store must already exist; a report never creates one).
        state: path of a `--state` job journal.
        metrics: path of a saved ``/metrics`` JSON snapshot.
        tournament: also reduce the stores' records (all of them, pooled
            and deduplicated) into a ranked head-to-head tournament
            section; requires `stores` and at least two distinct policies
            among the records.

    Raises:
        ScenarioError: `tournament` without stores, or with records that
            do not form a tournament (fewer than two policies).
    """
    report: dict[str, Any] = {"schema_version": REPORT_SCHEMA_VERSION}
    if stores:
        summaries = []
        opened = []
        for location in stores:
            store = open_existing_store(location)
            opened.append(store)
            summary = store_report(store)
            summary["store"] = str(location)
            summaries.append(summary)
        report["stores"] = summaries
        if tournament:
            # Lazy: the reducer pulls in the scenario-spec layer, which
            # a journal/metrics-only report never needs.
            from repro.analysis.tournament import tournament_from_records

            report["tournament"] = tournament_from_records(
                record for store in opened for record in store.records()
            )
    elif tournament:
        from repro.errors import ScenarioError

        raise ScenarioError(
            "a tournament report needs at least one outcome store "
            "(give store paths alongside --tournament)"
        )
    if state is not None:
        report["journal"] = journal_report(state)
    if metrics is not None:
        snapshot = json.loads(Path(metrics).read_text(encoding="utf-8"))
        report["metrics"] = metrics_report(snapshot)
    return report


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _seconds(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}"


def render_report(report: dict[str, Any]) -> str:
    """Human-readable text rendering of :func:`build_report` output."""
    lines: list[str] = []
    section = report.get("tournament")
    if section is not None:
        from repro.analysis.tournament import render_tournament

        lines.append(render_tournament(section).rstrip())
        lines.append("")
    for summary in report.get("stores", []):
        totals = summary["totals"]
        lines.append(f"outcome store: {summary['store']}")
        lines.append(
            f"  records {totals['records']}"
            f" | solve wall {_seconds(totals['solve_wall_time_s'])}s"
            f" | table cache hits {totals['table_cache_hits']}"
            f" | cold builds {totals['table_cold_builds']}"
            f" | distinct tables {totals['distinct_table_keys']}"
        )
        if summary["policies"]:
            rows = [
                [
                    name,
                    str(entry["records"]),
                    _seconds(entry["solve_wall_time_s"]),
                    _seconds(entry["max_solve_wall_time_s"]),
                ]
                for name, entry in summary["policies"].items()
            ]
            lines.append("")
            lines.extend(
                "  " + line
                for line in _table(
                    ["policy", "records", "solve_wall_s", "max_solve_s"], rows
                )
            )
        lines.append("")
    journal = report.get("journal")
    if journal is not None:
        totals = journal["totals"]
        lines.append(
            f"job journal: {totals['jobs']} jobs"
            f" (schema v{journal['schema_version']})"
        )
        lines.append(
            f"  by state {totals['by_state']}"
            f" | by priority {totals['by_priority']}"
        )
        lines.append(
            f"  scenarios executed {totals['scenarios_executed']}"
            f" | replayed {totals['outcomes_replayed']}"
            f" | failed {totals['failed']}"
        )
        if journal["jobs"]:
            rows = [
                [
                    job["job_id"],
                    job["state"],
                    str(job["priority"]),
                    f"{job['scenarios_executed']}/{job['n_scenarios']}",
                    str(job["outcomes_replayed"]),
                    _seconds(job["duration_s"]),
                ]
                for job in journal["jobs"]
            ]
            lines.append("")
            lines.extend(
                "  " + line
                for line in _table(
                    ["job", "state", "prio", "executed", "replayed", "wall_s"],
                    rows,
                )
            )
        lines.append("")
    metrics = report.get("metrics")
    if metrics is not None:
        lines.append("metrics snapshot")
        counters = metrics["counters"]
        if counters:
            rows = [
                [name, _format_number(value)]
                for name, value in sorted(counters.items())
            ]
            lines.extend("  " + line for line in _table(["counter", "value"], rows))
            lines.append("")
        if metrics["phases"]:
            rows = [
                [
                    row["phase"],
                    str(row["count"]),
                    _seconds(row["total_s"]),
                    _seconds(row["mean_s"]),
                    _seconds(row["max_s"]),
                ]
                for row in metrics["phases"]
            ]
            lines.extend(
                "  " + line
                for line in _table(
                    ["phase", "count", "total_s", "mean_s", "max_s"], rows
                )
            )
            lines.append("")
    if not lines:
        return "nothing to report (no store, journal, or metrics given)\n"
    return "\n".join(lines).rstrip() + "\n"


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"
