"""Task-trace persistence (CSV and JSON lines).

Traces are the experiment inputs; persisting them makes runs auditable and
lets externally captured traces (e.g. real scheduler logs reduced to
arrival/workload pairs) drive the simulator.  Two formats:

* **CSV** — ``task_id,arrival_s,workload_s`` with a header row; friendly to
  spreadsheets and awk;
* **JSONL** — one JSON object per line, with a leading metadata line
  carrying the trace name (richer, still streamable).

Both formats share the table layer's float-hygiene contract: non-finite
values (NaN, +/-inf) are **rejected at save time** — ``repr(nan)`` would
happily round-trip through CSV and a NaN arrival defeats every ordering
check downstream (NaN comparisons are all False).  The JSONL writer uses
``allow_nan=False`` for the same reason; there is no -inf encoding because
no trace field legitimately takes one.

:func:`load_trace_file` is the scenario-facing entry point: it dispatches
on the file suffix and verifies the content's SHA-256 against the hash
recorded in the scenario spec, so outcome stores stay honest when a file
is moved (same hash) or edited in place (hash mismatch fails loudly).
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from pathlib import Path

from repro.errors import WorkloadError
from repro.sim.task import Task, TaskTrace

CSV_HEADER = ("task_id", "arrival_s", "workload_s")

#: File suffixes :func:`load_trace_file` understands, mapped to loaders.
TRACE_SUFFIXES = (".csv", ".jsonl")


def _check_finite(task: Task, path: Path) -> None:
    if not math.isfinite(task.arrival) or not math.isfinite(task.workload):
        raise WorkloadError(
            f"{path}: task {task.task_id} has a non-finite field "
            f"(arrival={task.arrival!r}, workload={task.workload!r}); "
            "traces must contain finite values only"
        )


def save_trace_csv(trace: TaskTrace, path: str | Path) -> None:
    """Write a trace as CSV (see module docstring for the schema).

    Raises:
        WorkloadError: when a task carries a non-finite arrival or
            workload (nothing is written in that case).
    """
    path = Path(path)
    for task in trace:
        _check_finite(task, path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_HEADER)
        for task in trace:
            writer.writerow([task.task_id, repr(task.arrival), repr(task.workload)])


def load_trace_csv(path: str | Path, *, name: str | None = None) -> TaskTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Args:
        path: CSV file path.
        name: trace name; defaults to the file stem.

    Raises:
        WorkloadError: on malformed rows or a wrong header.
    """
    path = Path(path)
    tasks: list[Task] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise WorkloadError(f"{path}: empty trace file") from None
        if header != CSV_HEADER:
            raise WorkloadError(
                f"{path}: expected header {CSV_HEADER}, got {header}"
            )
        for row_num, row in enumerate(reader, start=2):
            try:
                task_id, arrival, workload = row
                tasks.append(
                    Task(
                        task_id=int(task_id),
                        arrival=float(arrival),
                        workload=float(workload),
                    )
                )
            except (ValueError, WorkloadError) as exc:
                raise WorkloadError(
                    f"{path}:{row_num}: bad trace row {row!r}: {exc}"
                ) from exc
    return TaskTrace(tasks=tasks, name=name or path.stem)


def save_trace_jsonl(trace: TaskTrace, path: str | Path) -> None:
    """Write a trace as JSON lines with a metadata header line.

    Raises:
        WorkloadError: when a task carries a non-finite arrival or
            workload (nothing is written; ``allow_nan=False`` below is the
            backstop, this check gives the actionable message).
    """
    path = Path(path)
    for task in trace:
        _check_finite(task, path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        handle.write(
            json.dumps({"kind": "trace-meta", "name": trace.name,
                        "tasks": len(trace)}, allow_nan=False)
            + "\n"
        )
        for task in trace:
            handle.write(
                json.dumps(
                    {
                        "id": task.task_id,
                        "arrival": task.arrival,
                        "workload": task.workload,
                    },
                    allow_nan=False,
                )
                + "\n"
            )


def load_trace_jsonl(path: str | Path) -> TaskTrace:
    """Read a trace written by :func:`save_trace_jsonl`.

    Raises:
        WorkloadError: on malformed lines or missing metadata.
    """
    path = Path(path)
    tasks: list[Task] = []
    name = path.stem
    with path.open() as handle:
        for line_num, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}:{line_num}: invalid JSON: {exc}"
                ) from exc
            if obj.get("kind") == "trace-meta":
                name = obj.get("name", name)
                continue
            try:
                tasks.append(
                    Task(
                        task_id=int(obj["id"]),
                        arrival=float(obj["arrival"]),
                        workload=float(obj["workload"]),
                    )
                )
            except (KeyError, ValueError, WorkloadError) as exc:
                raise WorkloadError(
                    f"{path}:{line_num}: bad task record: {exc}"
                ) from exc
    return TaskTrace(tasks=tasks, name=name)


# -- content-addressed loading (the "trace-file" workload) -------------------


def file_sha256(path: str | Path) -> str:
    """Hex SHA-256 of a file's bytes (the trace-file content hash).

    Raises:
        WorkloadError: when the file does not exist.
    """
    path = Path(path)
    try:
        digest = hashlib.sha256()
        with path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 16), b""):
                digest.update(chunk)
    except OSError as exc:
        raise WorkloadError(f"cannot hash trace file {path}: {exc}") from exc
    return digest.hexdigest()


def trace_file_params(path: str | Path) -> dict[str, str]:
    """Workload params for a ``trace-file`` scenario spec.

    Returns ``{"path": ..., "sha256": ...}`` — the shape the registered
    ``trace-file`` workload factory expects.  The spec hash covers the
    ``sha256`` (the content) but deliberately *not* the ``path``, so the
    same measured trace keyed from two locations replays from one outcome-
    store record, while an edited file changes the hash and re-runs.
    """
    return {"path": str(path), "sha256": file_sha256(path)}


def load_trace_file(
    path: str | Path,
    *,
    sha256: str | None = None,
    max_duration: float | None = None,
    name: str | None = None,
) -> TaskTrace:
    """Load a CSV/JSONL trace with optional content verification.

    Args:
        path: trace file; the suffix picks the format (see
            :data:`TRACE_SUFFIXES`).
        sha256: expected content hash; a mismatch (file edited since the
            spec was built) raises instead of silently simulating
            different work under the old spec hash.
        max_duration: drop tasks arriving after this time (s) — the
            scenario's workload ``duration`` caps a longer measured trace.
        name: trace name override (defaults to the file's own).

    Raises:
        WorkloadError: on unknown suffixes, missing files, malformed
            content, or a content-hash mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"no such trace file: {path}")
    if sha256 is not None:
        actual = file_sha256(path)
        if actual != sha256:
            raise WorkloadError(
                f"trace file {path} content hash mismatch: spec expects "
                f"{sha256}, file has {actual} (the file changed since the "
                "spec was built; refresh the spec with trace_file_params)"
            )
    suffix = path.suffix.lower()
    if suffix == ".csv":
        trace = load_trace_csv(path, name=name)
    elif suffix == ".jsonl":
        trace = load_trace_jsonl(path)
        if name is not None:
            trace = TaskTrace(tasks=trace.tasks, name=name)
    else:
        raise WorkloadError(
            f"unknown trace file suffix {path.suffix!r} for {path}; "
            f"expected one of {TRACE_SUFFIXES}"
        )
    if max_duration is not None:
        kept = [t for t in trace.tasks if t.arrival <= max_duration]
        trace = TaskTrace(tasks=kept, name=trace.name)
    return trace
