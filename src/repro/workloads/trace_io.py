"""Task-trace persistence (CSV and JSON lines).

Traces are the experiment inputs; persisting them makes runs auditable and
lets externally captured traces (e.g. real scheduler logs reduced to
arrival/workload pairs) drive the simulator.  Two formats:

* **CSV** — ``task_id,arrival_s,workload_s`` with a header row; friendly to
  spreadsheets and awk;
* **JSONL** — one JSON object per line, with a leading metadata line
  carrying the trace name (richer, still streamable).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import WorkloadError
from repro.sim.task import Task, TaskTrace

CSV_HEADER = ("task_id", "arrival_s", "workload_s")


def save_trace_csv(trace: TaskTrace, path: str | Path) -> None:
    """Write a trace as CSV (see module docstring for the schema)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_HEADER)
        for task in trace:
            writer.writerow([task.task_id, repr(task.arrival), repr(task.workload)])


def load_trace_csv(path: str | Path, *, name: str | None = None) -> TaskTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Args:
        path: CSV file path.
        name: trace name; defaults to the file stem.

    Raises:
        WorkloadError: on malformed rows or a wrong header.
    """
    path = Path(path)
    tasks: list[Task] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise WorkloadError(f"{path}: empty trace file") from None
        if header != CSV_HEADER:
            raise WorkloadError(
                f"{path}: expected header {CSV_HEADER}, got {header}"
            )
        for row_num, row in enumerate(reader, start=2):
            try:
                task_id, arrival, workload = row
                tasks.append(
                    Task(
                        task_id=int(task_id),
                        arrival=float(arrival),
                        workload=float(workload),
                    )
                )
            except (ValueError, WorkloadError) as exc:
                raise WorkloadError(
                    f"{path}:{row_num}: bad trace row {row!r}: {exc}"
                ) from exc
    return TaskTrace(tasks=tasks, name=name or path.stem)


def save_trace_jsonl(trace: TaskTrace, path: str | Path) -> None:
    """Write a trace as JSON lines with a metadata header line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        handle.write(
            json.dumps({"kind": "trace-meta", "name": trace.name,
                        "tasks": len(trace)}, allow_nan=False)
            + "\n"
        )
        for task in trace:
            handle.write(
                json.dumps(
                    {
                        "id": task.task_id,
                        "arrival": task.arrival,
                        "workload": task.workload,
                    },
                    allow_nan=False,
                )
                + "\n"
            )


def load_trace_jsonl(path: str | Path) -> TaskTrace:
    """Read a trace written by :func:`save_trace_jsonl`.

    Raises:
        WorkloadError: on malformed lines or missing metadata.
    """
    path = Path(path)
    tasks: list[Task] = []
    name = path.stem
    with path.open() as handle:
        for line_num, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}:{line_num}: invalid JSON: {exc}"
                ) from exc
            if obj.get("kind") == "trace-meta":
                name = obj.get("name", name)
                continue
            try:
                tasks.append(
                    Task(
                        task_id=int(obj["id"]),
                        arrival=float(obj["arrival"]),
                        workload=float(obj["workload"]),
                    )
                )
            except (KeyError, ValueError, WorkloadError) as exc:
                raise WorkloadError(
                    f"{path}:{line_num}: bad task record: {exc}"
                ) from exc
    return TaskTrace(tasks=tasks, name=name)
