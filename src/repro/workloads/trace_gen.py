"""Task-trace generators: arrival processes and workload distributions.

The paper's traces come from real benchmark executions [26]; only their
aggregate statistics are published: task lengths of 1-10 ms, ~60,000 tasks
over several hundred seconds, and bursty arrivals ("due to the burstiness in
the task arrival pattern...", section 5.4).  These generators expose exactly
those statistics as parameters:

* :func:`poisson_trace` — memoryless arrivals at a given offered load;
* :func:`bursty_trace` — a two-state modulated Poisson process (on/off
  bursts), the standard model for bursty service traffic.

All randomness flows through a seeded generator, so every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.task import Task, TaskTrace


@dataclass(frozen=True)
class WorkloadDistribution:
    """Uniform task-length distribution in ``[minimum, maximum]`` seconds.

    The paper's benchmarks have "a workload of 1 ms - 10 ms" (section 3.1);
    a uniform distribution over that range has mean 5.5 ms, which is what
    the generators default to.
    """

    minimum: float = 1e-3
    maximum: float = 10e-3

    def __post_init__(self) -> None:
        if not 0 < self.minimum <= self.maximum:
            raise WorkloadError("need 0 < minimum <= maximum")

    @property
    def mean(self) -> float:
        """Mean task length (s)."""
        return 0.5 * (self.minimum + self.maximum)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw `size` task lengths."""
        return rng.uniform(self.minimum, self.maximum, size)


def arrival_rate_for_load(
    offered_load: float,
    n_cores: int,
    mean_workload: float,
) -> float:
    """Arrival rate (tasks/s) producing a given offered load.

    `offered_load` is demand as a fraction of the whole platform running at
    f_max: ``rate * mean_workload = offered_load * n_cores``.
    """
    if offered_load < 0:
        raise WorkloadError("offered_load must be >= 0")
    if n_cores < 1 or mean_workload <= 0:
        raise WorkloadError("n_cores and mean_workload must be positive")
    return offered_load * n_cores / mean_workload


def poisson_trace(
    duration: float,
    offered_load: float,
    n_cores: int,
    *,
    workload: WorkloadDistribution | None = None,
    seed: int = 0,
    name: str = "poisson",
) -> TaskTrace:
    """Poisson arrivals at a constant offered load.

    Args:
        duration: trace length (s).
        offered_load: demand as a fraction of full-platform f_max capacity.
        n_cores: number of cores the load is scaled for.
        workload: task-length distribution (default: the paper's 1-10 ms).
        seed: RNG seed.
        name: trace label.

    Returns:
        A :class:`TaskTrace`.
    """
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    dist = workload or WorkloadDistribution()
    rate = arrival_rate_for_load(offered_load, n_cores, dist.mean)
    rng = np.random.default_rng(seed)
    if rate == 0:
        return TaskTrace(tasks=[], name=name)
    # Draw ~expected + 5 sigma inter-arrival gaps, then trim to duration.
    expected = rate * duration
    n_draw = int(expected + 5 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate, n_draw)
    arrivals = np.cumsum(gaps)
    while arrivals[-1] < duration:
        extra = rng.exponential(1.0 / rate, n_draw)
        arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
    arrivals = arrivals[arrivals < duration]
    lengths = dist.sample(rng, len(arrivals))
    tasks = [
        Task(task_id=i, arrival=float(t), workload=float(w))
        for i, (t, w) in enumerate(zip(arrivals, lengths))
    ]
    return TaskTrace(tasks=tasks, name=name)


def bursty_trace(
    duration: float,
    burst_load: float,
    idle_load: float,
    n_cores: int,
    *,
    burst_length: float = 2.0,
    idle_length: float = 2.0,
    workload: WorkloadDistribution | None = None,
    seed: int = 0,
    name: str = "bursty",
) -> TaskTrace:
    """Two-state modulated Poisson arrivals (bursts and lulls).

    The process alternates exponentially distributed *burst* periods (high
    offered load) and *idle* periods (low offered load).

    Args:
        duration: trace length (s).
        burst_load: offered load during bursts.
        idle_load: offered load during lulls.
        n_cores: number of cores the load is scaled for.
        burst_length: mean burst duration (s).
        idle_length: mean lull duration (s).
        workload: task-length distribution.
        seed: RNG seed.
        name: trace label.

    Returns:
        A :class:`TaskTrace`.
    """
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    if burst_length <= 0 or idle_length <= 0:
        raise WorkloadError("burst/idle lengths must be positive")
    dist = workload or WorkloadDistribution()
    rng = np.random.default_rng(seed)

    arrivals: list[float] = []
    t = 0.0
    in_burst = True
    while t < duration:
        mean_len = burst_length if in_burst else idle_length
        load = burst_load if in_burst else idle_load
        span = rng.exponential(mean_len)
        span = min(span, duration - t)
        rate = arrival_rate_for_load(load, n_cores, dist.mean)
        if rate > 0:
            u = t
            while True:
                u += rng.exponential(1.0 / rate)
                if u >= t + span:
                    break
                arrivals.append(u)
        t += span
        in_burst = not in_burst

    lengths = dist.sample(rng, len(arrivals))
    tasks = [
        Task(task_id=i, arrival=float(a), workload=float(w))
        for i, (a, w) in enumerate(zip(arrivals, lengths))
    ]
    return TaskTrace(tasks=tasks, name=name)
