"""Workload and benchmark trace generation."""

from repro.workloads.benchmarks import (
    compute_benchmark,
    merge_traces,
    mixed_benchmark,
    multimedia_benchmark,
    paper_scale_trace,
    server_benchmark,
    web_benchmark,
)
from repro.workloads.trace_gen import (
    WorkloadDistribution,
    arrival_rate_for_load,
    bursty_trace,
    poisson_trace,
)
from repro.workloads.trace_io import (
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)

__all__ = [
    "WorkloadDistribution",
    "arrival_rate_for_load",
    "bursty_trace",
    "compute_benchmark",
    "load_trace_csv",
    "load_trace_jsonl",
    "merge_traces",
    "mixed_benchmark",
    "multimedia_benchmark",
    "paper_scale_trace",
    "poisson_trace",
    "save_trace_csv",
    "save_trace_jsonl",
    "server_benchmark",
    "web_benchmark",
]
