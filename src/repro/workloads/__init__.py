"""Workload and benchmark trace generation."""

from repro.workloads.benchmarks import (
    compute_benchmark,
    merge_traces,
    mixed_benchmark,
    multimedia_benchmark,
    paper_scale_trace,
    server_benchmark,
    web_benchmark,
)
from repro.workloads.trace_gen import (
    WorkloadDistribution,
    arrival_rate_for_load,
    bursty_trace,
    poisson_trace,
)
from repro.workloads.trace_io import (
    file_sha256,
    load_trace_csv,
    load_trace_file,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
    trace_file_params,
)

__all__ = [
    "WorkloadDistribution",
    "arrival_rate_for_load",
    "bursty_trace",
    "compute_benchmark",
    "file_sha256",
    "load_trace_csv",
    "load_trace_file",
    "load_trace_jsonl",
    "merge_traces",
    "mixed_benchmark",
    "multimedia_benchmark",
    "paper_scale_trace",
    "poisson_trace",
    "save_trace_csv",
    "save_trace_jsonl",
    "server_benchmark",
    "trace_file_params",
    "web_benchmark",
]
