"""Named benchmark workloads mirroring the paper's evaluation traces.

Section 5: "We use the execution characteristics of tasks from a mix of
different benchmarks, ranging from web-accessing to playing multimedia
files [26].  The maximum task/thread lengths of the benchmarks is around
10 ms.  The experiments are conducted using a large trace with around
60,000 tasks, modeling several hundred seconds of actual system execution."

We model each benchmark class by its arrival pattern and task-length
profile, and provide:

* :func:`web_benchmark` — bursty, short requests (1-4 ms);
* :func:`multimedia_benchmark` — steady frame-processing tasks (5-10 ms);
* :func:`compute_benchmark` — sustained heavy computation (4-10 ms), the
  paper's "most computation intensive benchmark" (Figure 6b);
* :func:`mixed_benchmark` — the web+multimedia+compute mix used for
  Figures 1, 2, 6a and 8;
* :func:`paper_scale_trace` — a ~60,000-task mixed trace (~= the paper's
  full experiment scale).

Offered loads are expressed relative to the platform's full-speed capacity.
On the calibrated Niagara-8, the *thermally sustainable* load at
t_max = 100 C is roughly 0.48, so the compute benchmark (0.6 by default) is
beyond sustainable — the regime where the policies differ most — while the
mixed benchmark averages ~0.55 with bursts above 1.0.  At 0.6 the measured
Figure 7 waiting-time ratio lands at the paper's ~0.4.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.task import Task, TaskTrace
from repro.workloads.trace_gen import (
    WorkloadDistribution,
    bursty_trace,
    poisson_trace,
)


def merge_traces(traces: list[TaskTrace], name: str) -> TaskTrace:
    """Interleave several traces into one, re-numbering task ids."""
    if not traces:
        raise WorkloadError("merge_traces needs at least one trace")
    tasks = sorted(
        (t for trace in traces for t in trace.tasks), key=lambda t: t.arrival
    )
    renumbered = [
        Task(task_id=i, arrival=t.arrival, workload=t.workload)
        for i, t in enumerate(tasks)
    ]
    return TaskTrace(tasks=renumbered, name=name)


def web_benchmark(
    duration: float, n_cores: int, *, seed: int = 0
) -> TaskTrace:
    """Bursty short-request workload (web serving)."""
    return bursty_trace(
        duration,
        burst_load=0.7,
        idle_load=0.05,
        n_cores=n_cores,
        burst_length=1.5,
        idle_length=3.5,
        workload=WorkloadDistribution(1e-3, 4e-3),
        seed=seed,
        name="web",
    )


def multimedia_benchmark(
    duration: float, n_cores: int, *, seed: int = 0
) -> TaskTrace:
    """Steady medium-length workload (media playback/encode)."""
    return poisson_trace(
        duration,
        offered_load=0.12,
        n_cores=n_cores,
        workload=WorkloadDistribution(5e-3, 10e-3),
        seed=seed,
        name="multimedia",
    )


def compute_benchmark(
    duration: float, n_cores: int, *, seed: int = 0, offered_load: float = 0.6
) -> TaskTrace:
    """The paper's most computation-intensive benchmark (Figure 6b).

    Sustained demand far above the thermally sustainable load, with long
    tasks; the No-TC and Basic-DFS policies spend large fractions of time
    above t_max here.
    """
    return poisson_trace(
        duration,
        offered_load=offered_load,
        n_cores=n_cores,
        workload=WorkloadDistribution(4e-3, 10e-3),
        seed=seed,
        name="compute",
    )


def server_benchmark(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    offered_load: float = 0.15,
) -> TaskTrace:
    """Sparse long-running jobs (thread-level, 100-400 ms) — section 5.4.

    The paper's Figure 11 experiment integrates the thread-level
    temperature-aware assignment of Coskun et al. [26].  Assignment choice
    only moves heat when individual jobs are long relative to the DFS
    window and cores are partially occupied; with the paper's 1-10 ms tasks
    and a shared frequency the per-core power differences are negligible
    (we verified this in simulation — see EXPERIMENTS.md).  This benchmark
    therefore models [26]'s workload class directly: Poisson arrivals of
    100-400 ms jobs at low occupancy, so each job runs near f_max on one
    core for several windows and *where* it lands decides whether a
    pre-heated core overshoots.
    """
    return poisson_trace(
        duration,
        offered_load=offered_load,
        n_cores=n_cores,
        workload=WorkloadDistribution(100e-3, 400e-3),
        seed=seed,
        name="server",
    )


def mixed_benchmark(
    duration: float, n_cores: int, *, seed: int = 0
) -> TaskTrace:
    """The web + multimedia + background-compute mix (Figures 1/2/6a/8)."""
    parts = [
        web_benchmark(duration, n_cores, seed=seed),
        multimedia_benchmark(duration, n_cores, seed=seed + 1),
        bursty_trace(
            duration,
            burst_load=0.5,
            idle_load=0.02,
            n_cores=n_cores,
            burst_length=2.5,
            idle_length=4.5,
            workload=WorkloadDistribution(4e-3, 10e-3),
            seed=seed + 2,
            name="background-compute",
        ),
    ]
    return merge_traces(parts, name="mixed")


def paper_scale_trace(
    n_cores: int, *, seed: int = 0, target_tasks: int = 60_000
) -> TaskTrace:
    """A mixed trace with roughly the paper's 60,000 tasks.

    The mixed benchmark produces ~330 tasks/s on 8 cores, so the duration is
    chosen as ``target_tasks / rate`` and the result trimmed.
    """
    if target_tasks < 1:
        raise WorkloadError("target_tasks must be >= 1")
    probe = mixed_benchmark(30.0, n_cores, seed=seed)
    rate = max(len(probe) / 30.0, 1e-9)
    duration = target_tasks / rate * 1.1
    trace = mixed_benchmark(duration, n_cores, seed=seed)
    # Burstiness makes the first estimate noisy; extend until covered.
    for _ in range(8):
        if len(trace) >= target_tasks:
            break
        duration *= 1.3
        trace = mixed_benchmark(duration, n_cores, seed=seed)
    if len(trace) < target_tasks:
        raise WorkloadError(
            f"could not generate {target_tasks} tasks (got {len(trace)})"
        )
    tasks = trace.tasks[:target_tasks]
    return TaskTrace(tasks=tasks, name=f"paper-scale-{target_tasks}")
