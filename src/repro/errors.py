"""Exception hierarchy for the Pro-Temp reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from numerical
failures.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def did_you_mean(name: str, choices: Iterable[str]) -> str:
    """Error-message suffix suggesting the closest valid choice.

    Returns ``"; did you mean 'x'?"`` when `name` is close to one of
    `choices` (by :func:`difflib.get_close_matches`), otherwise an empty
    string — so callers can unconditionally append it to a message.
    Shared by the CLI subcommand dispatcher and the spec/registry
    validators so every unknown-name error reads the same way.
    """
    matches = difflib.get_close_matches(name, list(choices), n=1)
    if not matches:
        return ""
    return f"; did you mean {matches[0]!r}?"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FloorplanError(ReproError):
    """A floorplan is malformed (overlaps, bad dimensions, unknown blocks)."""


class ThermalModelError(ReproError):
    """A thermal model could not be built or is numerically unusable."""


class StabilityError(ThermalModelError):
    """The explicit-Euler discretization is unstable at the requested step."""


class PowerModelError(ReproError):
    """A power model received inconsistent parameters."""


class SolverError(ReproError):
    """The convex solver failed to converge or received a bad problem."""


class InfeasibleError(SolverError):
    """The convex program has an empty feasible set.

    Phase 1 of Pro-Temp relies on this signal: an infeasible
    (start-temperature, target-frequency) design point is recorded as such in
    the frequency table, and the run-time controller falls back to the next
    lower frequency row (paper section 3.3).
    """


class TableError(ReproError):
    """A frequency table lookup or (de)serialization failed."""


class SimulationError(ReproError):
    """The multi-core simulator was configured inconsistently."""


class WorkloadError(ReproError):
    """A workload/trace generator received invalid parameters."""


class OutcomeStoreError(ReproError):
    """An outcome store is corrupt, conflicting, or colliding.

    Raised when a stored record fails validation (its spec no longer hashes
    to its key), when two records share a spec hash but describe different
    specs (a hash collision), or when the *same* spec maps to two different
    summary rows (a determinism violation — scenario runs are seeded, so
    one spec must always produce one summary).
    """


class ServiceError(ReproError):
    """A scenario-service request failed (client- or server-side).

    Raised by the long-lived ``protemp serve`` service and its client for
    transport- and protocol-level failures: malformed requests, unknown
    jobs, submits rejected while the service drains, or an unreachable
    server.  Carries the HTTP status the condition maps to, so the server
    can render a structured error response and the client can re-raise the
    body it received.

    Attributes:
        status: the HTTP status code associated with the failure (e.g.
            400 for a malformed config, 404 for an unknown job, 503 while
            draining); None when no HTTP exchange is involved (e.g. a
            connection failure).
        retry_after_s: backoff hint in seconds, set on overload
            rejections (status 429) by the admission controller; rendered
            as a top-level ``retry_after_s`` field in the error body and
            a ``Retry-After`` header.  None for every other failure.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class DevtoolsError(ReproError):
    """A developer-tooling invocation is invalid (``protemp check``).

    Raised for *usage* problems — unknown rule ids, missing paths,
    unreadable inputs — never for findings: a finding is a result (the
    check exits 1), while a :class:`DevtoolsError` means the check could
    not run as requested (exit 2, like every other CLI usage error).
    """


class ScenarioError(ReproError, ValueError):
    """A scenario spec, registry lookup, or scenario run is invalid.

    Also a :class:`ValueError`: unknown registry names and malformed spec
    fields are invalid values, and pre-scenario APIs raised ValueError for
    them — callers catching that keep working.
    """
