"""Unit conventions and conversion helpers.

The library uses SI units internally everywhere:

===============  ==========================
quantity         unit
===============  ==========================
length           metre (m)
area             square metre (m^2)
time             second (s)
frequency        hertz (Hz)
power            watt (W)
temperature      degree Celsius (linear RC models are offset-invariant,
                 so Celsius and Kelvin are interchangeable; we follow the
                 paper and report Celsius)
thermal R        kelvin per watt (K/W)
thermal C        joule per kelvin (J/K)
===============  ==========================

The paper quotes frequencies in MHz/GHz, times in milliseconds and lengths in
millimetres; these helpers keep call sites readable without a heavyweight
units package.
"""

from __future__ import annotations

# -- scale factors (multiply to convert INTO the SI base unit) ---------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def mm(value: float) -> float:
    """Millimetres to metres."""
    return value * MILLI


def mm2(value: float) -> float:
    """Square millimetres to square metres."""
    return value * MILLI * MILLI


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLI


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICRO


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MEGA


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GIGA


def to_mhz(value_hz: float) -> float:
    """Hertz to megahertz (for reporting, matching the paper's axes)."""
    return value_hz / MEGA


def to_ms(value_s: float) -> float:
    """Seconds to milliseconds (for reporting)."""
    return value_s / MILLI
