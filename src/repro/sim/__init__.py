"""Multi-core task execution and thermal co-simulation."""

from repro.sim.engine import (
    MulticoreSimulator,
    SimulationConfig,
    SimulationResult,
    TemperatureTimeseries,
)
from repro.sim.metrics import (
    PAPER_BAND_EDGES,
    PAPER_BAND_LABELS,
    BandAccumulator,
    GradientAccumulator,
    SimulationMetrics,
    WaitingTimeStats,
)
from repro.sim.queueing import (
    AssignmentPolicy,
    CoolestFirstAssignment,
    FirstIdleAssignment,
    RandomAssignment,
    TaskQueue,
)
from repro.sim.task import Task, TaskTrace

__all__ = [
    "PAPER_BAND_EDGES",
    "PAPER_BAND_LABELS",
    "AssignmentPolicy",
    "BandAccumulator",
    "CoolestFirstAssignment",
    "FirstIdleAssignment",
    "GradientAccumulator",
    "MulticoreSimulator",
    "RandomAssignment",
    "SimulationConfig",
    "SimulationMetrics",
    "SimulationResult",
    "Task",
    "TaskQueue",
    "TaskTrace",
    "TemperatureTimeseries",
    "WaitingTimeStats",
]
