"""Closed-loop multi-core simulator.

Couples, at the paper's 0.4 ms thermal granularity:

* task arrivals, queueing and assignment (`repro.sim.queueing`),
* task execution at the current per-core frequencies (progress rate
  ``f / f_max``),
* the platform power model (busy/idle cores, non-core background,
  optional leakage),
* the thermal RC model (`repro.thermal.model`),
* a thermal management unit consulted at every DFS window boundary
  (`repro.control.manager`).

Semantics worth calling out (all documented consequences of the paper's
setup):

* The TMU acts **only at window boundaries** (every 100 ms by default).
  Nothing reacts in between, which is what lets reactive policies overshoot
  (Figure 1).
* A core with no task is *idle* and assignable regardless of its frequency
  setting; a task assigned to a 0-frequency (shut-down) core waits there
  until the next window raises the frequency.  The task-assignment unit in
  the paper is frequency-agnostic.
* A task's waiting time is ``start - arrival`` (Figure 7).  Tasks that
  never start before the simulation horizon are censored at the horizon,
  so an overloaded policy cannot hide its backlog.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.manager import ThermalManagementUnit
from repro.errors import SimulationError
from repro.platform import Platform
from repro.sim.metrics import (
    BandAccumulator,
    GradientAccumulator,
    SimulationMetrics,
    WaitingTimeStats,
)
from repro.sim.queueing import AssignmentPolicy, FirstIdleAssignment, TaskQueue
from repro.sim.task import Task, TaskTrace
from repro.thermal.constants import PAPER_DFS_PERIOD


@dataclass(frozen=True)
class SimulationConfig:
    """Simulator settings.

    Attributes:
        window: DFS period (s); the paper uses 100 ms.
        t_initial: initial uniform temperature of all nodes (Celsius).
        max_time: hard simulation horizon (s); None runs until the trace
            drains (plus `drain_grace`) — avoid None for overloaded traces.
        drain_grace: extra time allowed past the last arrival when
            `max_time` is None (s).
        record_interval_steps: thermal steps between time-series samples.
        censor_unstarted: record horizon-censored waits for tasks that
            never started (see module docstring).
    """

    window: float = PAPER_DFS_PERIOD
    t_initial: float = 45.0
    max_time: float | None = None
    drain_grace: float = 10.0
    record_interval_steps: int = 25
    censor_unstarted: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise SimulationError("window must be positive")
        if self.record_interval_steps < 1:
            raise SimulationError("record_interval_steps must be >= 1")
        if self.max_time is not None and self.max_time <= 0:
            raise SimulationError("max_time must be positive when given")


@dataclass
class TemperatureTimeseries:
    """Sub-sampled temperature history of the cores.

    Attributes:
        times: sample times (s), shape (k,).
        core_temperatures: Celsius, shape (k, n_cores).
    """

    times: np.ndarray
    core_temperatures: np.ndarray

    def core(self, index: int) -> np.ndarray:
        """History of a single core."""
        return self.core_temperatures[:, index]


@dataclass
class SimulationResult:
    """Everything a run produces.

    Attributes:
        policy_name: the DFS policy that ran.
        assignment_name: the task-assignment policy that ran.
        trace_name: workload label.
        metrics: aggregate metrics (bands, waits, violations...).
        timeseries: sub-sampled core temperature history.
        end_time: simulation time at exit (s).
        queue_length_end: tasks still queued at exit.
        t_max: the platform's limit (for violation interpretation).
    """

    policy_name: str
    assignment_name: str
    trace_name: str
    metrics: SimulationMetrics
    timeseries: TemperatureTimeseries
    end_time: float
    queue_length_end: int
    t_max: float

    @property
    def band_fractions(self) -> np.ndarray:
        """Mean per-band time fractions (the Figure 6 bars)."""
        return self.metrics.bands.mean_fractions()

    @property
    def mean_waiting_time(self) -> float:
        """Average task waiting time (s) — the Figure 7 metric."""
        return self.metrics.waiting.mean


class MulticoreSimulator:
    """Discrete-time closed-loop simulator for one platform.

    Args:
        platform: the platform under test.
        tmu: thermal management unit (policy + sensor + demand estimator).
        assignment: task-assignment policy (default: the paper's
            first-idle rule).
        config: simulation settings.
    """

    def __init__(
        self,
        platform: Platform,
        tmu: ThermalManagementUnit,
        assignment: AssignmentPolicy | None = None,
        config: SimulationConfig | None = None,
    ) -> None:
        self.platform = platform
        self.tmu = tmu
        self.assignment = assignment or FirstIdleAssignment()
        self.config = config or SimulationConfig()
        dt = platform.thermal.dt
        ratio = self.config.window / dt
        self.steps_per_window = int(round(ratio))
        if abs(self.steps_per_window - ratio) > 1e-6 or self.steps_per_window < 1:
            raise SimulationError(
                f"window {self.config.window:g}s must be a positive multiple "
                f"of the thermal step {dt:g}s"
            )

    def run(self, trace: TaskTrace) -> SimulationResult:
        """Simulate the platform executing `trace`.

        The input trace is not mutated (an internal fresh copy runs).

        Returns:
            A :class:`SimulationResult`.
        """
        platform = self.platform
        cfg = self.config
        trace = trace.fresh_copy()
        self.tmu.reset()
        self.assignment.reset()

        dt = platform.thermal.dt
        n_cores = platform.n_cores
        core_idx = np.asarray(platform.core_indices, dtype=int)
        a_matrix = platform.thermal.a_matrix
        b_vector = platform.thermal.b_vector
        c_vector = platform.thermal.c_vector
        injection = platform.power.injection_matrix()
        idle_fraction = platform.power.idle_fraction
        f_max = platform.f_max
        t_max = platform.t_max
        leakage = platform.power.leakage

        if cfg.max_time is not None:
            end_time = cfg.max_time
        else:
            end_time = trace.duration + cfg.drain_grace
        total_steps = int(np.ceil(end_time / dt))

        temps = np.full(platform.thermal.n, float(cfg.t_initial))
        queue = TaskQueue()
        running: list[Task | None] = [None] * n_cores
        remaining = np.zeros(n_cores)
        freqs = np.zeros(n_cores)
        p_busy = np.zeros(n_cores)
        rates = np.zeros(n_cores)

        metrics = SimulationMetrics(
            bands=BandAccumulator(n_cores),
            gradient=GradientAccumulator(),
            waiting=WaitingTimeStats(),
            violation_steps=np.zeros(n_cores, dtype=np.int64),
        )
        rec_times: list[float] = []
        rec_temps: list[np.ndarray] = []

        tasks = trace.tasks
        next_arrival = 0
        n_tasks = len(tasks)
        completed = 0
        time = 0.0

        for step in range(total_steps):
            # --- DFS boundary: consult the TMU -------------------------------
            if step % self.steps_per_window == 0:
                backlog = float(remaining.sum()) + queue.backlog
                runnable = sum(t is not None for t in running) + len(queue)
                freqs = self.tmu.decide(
                    step // self.steps_per_window,
                    time,
                    temps[core_idx],
                    backlog,
                    runnable_tasks=runnable,
                )
                p_busy = platform.power.core_power(freqs)
                rates = freqs / f_max
                metrics.window_frequencies.append(float(freqs.mean()))

            # --- arrivals -----------------------------------------------------
            while next_arrival < n_tasks and tasks[next_arrival].arrival <= time:
                queue.push(tasks[next_arrival])
                next_arrival += 1

            # --- assignment ----------------------------------------------------
            if len(queue) > 0:
                idle = [i for i in range(n_cores) if running[i] is None]
                core_temps_now = temps[core_idx]
                while idle and len(queue) > 0:
                    task = queue.pop()
                    core = self.assignment.choose_core(idle, core_temps_now)
                    idle.remove(core)
                    task.start_time = time
                    task.core = core
                    metrics.waiting.record(time - task.arrival)
                    running[core] = task
                    remaining[core] = task.workload

            # --- execution -------------------------------------------------------
            busy = np.array([t is not None for t in running])
            if busy.any():
                progress = rates * dt
                remaining = np.where(busy, remaining - progress, remaining)
                for core in range(n_cores):
                    task = running[core]
                    if task is not None and remaining[core] <= 1e-12:
                        task.finish_time = time + dt
                        running[core] = None
                        remaining[core] = 0.0
                        completed += 1

            # --- power and thermal step ---------------------------------------------
            core_power = np.where(busy, p_busy, idle_fraction * p_busy)
            metrics.total_core_energy += float(core_power.sum()) * dt
            node_power = injection @ core_power
            if leakage is not None:
                node_power[core_idx] += leakage.power(temps[core_idx])
            temps = a_matrix @ temps + b_vector * node_power + c_vector

            # --- metrics ------------------------------------------------------------
            core_temps_now = temps[core_idx]
            metrics.bands.record(core_temps_now)
            metrics.gradient.record(core_temps_now)
            metrics.violation_steps += core_temps_now > t_max
            metrics.total_steps += 1
            peak = float(core_temps_now.max())
            if peak > metrics.peak_temperature:
                metrics.peak_temperature = peak
            if step % cfg.record_interval_steps == 0:
                rec_times.append(time + dt)
                rec_temps.append(core_temps_now.copy())

            time += dt
            if (
                cfg.max_time is None
                and next_arrival >= n_tasks
                and len(queue) == 0
                and completed == n_tasks
            ):
                break

        # --- censored waits for tasks that never started ------------------------
        metrics.arrived_tasks = next_arrival
        metrics.completed_tasks = completed
        if cfg.censor_unstarted:
            for task in tasks[:next_arrival]:
                if task.start_time is None:
                    metrics.waiting.record(time - task.arrival)

        timeseries = TemperatureTimeseries(
            times=np.array(rec_times),
            core_temperatures=(
                np.array(rec_temps)
                if rec_temps
                else np.zeros((0, n_cores))
            ),
        )
        return SimulationResult(
            policy_name=self.tmu.policy.name,
            assignment_name=self.assignment.name,
            trace_name=trace.name,
            metrics=metrics,
            timeseries=timeseries,
            end_time=time,
            queue_length_end=len(queue),
            t_max=t_max,
        )
