"""Tasks and task traces.

The paper defines a task's *workload* as "the total amount of time required
for running the task, at the highest operating frequency" (section 3.1); on
a core running at frequency ``f`` the task progresses at rate ``f / f_max``.
Benchmarks are traces of tasks with arrival times — the experiments use a
trace of ~60,000 tasks covering several hundred seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass
class Task:
    """One unit of work.

    Attributes:
        task_id: unique id within a trace.
        arrival: arrival time (s).
        workload: execution time at f_max (s).
        start_time: when a core first started it (filled by the simulator).
        finish_time: completion time (filled by the simulator).
        core: index of the core that executed it (filled by the simulator).
    """

    task_id: int
    arrival: float
    workload: float
    start_time: float | None = None
    finish_time: float | None = None
    core: int | None = None

    def __post_init__(self) -> None:
        # Finiteness first: NaN slips through ordering comparisons (both
        # `NaN < 0` and `NaN <= 0` are False), so a NaN-poisoned trace
        # would otherwise validate and then corrupt every simulator
        # aggregate it touches.
        if not math.isfinite(self.arrival) or self.arrival < 0:
            raise WorkloadError(
                f"task arrival must be finite and >= 0, got {self.arrival!r}"
            )
        if not math.isfinite(self.workload) or self.workload <= 0:
            raise WorkloadError(
                f"task workload must be finite and positive, "
                f"got {self.workload!r}"
            )

    @property
    def waiting_time(self) -> float | None:
        """Queueing delay (start - arrival), None until started."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival

    @property
    def turnaround(self) -> float | None:
        """Arrival-to-completion latency, None until finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival

    def fresh_copy(self) -> "Task":
        """Copy with runtime fields cleared (for re-running a trace)."""
        return Task(
            task_id=self.task_id, arrival=self.arrival, workload=self.workload
        )


@dataclass
class TaskTrace:
    """An arrival-ordered sequence of tasks.

    Attributes:
        tasks: tasks sorted by arrival time.
        name: provenance label (benchmark name).
    """

    tasks: list[Task]
    name: str = "trace"

    def __post_init__(self) -> None:
        if any(
            b.arrival < a.arrival
            for a, b in zip(self.tasks, self.tasks[1:])
        ):
            self.tasks = sorted(self.tasks, key=lambda t: t.arrival)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def duration(self) -> float:
        """Time of the last arrival (s); 0 for an empty trace."""
        return self.tasks[-1].arrival if self.tasks else 0.0

    @property
    def total_work(self) -> float:
        """Total workload (s at f_max)."""
        return sum(t.workload for t in self.tasks)

    def offered_load(self, n_cores: int) -> float:
        """Average demand as a fraction of ``n_cores`` running at f_max."""
        if not self.tasks or self.duration == 0:
            return 0.0
        return self.total_work / (self.duration * n_cores)

    def fresh_copy(self) -> "TaskTrace":
        """Deep copy with all runtime fields cleared."""
        return TaskTrace(
            tasks=[t.fresh_copy() for t in self.tasks], name=self.name
        )

    def summary(self) -> str:
        """One-line statistics string."""
        if not self.tasks:
            return f"trace {self.name!r}: empty"
        loads = np.array([t.workload for t in self.tasks])
        return (
            f"trace {self.name!r}: {len(self.tasks)} tasks over "
            f"{self.duration:.1f}s, workload {loads.mean() * 1e3:.2f} ms avg "
            f"({loads.min() * 1e3:.2f}-{loads.max() * 1e3:.2f} ms)"
        )
