"""Simulation metrics: temperature bands, waiting times, gradients.

These back the paper's evaluation figures:

* Figure 6 — fraction of time spent per temperature band
  (<80, 80-90, 90-100, >100 Celsius), averaged across cores;
* Figure 7 — average task waiting time;
* Figure 8 / section 5.4 — spatial gradient (max - min core temperature).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

#: The paper's Figure 6 band edges (Celsius).
PAPER_BAND_EDGES = (80.0, 90.0, 100.0)

#: Labels matching :data:`PAPER_BAND_EDGES`.
PAPER_BAND_LABELS = ("<80", "80-90", "90-100", ">100")


@dataclass
class BandAccumulator:
    """Online per-core histogram of time spent in temperature bands.

    Args:
        n_cores: number of cores tracked.
        edges: ascending band edges; ``len(edges) + 1`` bands result.
    """

    n_cores: int
    edges: tuple[float, ...] = PAPER_BAND_EDGES
    counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(self.edges):
            raise SimulationError("band edges must be ascending")
        self.counts = np.zeros((self.n_cores, len(self.edges) + 1), dtype=np.int64)
        self._edges_arr = np.asarray(self.edges, dtype=float)
        self._core_range = np.arange(self.n_cores)

    def record(self, core_temperatures: np.ndarray) -> None:
        """Add one time-step sample for every core."""
        bands = np.searchsorted(self._edges_arr, core_temperatures, side="right")
        # One entry per core (no duplicate indices), so fancy-indexed
        # increment is safe and much faster than a Python loop.
        self.counts[self._core_range, bands] += 1

    @property
    def total_samples(self) -> int:
        """Samples recorded per core."""
        return int(self.counts[0].sum()) if self.n_cores else 0

    def fractions(self) -> np.ndarray:
        """Per-core band fractions, shape (n_cores, n_bands)."""
        totals = self.counts.sum(axis=1, keepdims=True)
        safe = np.maximum(totals, 1)
        return self.counts / safe

    def mean_fractions(self) -> np.ndarray:
        """Band fractions averaged across cores (the Figure 6 bars)."""
        return self.fractions().mean(axis=0)


@dataclass
class GradientAccumulator:
    """Online statistics of the spatial gradient across cores."""

    samples: int = 0
    _sum: float = 0.0
    _max: float = 0.0

    def record(self, core_temperatures: np.ndarray) -> None:
        """Add one time-step sample."""
        spread = float(np.max(core_temperatures) - np.min(core_temperatures))
        self.samples += 1
        self._sum += spread
        self._max = max(self._max, spread)

    @property
    def mean(self) -> float:
        """Mean spatial gradient (Celsius)."""
        return self._sum / self.samples if self.samples else 0.0

    @property
    def max(self) -> float:
        """Peak spatial gradient (Celsius)."""
        return self._max


@dataclass
class WaitingTimeStats:
    """Aggregated queueing-delay statistics (Figure 7)."""

    waits: list[float] = field(default_factory=list)

    def record(self, wait: float) -> None:
        """Record one task's waiting time (s)."""
        if wait < -1e-12:
            raise SimulationError(f"negative waiting time {wait}")
        self.waits.append(max(wait, 0.0))

    @property
    def count(self) -> int:
        """Number of tasks recorded."""
        return len(self.waits)

    @property
    def mean(self) -> float:
        """Mean waiting time (s); 0 when no tasks recorded."""
        return float(np.mean(self.waits)) if self.waits else 0.0

    @property
    def p95(self) -> float:
        """95th percentile waiting time (s)."""
        return float(np.percentile(self.waits, 95)) if self.waits else 0.0

    @property
    def maximum(self) -> float:
        """Largest waiting time (s)."""
        return float(np.max(self.waits)) if self.waits else 0.0


@dataclass
class SimulationMetrics:
    """Everything a simulation run reports.

    Attributes:
        bands: per-core temperature-band histogram.
        gradient: spatial-gradient statistics.
        waiting: task waiting-time statistics.
        violation_steps: per-core count of steps spent above t_max.
        total_steps: thermal steps simulated.
        peak_temperature: hottest core temperature observed (Celsius).
        completed_tasks: tasks finished within the simulated horizon.
        arrived_tasks: tasks that arrived within the horizon.
        total_core_energy: integral of core power over time (J).
        window_frequencies: per-window mean core frequency (Hz).
    """

    bands: BandAccumulator
    gradient: GradientAccumulator = field(default_factory=GradientAccumulator)
    waiting: WaitingTimeStats = field(default_factory=WaitingTimeStats)
    violation_steps: np.ndarray = field(default_factory=lambda: np.zeros(0))
    total_steps: int = 0
    peak_temperature: float = -np.inf
    completed_tasks: int = 0
    arrived_tasks: int = 0
    total_core_energy: float = 0.0
    window_frequencies: list[float] = field(default_factory=list)

    @property
    def violation_fraction(self) -> float:
        """Fraction of (core, step) samples above t_max."""
        if self.total_steps == 0:
            return 0.0
        return float(self.violation_steps.sum()) / (
            self.total_steps * len(self.violation_steps)
        )

    @property
    def any_violation(self) -> bool:
        """True when any core ever exceeded t_max."""
        return bool(np.any(self.violation_steps > 0))

    @property
    def mean_frequency(self) -> float:
        """Mean of per-window average frequencies (Hz)."""
        if not self.window_frequencies:
            return 0.0
        return float(np.mean(self.window_frequencies))
