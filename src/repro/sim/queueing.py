"""Task queue and task-to-core assignment policies.

The paper's default assignment (section 3.1): "when a task arrives, the
control unit assigns the task to any idle processor.  If all the processors
are busy, the task is queued up in a task-queue."  Section 5.4 additionally
evaluates the temperature-aware assignment of Coskun et al. [26], which we
model as coolest-core-first.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.sim.task import Task


class TaskQueue:
    """FIFO queue of tasks waiting for a core."""

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, task: Task) -> None:
        """Append a task."""
        self._queue.append(task)

    def pop(self) -> Task:
        """Remove and return the oldest task.

        Raises:
            SimulationError: when the queue is empty.
        """
        if not self._queue:
            raise SimulationError("pop from an empty task queue")
        return self._queue.popleft()

    def peek(self) -> Task | None:
        """The oldest task without removing it, or None."""
        return self._queue[0] if self._queue else None

    @property
    def backlog(self) -> float:
        """Total queued workload (s at f_max)."""
        return sum(t.workload for t in self._queue)

    def clear(self) -> None:
        """Drop all queued tasks."""
        self._queue.clear()


class AssignmentPolicy(abc.ABC):
    """Chooses which idle core receives the next task."""

    name: str = "assignment"

    @abc.abstractmethod
    def choose_core(
        self,
        idle_cores: list[int],
        core_temperatures: np.ndarray,
    ) -> int:
        """Pick one index out of `idle_cores` (non-empty)."""

    def reset(self) -> None:
        """Clear any internal state before a fresh simulation run.

        Stateful policies (seeded RNGs) must re-initialize here so that a
        policy object reused across runs reproduces bit-identically.
        """


class FirstIdleAssignment(AssignmentPolicy):
    """Paper default: any idle processor (lowest index for determinism)."""

    name = "first-idle"

    def choose_core(
        self,
        idle_cores: list[int],
        core_temperatures: np.ndarray,
    ) -> int:
        if not idle_cores:
            raise SimulationError("choose_core called with no idle cores")
        return min(idle_cores)


class CoolestFirstAssignment(AssignmentPolicy):
    """Temperature-aware assignment modeled after Coskun et al. [26].

    Sends work to the coolest idle core, spreading heat spatially; used for
    the paper's section 5.4 experiment (Figure 11).
    """

    name = "coolest-first"

    def choose_core(
        self,
        idle_cores: list[int],
        core_temperatures: np.ndarray,
    ) -> int:
        if not idle_cores:
            raise SimulationError("choose_core called with no idle cores")
        temps = np.asarray(core_temperatures, dtype=float)
        return min(idle_cores, key=lambda i: (temps[i], i))


class RandomAssignment(AssignmentPolicy):
    """Uniformly random idle core (reproducible via seed); an ablation."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Re-seed, so runs reusing this policy object reproduce."""
        self._rng = np.random.default_rng(self.seed)

    def choose_core(
        self,
        idle_cores: list[int],
        core_temperatures: np.ndarray,
    ) -> int:
        if not idle_cores:
            raise SimulationError("choose_core called with no idle cores")
        return int(self._rng.choice(idle_cores))
