"""Platform: floorplan + thermal model + power model in one object.

Everything downstream (the Pro-Temp optimizer, the run-time controllers, the
multi-core simulator and the experiment runners) consumes a
:class:`Platform`.  :meth:`Platform.niagara8` builds the paper's evaluation
platform: the Figure 5 floorplan, the calibrated thermal RC model at the
paper's 0.4 ms step, and 1 GHz / 4 W cores with 30% non-core power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.niagara import NiagaraConfig, build_niagara8
from repro.power.dvfs import QuadraticScaling
from repro.power.leakage import LeakageModel
from repro.power.model import PlatformPowerModel
from repro.thermal.calibration import NIAGARA_THERMAL_CONFIG
from repro.thermal.constants import PAPER_TIME_STEP
from repro.thermal.model import ThermalModel
from repro.thermal.rc import ThermalPackageConfig, build_rc_network
from repro.units import ghz


@dataclass
class Platform:
    """A complete simulated multi-core platform.

    Attributes:
        floorplan: block floorplan (node order source of truth).
        thermal: discrete-time thermal model over the floorplan's nodes.
        power: frequency -> node power mapping.
        t_max: maximum allowed temperature (Celsius); the paper uses 100.
        name: human-readable platform name.
    """

    floorplan: Floorplan
    thermal: ThermalModel
    power: PlatformPowerModel
    t_max: float = 100.0
    name: str = "platform"

    def __post_init__(self) -> None:
        if self.thermal.n != len(self.floorplan):
            raise ValueError(
                "thermal model node count does not match the floorplan"
            )
        if self.power.floorplan is not self.floorplan:
            # Allow equal-but-distinct floorplans as long as shapes agree.
            if self.power.n_nodes != len(self.floorplan):
                raise ValueError(
                    "power model node count does not match the floorplan"
                )

    # -- convenience views ---------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of controllable cores."""
        return self.floorplan.n_cores

    @property
    def core_indices(self) -> list[int]:
        """Thermal-node indices of the cores, P1..Pn order."""
        return self.floorplan.core_indices

    @property
    def core_names(self) -> list[str]:
        """Core names, P1..Pn order."""
        return self.floorplan.core_names

    @property
    def f_max(self) -> float:
        """Core maximum frequency (Hz)."""
        return self.power.f_max

    @property
    def dt(self) -> float:
        """Thermal simulation step (s)."""
        return self.thermal.dt

    @property
    def ambient(self) -> float:
        """Ambient temperature (Celsius)."""
        return self.thermal.network.ambient

    def core_temperatures(self, node_temps: np.ndarray) -> np.ndarray:
        """Extract core temperatures from a node temperature vector."""
        return np.asarray(node_temps, dtype=float)[self.core_indices]

    # -- builders ---------------------------------------------------------------

    @classmethod
    def niagara8(
        cls,
        *,
        dt: float = PAPER_TIME_STEP,
        thermal_config: ThermalPackageConfig | None = None,
        floorplan_config: NiagaraConfig | None = None,
        f_max: float = ghz(1.0),
        p_max: float = 4.0,
        other_power_ratio: float = 0.3,
        idle_fraction: float = 0.1,
        t_max: float = 100.0,
        leakage: LeakageModel | None = None,
    ) -> "Platform":
        """The paper's evaluation platform (section 5).

        Defaults: Figure 5 floorplan, calibrated thermal package (see
        `repro.thermal.calibration`), 1 GHz / 4 W cores, non-core power 30%
        of core power, t_max = 100 C, thermal step 0.4 ms.
        """
        floorplan = build_niagara8(floorplan_config)
        network = build_rc_network(
            floorplan, thermal_config or NIAGARA_THERMAL_CONFIG
        )
        thermal = ThermalModel(network, dt=dt)
        power = PlatformPowerModel(
            floorplan=floorplan,
            scaling=QuadraticScaling(f_max=f_max, p_max=p_max),
            other_power_ratio=other_power_ratio,
            idle_fraction=idle_fraction,
            leakage=leakage,
        )
        return cls(
            floorplan=floorplan,
            thermal=thermal,
            power=power,
            t_max=t_max,
            name="niagara8",
        )

    @classmethod
    def from_floorplan(
        cls,
        floorplan: Floorplan,
        *,
        dt: float = PAPER_TIME_STEP,
        thermal_config: ThermalPackageConfig | None = None,
        f_max: float = ghz(1.0),
        p_max: float = 4.0,
        other_power_ratio: float = 0.3,
        idle_fraction: float = 0.1,
        t_max: float = 100.0,
        leakage: LeakageModel | None = None,
        name: str | None = None,
    ) -> "Platform":
        """Build a platform around an arbitrary floorplan.

        Uses the same defaults as :meth:`niagara8` for everything but the
        geometry — handy for custom layouts and the generator-produced
        grids.
        """
        network = build_rc_network(
            floorplan, thermal_config or NIAGARA_THERMAL_CONFIG
        )
        thermal = ThermalModel(network, dt=dt)
        power = PlatformPowerModel(
            floorplan=floorplan,
            scaling=QuadraticScaling(f_max=f_max, p_max=p_max),
            other_power_ratio=other_power_ratio,
            idle_fraction=idle_fraction,
            leakage=leakage,
        )
        return cls(
            floorplan=floorplan,
            thermal=thermal,
            power=power,
            t_max=t_max,
            name=name or floorplan.name,
        )
