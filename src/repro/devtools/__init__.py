"""Developer tooling for the Pro-Temp reproduction.

This package holds the tools that keep the *project invariants* machine-
checked rather than folklore: ``repro.devtools.check`` is an AST-based
static-analysis pass (``protemp check``) whose rules encode the platform's
correctness contracts — deterministic replay, lock discipline on shared
state, cache-key completeness, float hygiene, and registry/spec
discipline.  See docs/DEVTOOLS.md for the rule catalogue and waiver
syntax.

Nothing here is imported by the library at runtime; the scenario, solver
and serving layers never depend on devtools.
"""

from __future__ import annotations

from repro.devtools.check import Finding, all_rules, run_check

__all__ = ["Finding", "all_rules", "run_check"]
