"""``protemp check`` — AST-based project-invariant static analysis.

The public surface re-exported here is what the CLI and the tests use:
:func:`run_check` runs the pass, :func:`all_rules` enumerates the rule
registry, and the reporters render a :class:`CheckReport` as text or
versioned JSON.  Importing this package registers every built-in rule
(the ``rules``/``project_rules`` imports below are the registration
side effect).
"""

from __future__ import annotations

from repro.devtools.check.engine import (
    CheckedFile,
    CheckReport,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    register_rule,
    run_check,
)
from repro.devtools.check.waivers import (
    MALFORMED_WAIVER_RULE,
    Waiver,
    WaiverProblem,
    parse_waivers,
)
from repro.devtools.check import project_rules as _project_rules  # noqa: F401
from repro.devtools.check import rules as _rules  # noqa: F401
from repro.devtools.check.report import render_json, render_text

__all__ = [
    "CheckReport",
    "CheckedFile",
    "Finding",
    "MALFORMED_WAIVER_RULE",
    "ProjectRule",
    "Rule",
    "Waiver",
    "WaiverProblem",
    "all_rules",
    "parse_waivers",
    "register_rule",
    "render_json",
    "render_text",
    "run_check",
]
