"""The cross-file rule (PT003): cache-key completeness.

PR 6 taught this codebase the failure mode PT003 guards against: a new
``PolicySpec`` parameter (``backend``) that changes which table gets
built *must* also flow into :func:`repro.scenario.runner.table_key`, or
two policies that need different tables silently share a cache slot.
The two halves of the contract live in different modules — the parameter
list on the spec, the key computation in the runner — so this rule runs
over the whole file set at once.

Three checks, each silent when its anchor is absent from the checked
set (so fixture corpora can exercise one half at a time):

1. every ``PolicySpec.TABLE_PARAM_KEYS`` entry appears as a string
   constant inside the module-level ``table_key`` function;
2. every ``params.get("X", ...)`` key read by
   ``PolicySpec.table_config`` is declared in ``TABLE_PARAM_KEYS``;
3. every ``config["X"]`` subscript inside ``ScenarioRunner.table`` is
   declared in ``TABLE_PARAM_KEYS``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.devtools.check.engine import (
    CheckedFile,
    Finding,
    ProjectRule,
    register_rule,
)


def _string_constants(node: ast.AST) -> set[str]:
    """Every string literal appearing anywhere under `node`."""
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def _find_class(
    files: Sequence[CheckedFile], name: str
) -> tuple[CheckedFile, ast.ClassDef] | None:
    for file in files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return file, node
    return None


def _find_function(
    files: Sequence[CheckedFile], name: str
) -> tuple[CheckedFile, ast.FunctionDef] | None:
    """A module-level function definition, searched across the file set."""
    for file in files:
        if file.tree is None:
            continue
        for node in file.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return file, node
    return None


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _table_param_keys(cls: ast.ClassDef) -> tuple[int, tuple[str, ...]] | None:
    """``(line, keys)`` of the ``TABLE_PARAM_KEYS`` tuple, if declared."""
    for item in cls.body:
        targets: list[ast.expr] = []
        if isinstance(item, ast.Assign):
            targets = item.targets
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets = [item.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "TABLE_PARAM_KEYS":
                value = item.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    keys = tuple(
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
                    return item.lineno, keys
    return None


def _params_get_keys(func: ast.FunctionDef) -> list[tuple[int, str]]:
    """``(line, key)`` for every ``<name>.get("key", ...)`` call in `func`."""
    reads: list[tuple[int, str]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.append((node.lineno, node.args[0].value))
    return reads


def _config_subscript_keys(func: ast.FunctionDef) -> list[tuple[int, str]]:
    """``(line, key)`` for every ``config["key"]`` subscript in `func`."""
    reads: list[tuple[int, str]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "config"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.append((node.lineno, node.slice.value))
    return reads


@register_rule
class CacheKeyCompletenessRule(ProjectRule):
    """Every table-shaping PolicySpec param participates in table_key."""

    rule_id = "PT003"
    title = "cache-key completeness"
    invariant = (
        "every PolicySpec parameter that shapes the Phase-1 table "
        "(TABLE_PARAM_KEYS) flows into table_key, and no table-shaping "
        "read happens outside the declared key set — otherwise distinct "
        "tables silently share a cache slot"
    )

    def check_project(
        self, files: Sequence[CheckedFile]
    ) -> Iterator[Finding]:
        spec = _find_class(files, "PolicySpec")
        if spec is None:
            return
        spec_file, spec_cls = spec
        declared = _table_param_keys(spec_cls)
        if declared is None:
            yield spec_file.finding(
                self.rule_id,
                spec_cls,
                "PolicySpec declares no literal TABLE_PARAM_KEYS tuple: "
                "the cache-key contract cannot be checked statically",
            )
            return
        keys_line, keys = declared
        key_set = set(keys)

        # (1) every declared key is consumed by table_key's payload.
        table_key = _find_function(files, "table_key")
        if table_key is not None:
            key_file, key_func = table_key
            used = _string_constants(key_func)
            for key in keys:
                if key not in used:
                    yield key_file.finding(
                        self.rule_id,
                        key_func,
                        f"TABLE_PARAM_KEYS entry {key!r} never appears in "
                        "table_key: policies differing only in "
                        f"{key!r} would share a cached table",
                    )

        # (2) table_config reads only declared keys.
        table_config = _method(spec_cls, "table_config")
        if table_config is not None:
            for line, key in _params_get_keys(table_config):
                if key not in key_set:
                    yield spec_file.finding(
                        self.rule_id,
                        line,
                        f"table_config reads param {key!r} which is not in "
                        "TABLE_PARAM_KEYS: add it there (and to table_key) "
                        "or the cache key will ignore it",
                    )

        # (3) ScenarioRunner.table consumes only declared config keys.
        runner = _find_class(files, "ScenarioRunner")
        if runner is not None:
            runner_file, runner_cls = runner
            table_method = _method(runner_cls, "table")
            if table_method is not None:
                for line, key in _config_subscript_keys(table_method):
                    if key not in key_set:
                        yield runner_file.finding(
                            self.rule_id,
                            line,
                            f"ScenarioRunner.table reads config[{key!r}] "
                            "which is not in TABLE_PARAM_KEYS: the table "
                            "build depends on a param the cache key omits",
                        )
