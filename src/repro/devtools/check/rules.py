"""The per-file project-invariant rules (PT001/PT002/PT004/PT005).

Each rule encodes one contract the platform's correctness story depends
on (see docs/DEVTOOLS.md for the full catalogue):

* **PT001** — determinism: the replayable packages must not consult
  global RNGs or wall clocks; seeds flow through
  :func:`repro.scenario.specs.derive_seed`.
* **PT002** — lock discipline: shared-state attributes of the
  thread-shared classes are only written under their lock (or in
  ``__init__``, or in a ``*_locked`` method — the documented convention
  for helpers that require the caller to hold the lock).
* **PT004** — float hygiene: no ``==``/``!=`` against float literals in
  the numerical packages, and persistence-path ``json.dump(s)`` must pin
  ``allow_nan=False`` (NaN/Infinity do not round-trip standard JSON).
* **PT005** — registry/spec discipline: spec dataclasses stay frozen
  (they are dict keys and hash inputs) and ``register_*`` names stay
  string literals (``protemp list`` and the spec validators enumerate
  them statically).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Mapping

from repro.devtools.check.engine import CheckedFile, Finding, Rule, register_rule


# -- shared AST helpers ----------------------------------------------------


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from datetime import
    datetime`` -> ``{"datetime": "datetime.datetime"}``.  Relative imports
    are skipped (their targets are package-internal and never the stdlib
    modules the rules look for).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def dotted_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def canonical_call(imports: Mapping[str, str], call: ast.Call) -> str | None:
    """The canonical dotted path of a call target, via the import map."""
    chain = dotted_chain(call.func)
    if chain is None or chain[0] not in imports:
        return None
    return ".".join([imports[chain[0]], *chain[1:]])


def _module_in(module: str | None, prefixes: tuple[str, ...]) -> bool:
    """True when `module` is one of `prefixes` or nested inside one."""
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


# -- PT001: determinism ----------------------------------------------------

#: Packages whose results must replay bit-identically from the
#: OutcomeStore: scenario execution, simulation, workload generation
#: (trace loading included — a trace that reads differently twice breaks
#: replay), and the solver stack.
DETERMINISTIC_PACKAGES = (
    "repro.scenario",
    "repro.sim",
    "repro.solver",
    "repro.core",
    "repro.workloads",
)

#: Wall-clock calls that leak host time into deterministic code.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are *not* the legacy global-state API.
_NUMPY_RNG_OK = frozenset({"default_rng", "Generator", "SeedSequence", "BitGenerator"})


@register_rule
class DeterminismRule(Rule):
    """No global RNGs or wall clocks in the replayable packages."""

    rule_id = "PT001"
    title = "determinism"
    invariant = (
        "repro.{scenario,sim,solver,core,workloads} replay bit-identically "
        "from the OutcomeStore: randomness is seeded through derive_seed "
        "and no wall clock influences results"
    )

    def applies_to(self, file: CheckedFile) -> bool:
        return _module_in(file.module, DETERMINISTIC_PACKAGES)

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call(imports, node)
            if target is None:
                continue
            if target in _WALL_CLOCK_CALLS:
                yield file.finding(
                    self.rule_id,
                    node,
                    f"wall-clock call {target}() in a deterministic "
                    "package: results must not depend on host time",
                )
            elif target == "random" or target.startswith("random."):
                yield file.finding(
                    self.rule_id,
                    node,
                    f"stdlib global RNG call {target}(): use a seeded "
                    "np.random.default_rng(derive_seed(...)) stream instead",
                )
            elif target == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                yield file.finding(
                    self.rule_id,
                    node,
                    "unseeded np.random.default_rng(): pass a seed derived "
                    "via derive_seed so replays are bit-identical",
                )
            elif (
                target.startswith("numpy.random.")
                and target.split(".")[2] not in _NUMPY_RNG_OK
            ):
                yield file.finding(
                    self.rule_id,
                    node,
                    f"legacy numpy global-RNG call {target}(): hidden "
                    "global state breaks replay; use a seeded Generator",
                )


# -- PT002: lock discipline ------------------------------------------------

#: Thread-shared classes and the lock attribute guarding their state.
#: Writes to ``self.<attr>`` outside ``__init__`` must happen inside
#: ``with self.<lock>:`` or in a ``*_locked`` method (the codebase's
#: convention for helpers whose caller must hold the lock).
SHARED_STATE_CLASSES: dict[str, tuple[str, ...]] = {
    "ScenarioRunner": ("_lock",),
    "JobManager": ("_lock",),
    "Job": ("_cond",),
    "_WorkerPool": ("_cond",),
    "MemoryOutcomeStore": ("_mutex",),
    "DirectoryOutcomeStore": ("_mutex",),
    "SqliteOutcomeStore": ("_mutex",),
    "JobJournal": ("_mutex",),
    "MetricsRegistry": ("_lock",),
    "Counter": ("_lock",),
    "Gauge": ("_lock",),
    "Histogram": ("_lock",),
    "SpanTracker": ("_lock",),
}


def _self_write_target(node: ast.AST) -> str | None:
    """The ``self.X`` attribute a write targets (through subscripts)."""
    if isinstance(node, ast.Subscript):
        return _self_write_target(node.value)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _holds_lock(node: ast.With | ast.AsyncWith, locks: tuple[str, ...]) -> bool:
    """True when one of the with-items is ``self.<lock>``."""
    for item in node.items:
        target = item.context_expr
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in locks
        ):
            return True
    return False


@register_rule
class LockDisciplineRule(Rule):
    """Shared-state attribute writes stay inside their class's lock."""

    rule_id = "PT002"
    title = "lock discipline"
    invariant = (
        "the thread-shared classes (ScenarioRunner, JobManager, Job, the "
        "outcome stores) only mutate instance state under their lock, in "
        "__init__, or in a *_locked helper"
    )

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in SHARED_STATE_CLASSES
            ):
                yield from self._check_class(file, node)

    def _check_class(
        self, file: CheckedFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = SHARED_STATE_CLASSES[cls.name]
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name.endswith("_locked"):
                continue
            yield from self._check_body(file, cls.name, locks, item.body, False)

    def _check_body(
        self,
        file: CheckedFile,
        class_name: str,
        locks: tuple[str, ...],
        stmts: list[ast.stmt],
        locked: bool,
    ) -> Iterator[Finding]:
        for node in stmts:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or _holds_lock(node, locks)
                yield from self._check_body(
                    file, class_name, locks, node.body, inner
                )
                continue
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                elements = (
                    list(target.elts)
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    attr = _self_write_target(element)
                    if attr is not None and attr not in locks and not locked:
                        yield file.finding(
                            self.rule_id,
                            node,
                            f"write to shared attribute self.{attr} of "
                            f"{class_name} outside 'with self.{locks[0]}:' "
                            "(shared classes mutate state only under their "
                            "lock, in __init__, or in a *_locked helper)",
                        )
            # Recurse into every nested statement list (if/for/try/def...).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    yield from self._check_body(
                        file, class_name, locks, [child], locked
                    )


# -- PT004: float hygiene --------------------------------------------------

#: Numerical packages where bare float equality is (almost) always wrong.
FLOAT_SENSITIVE_PACKAGES = ("repro.solver", "repro.thermal")

#: Modules whose json.dump/json.dumps calls persist replayable artifacts
#: and must reject NaN/Infinity (they do not round-trip standard JSON).
PERSISTENCE_MODULES = (
    "repro.scenario.store",
    "repro.scenario.store_sql",
    "repro.scenario.specs",
    "repro.core.table",
    "repro.workloads.trace_io",
    "repro.floorplan.floorplan",
    "repro.serving.state",
)

#: Function-name prefixes that mark persistence paths in any module.
_PERSISTENCE_FUNC_PREFIXES = ("save", "write", "dump", "to_json")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class FloatHygieneRule(Rule):
    """No bare float equality; persisted JSON pins allow_nan=False."""

    rule_id = "PT004"
    title = "float hygiene"
    invariant = (
        "numerical code never compares floats with ==/!= against float "
        "literals, and persistence-path json.dump(s) always passes "
        "allow_nan=False so NaN/Infinity cannot poison stored artifacts"
    )

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        if _module_in(file.module, FLOAT_SENSITIVE_PACKAGES):
            yield from self._check_float_equality(file)
        yield from self._check_json_calls(file)

    def _check_float_equality(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(operands[index]) or _is_float_literal(
                    operands[index + 1]
                ):
                    yield file.finding(
                        self.rule_id,
                        node,
                        "bare ==/!= against a float literal in numerical "
                        "code: compare against a tolerance (or waive with "
                        "a reason when exact-zero structure is intended)",
                    )
                    break

    def _check_json_calls(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        in_persistence_module = _module_in(file.module, PERSISTENCE_MODULES)

        def visit(node: ast.AST, func_name: str | None) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_name = node.name
            if isinstance(node, ast.Call):
                target = canonical_call(imports, node)
                if target in ("json.dump", "json.dumps"):
                    in_scope = in_persistence_module or (
                        func_name is not None
                        and func_name.lstrip("_").startswith(
                            _PERSISTENCE_FUNC_PREFIXES
                        )
                    )
                    if in_scope:
                        allow_nan = next(
                            (
                                kw
                                for kw in node.keywords
                                if kw.arg == "allow_nan"
                            ),
                            None,
                        )
                        if allow_nan is None:
                            yield Finding(
                                rule=self.rule_id,
                                path=str(file.path),
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"{target}(...) on a persistence path "
                                    "without allow_nan=False: NaN/Infinity "
                                    "would not round-trip standard JSON"
                                ),
                            )
                        elif not (
                            isinstance(allow_nan.value, ast.Constant)
                            and allow_nan.value.value is False
                        ):
                            yield Finding(
                                rule=self.rule_id,
                                path=str(file.path),
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"{target}(...) on a persistence path "
                                    "must pass allow_nan=False literally"
                                ),
                            )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, func_name)

        yield from visit(file.tree, None)


# -- PT005: registry/spec discipline ---------------------------------------

_REGISTER_NAME_RE = re.compile(r"^register_[a-z_]+$")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if present."""
    for decorator in node.decorator_list:
        call_target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = dotted_chain(call_target)
        if chain is not None and chain[-1] == "dataclass":
            return decorator
    return None


@register_rule
class RegistrySpecDisciplineRule(Rule):
    """Spec dataclasses stay frozen; registry names stay string literals."""

    rule_id = "PT005"
    title = "registry/spec discipline"
    invariant = (
        "*Spec dataclasses are frozen=True (they key caches and hash into "
        "spec_hash) and register_* names are string literals (protemp "
        "list and the spec validators enumerate registries statically)"
    )

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                decorator = _dataclass_decorator(node)
                if decorator is not None and not self._is_frozen(decorator):
                    yield file.finding(
                        self.rule_id,
                        node,
                        f"spec dataclass {node.name} is not frozen=True: "
                        "specs key caches and hash into spec_hash, so they "
                        "must stay immutable",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_register_call(file, node)

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass defaults to frozen=False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return False

    def _check_register_call(
        self, file: CheckedFile, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        is_register = False
        if isinstance(func, ast.Name) and _REGISTER_NAME_RE.match(func.id):
            is_register = True
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "register"
            and isinstance(func.value, ast.Name)
            and func.value.id.isupper()
        ):
            is_register = True
        if not is_register:
            return
        name_arg: ast.expr | None = node.args[0] if node.args else None
        if name_arg is None:
            name_arg = next(
                (kw.value for kw in node.keywords if kw.arg == "name"), None
            )
        if name_arg is None:
            return
        if not (
            isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
        ):
            yield file.finding(
                self.rule_id,
                node,
                "registry registration with a non-literal name: names must "
                "be string literals so 'protemp list' and the spec "
                "validators stay statically enumerable",
            )
