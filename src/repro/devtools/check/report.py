"""Reporters for ``protemp check``: human text and machine JSON.

The JSON document is versioned (``{"version": 1, ...}``) so the CI
artifact consumers can evolve independently of the text output; its
schema is pinned by ``tests/test_devtools_check.py``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.devtools.check.engine import CheckReport, all_rules


def render_text(report: CheckReport) -> str:
    """The human-facing report: one ``path:line:col RULE message`` per row.

    Waived findings are listed after the active block (marked ``waived:``
    with their reason) so accepted violations stay visible without
    failing the run; the trailer summarizes counts either way.
    """
    lines: list[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.location()} {finding.rule} {finding.message}"
        )
    waived = report.waived
    if waived:
        if lines:
            lines.append("")
        for finding in waived:
            lines.append(
                f"{finding.location()} {finding.rule} waived: "
                f"{finding.waiver_reason} [{finding.message}]"
            )
    if lines:
        lines.append("")
    lines.append(
        f"protemp check: {len(report.active)} finding(s), "
        f"{len(waived)} waived, {report.files_checked} file(s), "
        f"rules: {', '.join(report.rules)}"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """The machine-facing report (stable, versioned schema).

    Layout::

        {
          "version": 1,
          "summary": {"files_checked": N, "active": N, "waived": N,
                      "exit_code": 0|1},
          "rules": [{"rule": id, "title": ..., "invariant": ...}, ...],
          "findings": [{"rule", "path", "line", "col", "message",
                        "waived", "waiver_reason"}, ...]
        }
    """
    registered = all_rules()
    document: dict[str, Any] = {
        "version": 1,
        "summary": {
            "files_checked": report.files_checked,
            "active": len(report.active),
            "waived": len(report.waived),
            "exit_code": report.exit_code,
        },
        "rules": [
            registered[rule_id].describe()
            for rule_id in report.rules
            if rule_id in registered
        ],
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True, allow_nan=False)
