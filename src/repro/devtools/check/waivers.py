"""Waiver comments: ``# protemp: allow[RULE] -- reason``.

A waiver suppresses one rule's findings on one line — never silently: the
rule id must be spelled out and a human-readable reason is mandatory, so
every accepted violation in the tree documents *why* it is acceptable.

Grammar (one comment, end-of-line or on the line directly above)::

    # protemp: allow[PT001] -- provenance timestamp, not replay state
    # protemp: allow[PT001,PT004] -- shared reason for both rules

Placement:

* an **inline** waiver (code before the ``#``) covers its own line;
* a **standalone** waiver (comment-only line) covers its own line and the
  line directly below it — use it when the offending line has no room.

A comment that starts with ``protemp:`` but does not parse as a valid
waiver — unknown directive, empty rule list, or a missing ``-- reason`` —
is itself reported as a :data:`MALFORMED_WAIVER_RULE` finding: a waiver
that silently fails to apply would be worse than no waiver at all.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterator

#: Rule id under which malformed waivers (and unparseable files) report.
MALFORMED_WAIVER_RULE = "PT000"

_DIRECTIVE_RE = re.compile(r"#\s*protemp\s*:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\[(?P<rules>[A-Za-z0-9_,\s]*)\]\s*(?:--\s*(?P<reason>.*))?$"
)
_RULE_ID_RE = re.compile(r"^[A-Z]+[0-9]+$")


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment.

    Attributes:
        line: 1-based line the comment sits on.
        rules: the rule ids it suppresses.
        reason: the mandatory justification text.
        standalone: True when the comment is the only thing on its line
            (it then also covers the following line).
    """

    line: int
    rules: tuple[str, ...]
    reason: str
    standalone: bool

    def covers(self, rule_id: str, line: int) -> bool:
        """True when this waiver suppresses `rule_id` findings on `line`."""
        if rule_id not in self.rules:
            return False
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


@dataclass(frozen=True)
class WaiverProblem:
    """A ``protemp:`` comment that failed to parse as a waiver."""

    line: int
    message: str


def _comments(text: str) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line, col, comment_text)`` for every comment in `text`.

    Tokenization (not a line regex) so ``#`` characters inside string
    literals never masquerade as comments.  Files that fail to tokenize
    yield nothing — the engine reports the syntax error separately.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_waivers(text: str) -> tuple[list[Waiver], list[WaiverProblem]]:
    """Extract waivers (and malformed waiver attempts) from source text.

    Returns:
        ``(waivers, problems)`` — `problems` are comments that *look* like
        waivers but do not satisfy the grammar; the engine turns each into
        a :data:`MALFORMED_WAIVER_RULE` finding.
    """
    waivers: list[Waiver] = []
    problems: list[WaiverProblem] = []
    lines = text.splitlines()
    for line_no, col, comment in _comments(text):
        directive = _DIRECTIVE_RE.search(comment)
        if directive is None:
            continue
        body = directive.group("body").strip()
        allow = _ALLOW_RE.match(body)
        if allow is None:
            problems.append(
                WaiverProblem(
                    line=line_no,
                    message=(
                        f"malformed waiver comment {comment.strip()!r}: "
                        "expected '# protemp: allow[RULE,...] -- reason'"
                    ),
                )
            )
            continue
        rules = tuple(
            part.strip() for part in allow.group("rules").split(",") if part.strip()
        )
        reason = (allow.group("reason") or "").strip()
        bad_ids = [rule for rule in rules if not _RULE_ID_RE.match(rule)]
        if not rules or bad_ids:
            problems.append(
                WaiverProblem(
                    line=line_no,
                    message=(
                        f"waiver names no valid rule ids ({bad_ids or 'empty list'}); "
                        "expected e.g. allow[PT001]"
                    ),
                )
            )
            continue
        if not reason:
            problems.append(
                WaiverProblem(
                    line=line_no,
                    message=(
                        "waiver is missing its mandatory reason: every "
                        "accepted violation must say why "
                        "('# protemp: allow[RULE] -- reason')"
                    ),
                )
            )
            continue
        source_line = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        standalone = source_line[:col].strip() == ""
        waivers.append(
            Waiver(line=line_no, rules=rules, reason=reason, standalone=standalone)
        )
    return waivers, problems
