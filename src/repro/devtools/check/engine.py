"""Core of ``protemp check``: files, findings, the rule registry, the run.

The engine is deliberately small: it walks the requested paths, parses
each Python file once (:class:`CheckedFile` carries the AST plus the
parsed waivers), hands the files to every active :class:`Rule`, and folds
the raw findings against the waivers into a :class:`CheckReport`.

Rules come in two shapes:

* a plain :class:`Rule` sees one file at a time (most invariants are
  local — an unseeded RNG call is wrong wherever it appears);
* a :class:`ProjectRule` sees the whole file set at once, for invariants
  that span files (PT003 compares ``PolicySpec.TABLE_PARAM_KEYS`` against
  the ``table_key`` computation, which live in different modules).

Rules self-register via :func:`register_rule`; the registry is what the
CLI's ``--rule`` filter and the reporters enumerate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import DevtoolsError, did_you_mean
from repro.devtools.check.waivers import (
    MALFORMED_WAIVER_RULE,
    Waiver,
    WaiverProblem,
    parse_waivers,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation (possibly waived) at a source location.

    Attributes:
        rule: rule id (``"PT001"``; :data:`MALFORMED_WAIVER_RULE` for
            engine-level problems).
        path: file the finding is in (as given, not resolved).
        line: 1-based line number.
        col: 0-based column offset.
        message: what is wrong and which invariant it breaks.
        waived: True when a waiver comment covers this finding (reported
            but not counted against the exit code).
        waiver_reason: the covering waiver's reason, when waived.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def location(self) -> str:
        """``path:line:col`` (the clickable prefix of the text report)."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (the ``--json`` findings rows)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }


@dataclass
class CheckedFile:
    """One parsed source file, as the rules see it.

    Attributes:
        path: the file's path (kept relative when given relative).
        module: dotted module name inferred from the path (None when the
            file does not live under a ``repro`` package root) — rules use
            it to scope themselves to the packages their invariant covers.
        text: the file's source text.
        tree: the parsed AST (None when the file failed to parse; the
            engine reports that as a finding and rules skip the file).
        waivers: parsed waiver comments.
        waiver_problems: waiver-looking comments that failed to parse.
    """

    path: Path
    module: str | None
    text: str
    tree: ast.Module | None
    waivers: list[Waiver] = field(default_factory=list)
    waiver_problems: list[WaiverProblem] = field(default_factory=list)

    def finding(
        self, rule: str, node: ast.AST | int, message: str, *, col: int = 0
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        else:
            line = node
        return Finding(
            rule=rule, path=str(self.path), line=line, col=col, message=message
        )


def infer_module(path: Path) -> str | None:
    """Dotted module name for a file under a ``repro`` package root.

    ``src/repro/scenario/runner.py`` -> ``repro.scenario.runner`` (package
    ``__init__`` files map to the package itself).  Returns None for files
    outside any ``repro`` directory — scoped rules then leave them alone.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Rule:
    """Base class: one invariant, checked one file at a time.

    Subclasses set the three class attributes and implement
    :meth:`check`; :meth:`applies_to` scopes the rule to the packages its
    invariant covers (default: every checked file).
    """

    rule_id: str = ""
    title: str = ""
    invariant: str = ""

    def applies_to(self, file: CheckedFile) -> bool:
        """Whether this rule runs on `file` (override to scope)."""
        return True

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        """Yield raw findings for one parsed file."""
        raise NotImplementedError

    def describe(self) -> dict[str, str]:
        """Registry row for reporters and ``protemp check --json``."""
        return {
            "rule": self.rule_id,
            "title": self.title,
            "invariant": self.invariant,
        }


class ProjectRule(Rule):
    """A rule whose invariant spans files (runs once over the whole set)."""

    def check(self, file: CheckedFile) -> Iterator[Finding]:
        """Per-file entry point — unused for project rules."""
        return iter(())

    def check_project(
        self, files: Sequence[CheckedFile]
    ) -> Iterator[Finding]:
        """Yield findings computed over the complete file set."""
        raise NotImplementedError


#: The rule registry: id -> singleton rule instance.
_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    rule = cls()
    if not rule.rule_id:
        raise DevtoolsError(f"rule class {cls.__name__} has no rule_id")
    if rule.rule_id in _RULES:
        raise DevtoolsError(f"duplicate rule id {rule.rule_id}")
    _RULES[rule.rule_id] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by id (sorted)."""
    return {rule_id: _RULES[rule_id] for rule_id in sorted(_RULES)}


def resolve_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """The rule instances to run, validating any explicit id filter.

    Raises:
        DevtoolsError: for unknown rule ids (with a did-you-mean hint).
    """
    if rule_ids is None:
        return list(all_rules().values())
    resolved: list[Rule] = []
    for rule_id in rule_ids:
        canonical = rule_id.strip().upper()
        if canonical not in _RULES:
            raise DevtoolsError(
                f"unknown rule {rule_id!r}; available: "
                f"{', '.join(sorted(_RULES))}"
                + did_you_mean(canonical, _RULES)
            )
        resolved.append(_RULES[canonical])
    return resolved


def _iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand the requested paths into a sorted list of ``.py`` files.

    Raises:
        DevtoolsError: for missing paths or non-Python files.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise DevtoolsError(f"not a Python file: {path}")
            files.append(path)
        else:
            raise DevtoolsError(f"no such file or directory: {path}")
    # De-duplicate while keeping a deterministic order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def load_file(path: Path) -> tuple[CheckedFile, Finding | None]:
    """Parse one source file into a :class:`CheckedFile`.

    Returns:
        The checked file plus a parse-error finding (None when the file
        parses) — an unparseable file is a finding, not a crash, so one
        bad file cannot hide every other finding in the run.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise DevtoolsError(f"cannot read {path}: {exc}") from exc
    parse_error: Finding | None = None
    tree: ast.Module | None = None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        parse_error = Finding(
            rule=MALFORMED_WAIVER_RULE,
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
    waivers, problems = parse_waivers(text)
    file = CheckedFile(
        path=path,
        module=infer_module(path),
        text=text,
        tree=tree,
        waivers=waivers,
        waiver_problems=problems,
    )
    return file, parse_error


@dataclass
class CheckReport:
    """Everything one ``protemp check`` run produced.

    Attributes:
        findings: all findings (waived ones included), sorted by location.
        files_checked: number of files parsed and checked.
        rules: ids of the rules that ran.
    """

    findings: list[Finding]
    files_checked: int
    rules: list[str]

    @property
    def active(self) -> list[Finding]:
        """Findings that count against the exit code (not waived)."""
        return [finding for finding in self.findings if not finding.waived]

    @property
    def waived(self) -> list[Finding]:
        """Findings suppressed by a waiver comment."""
        return [finding for finding in self.findings if finding.waived]

    @property
    def exit_code(self) -> int:
        """0 when clean (waived-only counts as clean), 1 otherwise."""
        return 1 if self.active else 0


def _apply_waivers(file: CheckedFile, findings: Iterable[Finding]) -> Iterator[Finding]:
    """Mark findings covered by one of the file's waiver comments.

    Malformed-waiver findings (:data:`MALFORMED_WAIVER_RULE`) are never
    waivable — a broken waiver cannot excuse itself.
    """
    for finding in findings:
        if finding.rule != MALFORMED_WAIVER_RULE:
            for waiver in file.waivers:
                if waiver.covers(finding.rule, finding.line):
                    yield Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        waived=True,
                        waiver_reason=waiver.reason,
                    )
                    break
            else:
                yield finding
        else:
            yield finding


def run_check(
    paths: Sequence[str | Path],
    *,
    rules: Iterable[str] | None = None,
) -> CheckReport:
    """Run the static-analysis pass over `paths`.

    Args:
        paths: files and/or directories (directories recurse, skipping
            ``__pycache__``).
        rules: optional rule-id filter; None runs every registered rule.

    Returns:
        The :class:`CheckReport` (findings sorted by path, line, rule).

    Raises:
        DevtoolsError: unknown rule ids, missing paths, unreadable files.
    """
    active_rules = resolve_rules(rules)
    files: list[CheckedFile] = []
    findings: list[Finding] = []
    for path in _iter_python_files(paths):
        file, parse_error = load_file(path)
        files.append(file)
        raw: list[Finding] = []
        if parse_error is not None:
            raw.append(parse_error)
        raw.extend(
            Finding(
                rule=MALFORMED_WAIVER_RULE,
                path=str(file.path),
                line=problem.line,
                col=0,
                message=problem.message,
            )
            for problem in file.waiver_problems
        )
        if file.tree is not None:
            for rule in active_rules:
                if not isinstance(rule, ProjectRule) and rule.applies_to(file):
                    raw.extend(rule.check(file))
        findings.extend(_apply_waivers(file, raw))
    by_path = {str(file.path): file for file in files}
    for rule in active_rules:
        if isinstance(rule, ProjectRule):
            project_findings = list(rule.check_project(files))
            for finding in project_findings:
                owner = by_path.get(finding.path)
                if owner is not None:
                    findings.extend(_apply_waivers(owner, [finding]))
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return CheckReport(
        findings=findings,
        files_checked=len(files),
        rules=[rule.rule_id for rule in active_rules],
    )
