"""The Pro-Temp convex optimization (paper section 4, Eqs. 3-5).

Solves, for one DFS window, the frequency-assignment problem::

    minimize    sum_i p_i  (+ lambda * t_grad)                (Eq. 3 / Eq. 5)
    subject to  t_{k} = affine(p)          (thermal dynamics, Eq. 1)
                t_{k,node} <= t_max        for every step k and node
                t_{k,i} - t_{k,j} <= t_grad  for all core pairs (Eq. 4)
                sum_i f_i >= n f_target    (performance, via sqrt in p-space)
                0 <= p_i <= p_max,  f_i = f_max sqrt(p_i / p_max)   (Eq. 2)

in **power space**, where everything except the frequency requirement is
linear (see `repro.core.formulation`).  Eq. 2 is imposed as the definition
of the recovered frequency rather than an inequality: since the objective
minimizes power and temperatures increase with power, the paper's relaxed
form ``p_max f_i^2 / f_max^2 <= p_i`` is always tight at an optimum.

Two assignment modes (paper section 5.3):

* ``variable`` — each core gets its own frequency (the full program above);
* ``uniform`` — all cores share one frequency, as in Niagara-class designs.
  The program then has a single scalar degree of freedom and minimizing
  power forces ``f = f_target`` exactly, so the solve reduces to a closed-
  form feasibility check (no iterative solver needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import SolverError
from repro.core.formulation import StackedConstraints, WindowResponse
from repro.platform import Platform
from repro.solver.barrier import BarrierOptions, solve_barrier
from repro.solver.compiled import CompiledConstraints, blocks_signature
from repro.solver.newton import NewtonOptions
from repro.solver.problem import (
    BoxConstraint,
    LinearInequality,
    LinearObjective,
    NegativeSqrtObjective,
    SqrtSumConstraint,
)
from repro.solver.result import SolveStatus
from repro.solver.scipy_backend import solve_scipy
from repro.thermal.constants import PAPER_DFS_PERIOD

Mode = Literal["variable", "uniform"]
Backend = Literal["barrier", "scipy"]

#: Strictly positive floor on core power (W) keeping sqrt derivatives finite.
POWER_FLOOR = 1e-9

#: Upper bound on the t_grad variable (Celsius); loose, never binding.
T_GRAD_CEILING = 500.0


@dataclass(frozen=True)
class FrequencyAssignment:
    """Result of one Pro-Temp solve (one table cell of Figure 4).

    Attributes:
        feasible: whether the (t_start, f_target) point is achievable.
        frequencies: per-core frequencies (Hz), floorplan core order; zeros
            when infeasible.
        core_power: per-core power (W) implied by Eq. 2.
        predicted_peak: model-predicted max node temperature over the window
            (Celsius); +inf when infeasible.
        predicted_gradient: model-predicted max pairwise core temperature
            difference over the window (Celsius).
        objective: solver objective value (total power, plus the gradient
            term when enabled).
        t_start: starting temperature the solve assumed (Celsius).
        f_target: required average frequency (Hz).
        status: underlying solver status.
        iterations: Newton iterations spent.
        solver_x: raw solver variable vector (power, plus the gradient
            variable when enabled); strictly feasible at a barrier optimum,
            so it can warm-start a neighboring design point (pass it as
            ``x0`` to :meth:`ProTempOptimizer.solve`).  None when
            infeasible or produced by a closed-form path.
    """

    feasible: bool
    frequencies: np.ndarray
    core_power: np.ndarray
    predicted_peak: float
    predicted_gradient: float
    objective: float
    t_start: float
    f_target: float
    status: SolveStatus
    iterations: int = 0
    solver_x: np.ndarray | None = None

    @property
    def average_frequency(self) -> float:
        """Mean core frequency (Hz)."""
        return float(np.mean(self.frequencies))


class ProTempOptimizer:
    """Design-time frequency-assignment optimizer (paper Phase 1).

    Args:
        platform: the multi-core platform.
        horizon: DFS window length in seconds (default 100 ms).
        mode: ``"variable"`` per-core frequencies or ``"uniform"`` one
            shared frequency.
        minimize_gradient: include the Eq. 4/5 spatial-gradient variable and
            objective term.
        gradient_weight: objective weight ``lambda`` on ``t_grad`` (the
            paper's Eq. 5 uses an unweighted sum, i.e. 1.0).
        t_grad_cap: optional hard upper bound on the allowed pairwise
            gradient (Celsius); None leaves it to the objective.
        step_subsample: constrain every k-th thermal step (1 = every step,
            exactly the paper's formulation).
        backend: ``"barrier"`` (native interior point) or ``"scipy"``
            (cross-check backend).
        barrier_options: solver tuning for the barrier backend.
        accelerated: enable the sweep fast paths — memoized per-`t_start`
            constraint data and feasibility boundaries, a compiled
            constraint stack shared across solves (the matrix part of the
            constraints depends only on the platform, never on the design
            point), and an O(1)-rescaled feasibility-boundary objective.
            Results agree with the non-accelerated path to solver
            tolerance (~1e-6 relative on frequencies and boundaries; the
            rescaled boundary solve's absolute duality-gap bound is
            ``gap_tol * f_max`` instead of ``gap_tol`` Hz).  Disable to
            reproduce the cold per-cell cost structure of the original
            implementation (benchmark baselines).
    """

    def __init__(
        self,
        platform: Platform,
        *,
        horizon: float = PAPER_DFS_PERIOD,
        mode: Mode = "variable",
        minimize_gradient: bool = True,
        gradient_weight: float = 1.0,
        t_grad_cap: float | None = None,
        step_subsample: int = 1,
        backend: Backend = "barrier",
        barrier_options: BarrierOptions | None = None,
        accelerated: bool = True,
    ) -> None:
        if mode not in ("variable", "uniform"):
            raise SolverError(f"unknown mode {mode!r}")
        if backend not in ("barrier", "scipy"):
            raise SolverError(f"unknown backend {backend!r}")
        if gradient_weight < 0:
            raise SolverError("gradient_weight must be >= 0")
        if t_grad_cap is not None and t_grad_cap <= 0:
            raise SolverError("t_grad_cap must be positive")
        self.platform = platform
        self.mode: Mode = mode
        self.minimize_gradient = minimize_gradient
        self.gradient_weight = gradient_weight
        self.t_grad_cap = t_grad_cap
        self.backend: Backend = backend
        if barrier_options is None:
            # A gentle schedule (t_initial=1, mu=20) tracks the central path
            # reliably for this problem family; more aggressive schedules
            # were observed to stall Newton against the thousands of thermal
            # constraint rows and return badly off-optimal points.  The gap
            # tolerance is ample for watt-scale objectives and MHz-scale
            # decisions.
            barrier_options = BarrierOptions(
                gap_tol=1e-6,
                newton=NewtonOptions(tol=1e-9, max_iterations=120),
            )
        self.barrier_options = barrier_options
        self.accelerated = bool(accelerated)
        self.response = WindowResponse(
            platform, horizon=horizon, step_subsample=step_subsample
        )
        # Sweep caches (active when `accelerated`): per-start-temperature
        # constraint data, per-start feasibility boundaries, and compiled
        # constraint stacks keyed by problem structure.
        self._stacked_cache: dict[object, StackedConstraints] = {}
        self._gradient_cache: dict[object, tuple[np.ndarray, np.ndarray]] = {}
        self._boundary_cache: dict[object, tuple[float, np.ndarray] | None] = {}
        self._compiled_cache: dict[tuple, CompiledConstraints] = {}
        self._rows_with_grad: np.ndarray | None = None
        self._grad_rows_matrix: np.ndarray | None = None

    # -- sweep caches ---------------------------------------------------------

    @staticmethod
    def _start_key(t_start: float | np.ndarray) -> object:
        if np.isscalar(t_start):
            return float(t_start)
        arr = np.asarray(t_start, dtype=float)
        return ("vec", arr.tobytes())

    def _stacked_for(
        self, t_start: float | np.ndarray
    ) -> StackedConstraints:
        """`WindowResponse.stacked`, memoized per start temperature."""
        if not self.accelerated:
            return self.response.stacked(t_start)
        key = self._start_key(t_start)
        stacked = self._stacked_cache.get(key)
        if stacked is None:
            stacked = self.response.stacked(t_start)
            self._stacked_cache[key] = stacked
        return stacked

    def _gradient_rows_for(
        self, t_start: float | np.ndarray, stacked: StackedConstraints
    ) -> tuple[np.ndarray, np.ndarray]:
        """`WindowResponse.gradient_rows`, memoized per start temperature."""
        if not self.accelerated:
            return self.response.gradient_rows(stacked)
        key = self._start_key(t_start)
        cached = self._gradient_cache.get(key)
        if cached is None:
            cached = self.response.gradient_rows(stacked)
            self._gradient_cache[key] = cached
        return cached

    def _compiled_for(
        self, blocks: list, n_vars: int
    ) -> CompiledConstraints | None:
        """Compiled stack for `blocks`, reusing the cached matrix part.

        Across a sweep only right-hand sides change (temperature offsets
        with `t_start`, the sqrt target with `f_target`), so the stacked
        matrix is compiled once per problem structure and rebound per cell.
        """
        if not self.accelerated:
            return None
        signature = blocks_signature(blocks)
        template = self._compiled_cache.get(signature)
        if template is None:
            template = CompiledConstraints.compile(blocks, n_vars)
            self._compiled_cache[signature] = template
            return template
        return template.with_blocks(blocks)

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        *,
        x0: np.ndarray | None = None,
    ) -> FrequencyAssignment:
        """Optimal frequency assignment for one design point.

        Args:
            t_start: starting temperature — scalar for the table's uniform
                worst-case start, or a full node vector.
            f_target: required average core frequency (Hz), in
                ``[0, f_max]``.
            x0: optional warm start — the ``solver_x`` of a neighboring
                solve (same mode/structure).  When it is strictly feasible
                for this design point, the feasibility-boundary pre-solve
                and phase I are skipped entirely; otherwise it is ignored
                and the cold path runs.  Ignored in uniform mode (closed
                form).

        Returns:
            A :class:`FrequencyAssignment` (``feasible=False`` when the
            design point cannot satisfy the constraints).
        """
        self._check_target(f_target)
        if self.mode == "uniform":
            return self._solve_uniform(t_start, f_target)
        return self._solve_variable(t_start, f_target, x0=x0)

    def is_feasible(
        self, t_start: float | np.ndarray, f_target: float
    ) -> bool:
        """Fast feasibility check (no full optimization).

        Variable mode compares against the feasibility boundary (one convex
        solve, memoization-friendly); uniform mode uses the closed form.
        """
        self._check_target(f_target)
        if self.mode == "uniform":
            return self._uniform_feasible(t_start, f_target)
        return f_target <= self._max_feasible_variable(t_start) * (1 - 1e-9)

    def max_feasible_target(
        self,
        t_start: float | np.ndarray,
        *,
        tolerance: float = 1e6,
    ) -> float:
        """Largest feasible average frequency at `t_start` (Fig. 9's y-axis).

        For the uniform mode this is a bisection on the closed-form
        feasibility check.  For the variable mode it is a *single* convex
        solve: maximize ``sum_i f_i = (f_max/sqrt(p_max)) sum_i sqrt(p_i)``
        subject to the temperature and box constraints — the optimum divided
        by ``n`` is exactly the feasibility threshold of Eq. 3's average-
        frequency constraint.

        Args:
            t_start: starting temperature.
            tolerance: bisection resolution in Hz for the uniform mode
                (default 1 MHz).

        Returns:
            The feasibility threshold in Hz (0.0 when even an idle window
            violates the temperature cap).
        """
        if self.mode == "uniform":
            return self._max_feasible_uniform(t_start, tolerance)
        return self._max_feasible_variable(t_start)

    def _max_feasible_uniform(
        self, t_start: float | np.ndarray, tolerance: float
    ) -> float:
        lo, hi = 0.0, self.platform.f_max
        if self._uniform_feasible(t_start, hi):
            return hi
        if not self._uniform_feasible(t_start, lo):
            return 0.0
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self._uniform_feasible(t_start, mid):
                lo = mid
            else:
                hi = mid
        return lo

    def _max_feasible_variable(self, t_start: float | np.ndarray) -> float:
        result = self._max_sqrt_solve(t_start)
        if result is None:
            return 0.0
        avg_frequency, _p_star = result
        return min(avg_frequency, self.platform.f_max)

    def _max_sqrt_solve(
        self, t_start: float | np.ndarray
    ) -> tuple[float, np.ndarray] | None:
        """Maximize the average frequency under the temperature cap.

        Returns ``(max average frequency, maximizing power vector)`` or
        None when even near-zero power violates the cap.  This single solve
        both yields the Figure 9 boundary and seeds the main solve's
        strictly feasible start (see :meth:`_interior_start`).  Memoized
        per start temperature when `accelerated`: a table sweep needs the
        boundary once per row, not once per cell.
        """
        if self.accelerated:
            key = self._start_key(t_start)
            if key in self._boundary_cache:
                return self._boundary_cache[key]
            result = self._max_sqrt_solve_cold(t_start)
            self._boundary_cache[key] = result
            return result
        return self._max_sqrt_solve_cold(t_start)

    def _max_sqrt_solve_cold(
        self, t_start: float | np.ndarray
    ) -> tuple[float, np.ndarray] | None:
        platform = self.platform
        n = platform.n_cores
        p_max = platform.power.p_max
        f_max = platform.f_max

        stacked = self._stacked_for(t_start)
        blocks = [
            LinearInequality(stacked.w, platform.t_max - stacked.offset),
            BoxConstraint(
                lower=np.full(n, POWER_FLOOR),
                upper=np.full(n, p_max),
                indices=np.arange(n),
            ),
        ]
        # Normalize the objective to O(1): the weighted sqrt-sum is ~1e10 Hz
        # while the barrier gap tolerance is absolute, so without scaling the
        # final stages run at t ~ 1e9 where Newton grinds against the
        # t-scaled sqrt curvature (measured ~25x slower for the same answer
        # to ~1e-8 relative; the gap bound loosens from gap_tol Hz to
        # gap_tol * f_max).  Same conditioning trick as the solver's
        # _SqrtMinimaxStage.  Kept off the non-accelerated path so
        # benchmark baselines reproduce the original cost structure.
        scale = (
            1.0 / (n * f_max)
            if self.accelerated and self.backend == "barrier"
            else 1.0
        )
        objective = NegativeSqrtObjective(
            weights=np.full(n, scale * f_max / np.sqrt(p_max)),
            indices=np.arange(n),
            n_vars=n,
        )
        x0 = np.full(n, POWER_FLOOR * 10.0)
        if self.backend == "scipy":
            result = solve_scipy(objective, blocks, x0)
        else:
            result = solve_barrier(
                objective, blocks, x0, self.barrier_options,
                compiled=self._compiled_for(blocks, n),
            )
        if not result.ok:
            return None
        return (
            -result.objective / (n * scale),
            np.asarray(result.x, dtype=float),
        )

    # -- uniform mode ----------------------------------------------------------

    def _uniform_temperatures(
        self, t_start: float | np.ndarray, f_target: float
    ) -> np.ndarray:
        scaling = self.platform.power.scaling
        p_shared = float(scaling.power(f_target))
        stacked = self._stacked_for(t_start)
        p = np.full(self.platform.n_cores, p_shared)
        return stacked.temperatures(p)

    def _uniform_feasible(
        self, t_start: float | np.ndarray, f_target: float
    ) -> bool:
        temps = self._uniform_temperatures(t_start, f_target)
        return bool(np.max(temps) <= self.platform.t_max)

    def _solve_uniform(
        self, t_start: float | np.ndarray, f_target: float
    ) -> FrequencyAssignment:
        n = self.platform.n_cores
        scaling = self.platform.power.scaling
        temps = self._uniform_temperatures(t_start, f_target)
        core_temps = temps[:, self.platform.core_indices]
        gradient = float(
            np.max(core_temps.max(axis=1) - core_temps.min(axis=1))
        )
        feasible = bool(np.max(temps) <= self.platform.t_max)
        if self.t_grad_cap is not None and gradient > self.t_grad_cap:
            feasible = False
        p_shared = float(scaling.power(f_target))
        if not feasible:
            return self._infeasible(t_start, f_target)
        frequencies = np.full(n, f_target)
        objective = n * p_shared + (
            self.gradient_weight * gradient if self.minimize_gradient else 0.0
        )
        return FrequencyAssignment(
            feasible=True,
            frequencies=frequencies,
            core_power=np.full(n, p_shared),
            predicted_peak=float(np.max(temps)),
            predicted_gradient=gradient,
            objective=objective,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=SolveStatus.OPTIMAL,
        )

    # -- variable mode -----------------------------------------------------------

    def _variable_blocks(
        self, t_start: float | np.ndarray, f_target: float
    ) -> tuple[list, int]:
        platform = self.platform
        n = platform.n_cores
        p_max = platform.power.p_max
        f_max = platform.f_max
        with_grad = self.minimize_gradient or self.t_grad_cap is not None
        n_vars = n + 1 if with_grad else n

        stacked = self._stacked_for(t_start)
        rows = stacked.w
        offset = stacked.offset
        if with_grad:
            # The widened matrix depends only on the platform response, so
            # it is built once and shared across every design point.
            if self._rows_with_grad is None or not self.accelerated:
                self._rows_with_grad = np.hstack(
                    [rows, np.zeros((rows.shape[0], 1))]
                )
            rows = self._rows_with_grad
        blocks: list = [
            LinearInequality(rows, platform.t_max - offset)
        ]

        if with_grad:
            d, g = self._gradient_rows_for(t_start, stacked)
            if self._grad_rows_matrix is None or not self.accelerated:
                self._grad_rows_matrix = np.hstack(
                    [d, -np.ones((d.shape[0], 1))]
                )
            blocks.append(LinearInequality(self._grad_rows_matrix, -g))
            cap = (
                self.t_grad_cap if self.t_grad_cap is not None else T_GRAD_CEILING
            )
            blocks.append(
                BoxConstraint(
                    lower=np.array([0.0]),
                    upper=np.array([cap]),
                    indices=np.array([n]),
                )
            )

        if f_target > 0:
            blocks.append(
                SqrtSumConstraint(
                    weights=np.full(n, f_max / np.sqrt(p_max)),
                    indices=np.arange(n),
                    target=n * f_target,
                )
            )
        blocks.append(
            BoxConstraint(
                lower=np.full(n, POWER_FLOOR),
                upper=np.full(n, p_max),
                indices=np.arange(n),
            )
        )
        return blocks, n_vars

    def _interior_start(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        p_star: np.ndarray,
        s_star: float,
    ) -> np.ndarray | None:
        """Strictly feasible start by blending toward the boundary point.

        ``p_star`` maximizes the (concave) weighted sqrt-sum under the
        temperature constraints; a low uniform power ``p_low`` satisfies
        them with slack.  Any convex blend keeps the temperature rows
        strictly satisfied (they are affine and both endpoints satisfy
        them, one strictly), and by concavity the blend's sqrt-sum is at
        least the blend of the endpoint sums — so choosing the blend weight
        above the frequency requirement's interpolation point makes *every*
        constraint strictly feasible.  This avoids the generic phase-I
        machinery entirely, which was observed to stall on this problem's
        scaling.

        Returns None when the requirement sits on/over the boundary.
        """
        platform = self.platform
        n = platform.n_cores
        weight = platform.f_max / np.sqrt(platform.power.p_max)
        s_req = n * f_target
        p_low = np.full(n, POWER_FLOOR * 10.0)
        s_low = float(weight * np.sqrt(p_low).sum())
        if s_star <= max(s_req, s_low) * (1 + 1e-9):
            return None
        needed = max((s_req - s_low) / (s_star - s_low), 0.0)
        if needed >= 0.995:
            return None
        alpha = needed + 0.5 * (0.995 - needed)
        p0 = alpha * p_star + (1 - alpha) * p_low

        with_grad = self.minimize_gradient or self.t_grad_cap is not None
        if not with_grad:
            return p0
        stacked = self._stacked_for(t_start)
        temps = stacked.temperatures(p0)[:, platform.core_indices]
        gradient = float(np.max(temps.max(axis=1) - temps.min(axis=1)))
        cap = (
            self.t_grad_cap if self.t_grad_cap is not None else T_GRAD_CEILING
        )
        tgrad0 = min(gradient + 1.0, cap - 1e-6)
        if tgrad0 <= gradient:
            # A hard gradient cap tighter than the blend's gradient: no
            # analytic interior point; let generic phase I try from here.
            tgrad0 = cap * 0.5
        return np.concatenate([p0, [tgrad0]])

    def _solve_variable(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        x0: np.ndarray | None = None,
    ) -> FrequencyAssignment:
        platform = self.platform
        n = platform.n_cores

        blocks, n_vars = self._variable_blocks(t_start, f_target)
        with_grad = n_vars == n + 1
        c = np.ones(n_vars)
        if with_grad:
            c[n] = self.gradient_weight if self.minimize_gradient else 0.0
        objective = LinearObjective(c=c)

        warm = None
        if x0 is not None:
            warm = np.asarray(x0, dtype=float)
            if warm.shape != (n_vars,):
                warm = None

        if self.backend == "scipy":
            # SLSQP accepts infeasible starts (and cannot reliably solve
            # the boundary pre-problem), so go straight at the program.
            if warm is None:
                p_guess = max(
                    POWER_FLOOR * 10.0,
                    platform.power.p_max
                    * (f_target / platform.f_max) ** 2
                    * 0.9,
                )
                warm = np.full(n_vars, p_guess)
                if with_grad:
                    cap = (
                        self.t_grad_cap
                        if self.t_grad_cap is not None
                        else T_GRAD_CEILING
                    )
                    warm[n] = cap / 2.0
            result = solve_scipy(objective, blocks, warm)
        else:
            compiled = self._compiled_for(blocks, n_vars)
            margin = self.barrier_options.feasibility_margin
            result = None
            if warm is not None:
                warm_violation = (
                    compiled.max_violation(warm)
                    if compiled is not None
                    else max(
                        float(np.max(block.residuals(warm)))
                        for block in blocks
                    )
                )
                if warm_violation < -margin:
                    # Strictly feasible warm start: skip the boundary
                    # pre-solve and phase I entirely.
                    result = solve_barrier(
                        objective, blocks, warm, self.barrier_options,
                        compiled=compiled,
                        initial_violation=warm_violation,
                    )
                    if not result.ok:
                        # A stalled warm solve must not misclassify the
                        # cell: retry on the cold start path below.
                        result = None
            if result is None:
                boundary = self._max_sqrt_solve(t_start)
                if boundary is None:
                    return self._infeasible(t_start, f_target)
                boundary_avg, p_star = boundary
                if f_target > boundary_avg * (1 - 1e-9):
                    return self._infeasible(t_start, f_target)
                start = self._interior_start(
                    t_start, f_target, p_star, n * boundary_avg
                )
                if start is None:
                    return self._infeasible(t_start, f_target)
                result = solve_barrier(
                    objective, blocks, start, self.barrier_options,
                    compiled=compiled,
                )
        if not result.ok:
            return self._infeasible(t_start, f_target, result.status)

        p = np.clip(result.x[:n], 0.0, platform.power.p_max)
        frequencies = np.asarray(
            platform.power.scaling.frequency_for_power(p), dtype=float
        )
        stacked = self._stacked_for(t_start)
        temps = stacked.temperatures(p)
        core_temps = temps[:, platform.core_indices]
        gradient = float(
            np.max(core_temps.max(axis=1) - core_temps.min(axis=1))
        )
        return FrequencyAssignment(
            feasible=True,
            frequencies=frequencies,
            core_power=p,
            predicted_peak=float(np.max(temps)),
            predicted_gradient=gradient,
            objective=result.objective,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=result.status,
            iterations=result.iterations,
            solver_x=np.asarray(result.x, dtype=float).copy(),
        )

    # -- helpers ---------------------------------------------------------------

    def _check_target(self, f_target: float) -> None:
        if not 0 <= f_target <= self.platform.f_max * (1 + 1e-9):
            raise SolverError(
                f"f_target must lie in [0, f_max={self.platform.f_max:g}]"
            )

    def _scalar_start(self, t_start: float | np.ndarray) -> float:
        if np.isscalar(t_start):
            return float(t_start)
        return float(np.max(np.asarray(t_start, dtype=float)))

    def _infeasible(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        status: SolveStatus = SolveStatus.INFEASIBLE,
    ) -> FrequencyAssignment:
        n = self.platform.n_cores
        return FrequencyAssignment(
            feasible=False,
            frequencies=np.zeros(n),
            core_power=np.zeros(n),
            predicted_peak=np.inf,
            predicted_gradient=np.inf,
            objective=np.inf,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=status,
        )
