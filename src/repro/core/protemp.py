"""The Pro-Temp convex optimization (paper section 4, Eqs. 3-5).

Solves, for one DFS window, the frequency-assignment problem::

    minimize    sum_i p_i  (+ lambda * t_grad)                (Eq. 3 / Eq. 5)
    subject to  t_{k} = affine(p)          (thermal dynamics, Eq. 1)
                t_{k,node} <= t_max        for every step k and node
                t_{k,i} - t_{k,j} <= t_grad  for all core pairs (Eq. 4)
                sum_i f_i >= n f_target    (performance, via sqrt in p-space)
                0 <= p_i <= p_max,  f_i = f_max sqrt(p_i / p_max)   (Eq. 2)

in **power space**, where everything except the frequency requirement is
linear (see `repro.core.formulation`).  Eq. 2 is imposed as the definition
of the recovered frequency rather than an inequality: since the objective
minimizes power and temperatures increase with power, the paper's relaxed
form ``p_max f_i^2 / f_max^2 <= p_i`` is always tight at an optimum.

Two assignment modes (paper section 5.3):

* ``variable`` — each core gets its own frequency (the full program above);
* ``uniform`` — all cores share one frequency, as in Niagara-class designs.
  The program then has a single scalar degree of freedom and minimizing
  power forces ``f = f_target`` exactly, so the solve reduces to a closed-
  form feasibility check (no iterative solver needed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from repro.errors import SolverError, did_you_mean
from repro.core.formulation import StackedConstraints, WindowResponse
from repro.platform import Platform
from repro.solver.barrier import (
    BarrierOptions,
    final_stage_weight,
    solve_barrier,
    solve_barrier_batch,
)
from repro.solver.compiled import (
    BatchedCompiledConstraints,
    CompiledConstraints,
    CompiledStructure,
    blocks_signature,
)
from repro.solver.newton import NewtonOptions
from repro.solver.problem import (
    BoxConstraint,
    LinearInequality,
    LinearObjective,
    NegativeSqrtObjective,
    SqrtSumConstraint,
    total_constraints,
)
from repro.solver.result import SolveStatus
from repro.solver.scipy_backend import solve_scipy
from repro.thermal.constants import PAPER_DFS_PERIOD

Mode = Literal["variable", "uniform"]
Backend = Literal["barrier", "scipy"]

#: Valid solver backend names, in the order shown by error messages.  The
#: scenario-spec layer validates against this same tuple so a typo fails
#: identically at spec parse, optimizer construction, and service submit.
BACKENDS: tuple[str, ...] = ("barrier", "scipy")

#: Strictly positive floor on core power (W) keeping sqrt derivatives finite.
POWER_FLOOR = 1e-9

#: Upper bound on the t_grad variable (Celsius); loose, never binding.
T_GRAD_CEILING = 500.0

#: Feasibility margin for *warm-start acceptance*.  A barrier optimum's
#: active rows sit at slack ~``1 / (t_final * lambda)`` — order 1e-9 for
#: this problem family — so a neighbor's optimum generically fails the
#: solver's default 1e-9 safety margin even though it is a perfectly good
#: (strictly interior) start.  Warm paths therefore accept any start whose
#: worst violation is below this much looser threshold: the barrier only
#: needs slack > 0 to be finite, and the first centering stage immediately
#: restores a comfortable interior.
WARM_START_MARGIN = 1e-12

#: Gradient-variable lift applied to every warm start (Celsius).  The
#: neighbor's optimum has its gradient rows active to ~1e-9 slack (the
#: gradient objective pins them); starting Newton from such a razor-thin
#: interior point stalls its line search.  Lifting ``t_grad`` restores a
#: comfortable slack on every gradient row at zero risk — the variable is
#: re-optimized immediately.
WARM_T_GRAD_LIFT = 1.0

#: Relative power shrink applied when a warm start's *thermal* rows are
#: tight (boundary-limited neighbor cells).  Lowering power loosens every
#: thermal row (monotonicity); it is only applied when the sqrt constraint
#: keeps real slack afterwards, which the within-row walk guarantees (the
#: frequency target just dropped by a grid step).
WARM_POWER_SHRINK = 1e-3

#: Minimum interior comfort (negative max violation) required before a
#: warm start may use the accelerated ``warm_schedule`` stage hints.  A
#: start hugging a wall this closely (e.g. an un-liftable ``t_grad``
#: under a tight cap) can pin Newton's line search at the hint's high
#: stage weight; the ordinary full schedule handles such starts safely.
WARM_HINT_MARGIN = 1e-6

#: Structural subsample of the pairwise-gradient step rows kept by the
#: pruned pre-solve: every k-th step plus the trailing
#: :data:`GRADIENT_PRUNE_TAIL` steps of every pair.  The max pairwise
#: difference is attained at (or within float noise of) the *final* step —
#: trajectories from a uniform start approach steady state monotonically —
#: so slack-threshold pruning is the wrong tool here (the steady-state
#: plateau leaves hundreds of rows within ~0.01 C of the max) while a
#: step subsample keeps the binding rows exactly.  Any residual violation
#: of a dropped step row is repaired in closed form by lifting ``t_grad``
#: before the full-stack polish.
GRADIENT_PRUNE_SUBSAMPLE = 5
GRADIENT_PRUNE_TAIL = 3

#: The kept gradient rows of the pruned pre-solve are *tightened* by this
#: much (Celsius).  The steady-state plateau puts dropped step rows within
#: ~1e-14 of the kept maximum, so an untightened pruned optimum leaves
#: them at essentially zero slack and the full-stack polish starts against
#: the log barrier's 1/slack^2 curvature wall (observed: polish Newton
#: creeps into its iteration cap).  Tightening biases ``t_grad`` up by
#: this margin, giving every dropped row comfortable slack while
#: perturbing the pre-solution by only ~1e-6 — the same order as a normal
#: barrier stage start, which the polish absorbs in a few iterations.
GRADIENT_PRUNE_TIGHTEN = 1e-6

#: Certified worst-case slack error (Celsius) accepted when compressing
#: the thermal step-response rows into a rank-structured tail (see
#: `repro.solver.compiled.RankTail`).  Orders of magnitude below the
#: solver's feasibility margins, and the compressed stack is only ever
#: used for *pre-final* barrier stages whose hand-off point is re-checked
#: against the exact stack — so the tolerance bounds wasted work, not
#: answer accuracy.
RANK_TAIL_TOL = 1e-9

#: Minimum number of +/- row pairs for the antisymmetry fold to pay for
#: itself.  The fold halves the gradient-row log count but roughly
#: doubles the number of numpy dispatches per evaluation; measured on the
#: Niagara-8 stack, 1400 pairs win ~20% while the pruned pre-solve's
#: ~360 pairs *lose* ~30% — below this floor the exact rows are faster.
MIN_FOLD_PAIRS = 1000


@dataclass
class _PruneState:
    """Per-problem-structure sparse-pruning state.

    Attributes:
        thermal_rows: rows of the leading (thermal) linear block; these are
            pruned adaptively by observed slack.
        gradient_rows: rows of the pairwise-gradient linear block; these
            are subsampled structurally and tightened by
            :data:`GRADIENT_PRUNE_TIGHTEN` in the pre-solve.
        mask: boolean keep-mask over all stacked linear rows (thermal part
            grows as near-active rows are observed; gradient part is the
            fixed structural subsample).
        thermal_seeded: False until a full-stack optimum has seeded the
            thermal active set (the first cell of a sweep solves unpruned).
    """

    thermal_rows: int
    gradient_rows: int
    mask: np.ndarray
    thermal_seeded: bool = False

    def kept_gradient_span(self) -> tuple[int, int]:
        """(start, stop) of the kept gradient rows inside the pruned stack."""
        kept_thermal = int(self.mask[: self.thermal_rows].sum())
        kept_gradient = int(
            self.mask[
                self.thermal_rows : self.thermal_rows + self.gradient_rows
            ].sum()
        )
        return kept_thermal, kept_thermal + kept_gradient


@dataclass(frozen=True)
class FrequencyAssignment:
    """Result of one Pro-Temp solve (one table cell of Figure 4).

    Attributes:
        feasible: whether the (t_start, f_target) point is achievable.
        frequencies: per-core frequencies (Hz), floorplan core order; zeros
            when infeasible.
        core_power: per-core power (W) implied by Eq. 2.
        predicted_peak: model-predicted max node temperature over the window
            (Celsius); +inf when infeasible.
        predicted_gradient: model-predicted max pairwise core temperature
            difference over the window (Celsius).
        objective: solver objective value (total power, plus the gradient
            term when enabled).
        t_start: starting temperature the solve assumed (Celsius).
        f_target: required average frequency (Hz).
        status: underlying solver status.
        iterations: Newton iterations spent.
        solver_x: raw solver variable vector (power, plus the gradient
            variable when enabled); strictly feasible at a barrier optimum,
            so it can warm-start a neighboring design point (pass it as
            ``x0`` to :meth:`ProTempOptimizer.solve`).  None when
            infeasible or produced by a closed-form path.
    """

    feasible: bool
    frequencies: np.ndarray
    core_power: np.ndarray
    predicted_peak: float
    predicted_gradient: float
    objective: float
    t_start: float
    f_target: float
    status: SolveStatus
    iterations: int = 0
    solver_x: np.ndarray | None = None

    @property
    def average_frequency(self) -> float:
        """Mean core frequency (Hz)."""
        return float(np.mean(self.frequencies))


class ProTempOptimizer:
    """Design-time frequency-assignment optimizer (paper Phase 1).

    Args:
        platform: the multi-core platform.
        horizon: DFS window length in seconds (default 100 ms).
        mode: ``"variable"`` per-core frequencies or ``"uniform"`` one
            shared frequency.
        minimize_gradient: include the Eq. 4/5 spatial-gradient variable and
            objective term.
        gradient_weight: objective weight ``lambda`` on ``t_grad`` (the
            paper's Eq. 5 uses an unweighted sum, i.e. 1.0).
        t_grad_cap: optional hard upper bound on the allowed pairwise
            gradient (Celsius); None leaves it to the objective.
        step_subsample: constrain every k-th thermal step (1 = every step,
            exactly the paper's formulation).
        backend: ``"barrier"`` (native interior point) or ``"scipy"``
            (cross-check backend).
        barrier_options: solver tuning for the barrier backend.
        accelerated: enable the sweep fast paths — memoized per-`t_start`
            constraint data and feasibility boundaries, a compiled
            constraint stack shared across solves (the matrix part of the
            constraints depends only on the platform, never on the design
            point), and an O(1)-rescaled feasibility-boundary objective.
            Results agree with the non-accelerated path to solver
            tolerance (~1e-6 relative on frequencies and boundaries; the
            rescaled boundary solve's absolute duality-gap bound is
            ``gap_tol * f_max`` instead of ``gap_tol`` Hz).  Disable to
            reproduce the cold per-cell cost structure of the original
            implementation (benchmark baselines).
        prune_slack_margin: slack threshold (Celsius) below which a linear
            constraint row observed at an optimum is considered
            "near-active" and retained by the sparse-pruning fast path
            (see :meth:`solve`'s ``prune``).  The default is deliberately
            tight: the gradient-minimization objective leaves *many*
            pairwise-gradient rows clustered within ~0.1 C of active, so a
            loose margin would retain most of the stack and prune nothing.
            Larger margins keep more rows (slower, fewer fallbacks); the
            post-hoc full-stack check makes any value sound.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        horizon: float = PAPER_DFS_PERIOD,
        mode: Mode = "variable",
        minimize_gradient: bool = True,
        gradient_weight: float = 1.0,
        t_grad_cap: float | None = None,
        step_subsample: int = 1,
        backend: Backend = "barrier",
        barrier_options: BarrierOptions | None = None,
        accelerated: bool = True,
        prune_slack_margin: float = 0.02,
    ) -> None:
        if mode not in ("variable", "uniform"):
            raise SolverError(f"unknown mode {mode!r}")
        if backend not in BACKENDS:
            raise SolverError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
                + did_you_mean(backend, BACKENDS)
            )
        if gradient_weight < 0:
            raise SolverError("gradient_weight must be >= 0")
        if t_grad_cap is not None and t_grad_cap <= 0:
            raise SolverError("t_grad_cap must be positive")
        self.platform = platform
        self.mode: Mode = mode
        self.minimize_gradient = minimize_gradient
        self.gradient_weight = gradient_weight
        self.t_grad_cap = t_grad_cap
        self.backend: Backend = backend
        if barrier_options is None:
            # A gentle schedule (t_initial=1, mu=20) tracks the central path
            # reliably for this problem family; more aggressive schedules
            # were observed to stall Newton against the thousands of thermal
            # constraint rows and return badly off-optimal points.  The gap
            # tolerance is ample for watt-scale objectives and MHz-scale
            # decisions.
            barrier_options = BarrierOptions(
                gap_tol=1e-6,
                newton=NewtonOptions(tol=1e-9, max_iterations=120),
            )
        self.barrier_options = barrier_options
        # Warm paths accept any numerically interior start (see
        # WARM_START_MARGIN); all other tolerances are shared.
        self._warm_options = replace(
            barrier_options, feasibility_margin=WARM_START_MARGIN
        )
        self.accelerated = bool(accelerated)
        if prune_slack_margin <= 0:
            raise SolverError("prune_slack_margin must be positive")
        self.prune_slack_margin = float(prune_slack_margin)
        self.response = WindowResponse(
            platform, horizon=horizon, step_subsample=step_subsample
        )
        # Sweep caches (active when `accelerated`): per-start-temperature
        # constraint data, per-start feasibility boundaries, compiled
        # constraint stacks keyed by problem structure, and the sparse-
        # pruning active-row masks (rows seen near-active at any optimum).
        self._stacked_cache: dict[object, StackedConstraints] = {}
        self._gradient_cache: dict[object, tuple[np.ndarray, np.ndarray]] = {}
        self._boundary_cache: dict[object, tuple[float, np.ndarray] | None] = {}
        self._compiled_cache: dict[tuple, CompiledConstraints] = {}
        self._prune_states: dict[tuple, _PruneState] = {}
        # Structure plans (antisymmetry fold / rank tail) are matrix-only,
        # so one plan per problem structure serves every design point; the
        # pruned variants additionally key on the prune mask (which grows
        # over a sweep).
        self._structure_cache: dict[tuple, CompiledStructure | None] = {}
        self._pruned_structure_cache: dict[
            tuple, CompiledStructure | None
        ] = {}
        self._rows_with_grad: np.ndarray | None = None
        self._grad_rows_matrix: np.ndarray | None = None

    # -- sweep caches ---------------------------------------------------------

    def clear_start_caches(self) -> None:
        """Drop the per-start-temperature memoizations.

        Long-lived closed-loop users (the MPC policy re-solves at a fresh
        measured temperature every DFS window) would otherwise grow the
        per-start caches without bound — every window's start key is new.
        The structure-level caches (compiled stacks, structure plans),
        which depend only on the platform, are kept.
        """
        self._stacked_cache.clear()
        self._gradient_cache.clear()
        self._boundary_cache.clear()

    @staticmethod
    def _start_key(t_start: float | np.ndarray) -> object:
        if np.isscalar(t_start):
            return float(t_start)
        arr = np.asarray(t_start, dtype=float)
        return ("vec", arr.tobytes())

    def _stacked_for(
        self, t_start: float | np.ndarray
    ) -> StackedConstraints:
        """`WindowResponse.stacked`, memoized per start temperature."""
        if not self.accelerated:
            return self.response.stacked(t_start)
        key = self._start_key(t_start)
        stacked = self._stacked_cache.get(key)
        if stacked is None:
            stacked = self.response.stacked(t_start)
            self._stacked_cache[key] = stacked
        return stacked

    def _gradient_rows_for(
        self, t_start: float | np.ndarray, stacked: StackedConstraints
    ) -> tuple[np.ndarray, np.ndarray]:
        """`WindowResponse.gradient_rows`, memoized per start temperature."""
        if not self.accelerated:
            return self.response.gradient_rows(stacked)
        key = self._start_key(t_start)
        cached = self._gradient_cache.get(key)
        if cached is None:
            cached = self.response.gradient_rows(stacked)
            self._gradient_cache[key] = cached
        return cached

    def _compiled_for(
        self, blocks: list, n_vars: int
    ) -> CompiledConstraints | None:
        """Compiled stack for `blocks`, reusing the cached matrix part.

        Across a sweep only right-hand sides change (temperature offsets
        with `t_start`, the sqrt target with `f_target`), so the stacked
        matrix is compiled once per problem structure and rebound per cell.
        """
        if not self.accelerated:
            return None
        signature = blocks_signature(blocks)
        template = self._compiled_cache.get(signature)
        if template is None:
            template = CompiledConstraints.compile(blocks, n_vars)
            self._compiled_cache[signature] = template
            return template
        return template.with_blocks(blocks)

    def _structure_for(
        self, compiled: CompiledConstraints, blocks: list
    ) -> CompiledStructure | None:
        """Structure plan for the full stack (fold + rank tail), memoized.

        The pairwise-gradient rows come in exact +/- mirror pairs (row
        ``(i, j)`` is the negation of row ``(j, i)`` plus the shared
        ``t_grad`` column), and the thermal step-response rows converge
        geometrically to steady state — both are properties of the shared
        matrix part, so the plan is built once per problem structure.
        Every exploitable property is *re-validated* by the structure
        constructors (bit-exact fold reconstruction; certified tail error
        bound), so a layout assumption that does not hold simply yields a
        smaller plan or None, never a wrong answer.
        """
        key = compiled.signature
        if key in self._structure_cache:
            return self._structure_cache[key]
        n = self.platform.n_cores
        n_vars = compiled.n_vars
        steps = len(self.response.steps)
        linear_counts = [
            block.a.shape[0]
            for block in blocks
            if isinstance(block, LinearInequality)
        ]
        thermal_rows = linear_counts[0] if linear_counts else 0
        gradient_rows = linear_counts[1] if len(linear_counts) > 1 else 0

        # Ordered pairs are laid out pair-major, step-minor with pair
        # index P(i, j) = i*(n-1) + (j if j < i else j-1).
        pair_plus = pair_minus = None
        if n > 1 and steps > 0 and gradient_rows == steps * n * (n - 1):
            arange = np.arange(steps)
            plus_parts, minus_parts = [], []
            for i in range(n):
                for j in range(i + 1, n):
                    p_ij = i * (n - 1) + (j - 1)
                    p_ji = j * (n - 1) + i
                    plus_parts.append(thermal_rows + p_ij * steps + arange)
                    minus_parts.append(thermal_rows + p_ji * steps + arange)
            pair_plus = np.concatenate(plus_parts)
            pair_minus = np.concatenate(minus_parts)

        tail_kwargs: dict = {}
        if thermal_rows and steps >= 2 and thermal_rows % steps == 0:
            x_bound = np.full(n_vars, self.platform.power.p_max)
            if n_vars == n + 1:
                x_bound[n] = (
                    self.t_grad_cap
                    if self.t_grad_cap is not None
                    else T_GRAD_CEILING
                )
            tail_kwargs = dict(
                tail_rows=np.arange(thermal_rows),
                tail_steps=steps,
                tail_groups=thermal_rows // steps,
                x_bound=x_bound,
                tail_tol=RANK_TAIL_TOL,
            )
        structure = CompiledStructure.build(
            compiled.a,
            pair_plus=pair_plus,
            pair_minus=pair_minus,
            **tail_kwargs,
        )
        self._structure_cache[key] = structure
        return structure

    def _pruned_structure_for(
        self,
        state: _PruneState,
        compiled: CompiledConstraints,
        blocks: list,
        pruned,
    ) -> CompiledStructure | None:
        """Fold-only structure plan for a pruned stack (or None), memoized.

        The prune mask keeps the same step subsample for both members of
        every +/- gradient pair, so the fold survives pruning; the rank
        tail does not (its step blocks are no longer contiguous), and the
        pruned stack is small enough that the exact rows win anyway.  The
        fold is exact algebra, so it is safe on every stage of the pruned
        pre-solve — the full-stack polish restores cold agreement
        regardless.
        """
        key = (compiled.signature, state.mask.tobytes())
        if key in self._pruned_structure_cache:
            return self._pruned_structure_cache[key]
        structure = None
        full = self._structure_for(compiled, blocks)
        if full is not None and full.fold is not None:
            mask = state.mask
            position = np.cumsum(mask) - 1
            sel = mask[full.fold.plus] & mask[full.fold.minus]
            # Folding only pays on big stacks; the pruned stack's surviving
            # pair count is usually far below the break-even point.
            if int(sel.sum()) >= MIN_FOLD_PAIRS:
                structure = CompiledStructure.build(
                    pruned.a,
                    pair_plus=position[full.fold.plus[sel]],
                    pair_minus=position[full.fold.minus[sel]],
                )
        self._pruned_structure_cache[key] = structure
        return structure

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        *,
        x0: np.ndarray | None = None,
        warm_from: FrequencyAssignment | None = None,
        prune: bool = False,
        warm_schedule: bool = False,
        structure: bool = False,
    ) -> FrequencyAssignment:
        """Optimal frequency assignment for one design point.

        Args:
            t_start: starting temperature — scalar for the table's uniform
                worst-case start, or a full node vector.
            f_target: required average core frequency (Hz), in
                ``[0, f_max]``.
            x0: optional warm start — the ``solver_x`` of a neighboring
                solve (same mode/structure).  When it is strictly feasible
                for this design point, the feasibility-boundary pre-solve
                and phase I are skipped entirely; otherwise it is ignored
                and the cold path runs.  Ignored in uniform mode (closed
                form).
            warm_from: richer alternative to `x0`: the full neighboring
                :class:`FrequencyAssignment`.  Besides supplying the warm
                vector it identifies the neighbor's design point, which
                enables the `warm_schedule` duality-gap estimate.  A warm
                start whose only violation is the gradient variable (a
                colder row can *raise* some pairwise-gradient offsets) is
                repaired by lifting ``t_grad`` instead of being dropped.
            prune: solve against the sparse pruned constraint stack (rows
                seen near-active at previous optima) and re-check the full
                stack afterwards, falling back to the full solve — and
                growing the active set — on any violation.  The accepted
                result is always *polished* on the full stack at the cold
                schedule's final barrier weight, so agreement with the
                unpruned solve is preserved to Newton tolerance.  Only
                active with the accelerated barrier backend.
            warm_schedule: start the barrier schedule at
                ``m / (estimated gap at the warm start)`` — estimated from
                the neighbor's constraint duals — instead of
                ``t_initial``, skipping the early centering stages that a
                near-optimal start does not need.  Requires `warm_from`.
            structure: evaluate pre-final barrier stages through the
                structure-exploiting kernels (antisymmetry-folded gradient
                rows, rank-compressed thermal tail — see
                :meth:`_structure_for`); the final stage always runs on
                the exact stack and the hand-off point is verified against
                it, so results agree with the unstructured solve to Newton
                tolerance.  Only active with the accelerated barrier
                backend.

        Returns:
            A :class:`FrequencyAssignment` (``feasible=False`` when the
            design point cannot satisfy the constraints).
        """
        self._check_target(f_target)
        if self.mode == "uniform":
            return self._solve_uniform(t_start, f_target)
        return self._solve_variable(
            t_start,
            f_target,
            x0=x0,
            warm_from=warm_from,
            prune=prune,
            warm_schedule=warm_schedule,
            structure=structure,
        )

    def is_feasible(
        self, t_start: float | np.ndarray, f_target: float
    ) -> bool:
        """Fast feasibility check (no full optimization).

        Variable mode compares against the feasibility boundary (one convex
        solve, memoization-friendly); uniform mode uses the closed form.
        """
        self._check_target(f_target)
        if self.mode == "uniform":
            return self._uniform_feasible(t_start, f_target)
        return f_target <= self._max_feasible_variable(t_start) * (1 - 1e-9)

    def max_feasible_target(
        self,
        t_start: float | np.ndarray,
        *,
        tolerance: float = 1e6,
    ) -> float:
        """Largest feasible average frequency at `t_start` (Fig. 9's y-axis).

        For the uniform mode this is a bisection on the closed-form
        feasibility check.  For the variable mode it is a *single* convex
        solve: maximize ``sum_i f_i = (f_max/sqrt(p_max)) sum_i sqrt(p_i)``
        subject to the temperature and box constraints — the optimum divided
        by ``n`` is exactly the feasibility threshold of Eq. 3's average-
        frequency constraint.

        Args:
            t_start: starting temperature.
            tolerance: bisection resolution in Hz for the uniform mode
                (default 1 MHz).

        Returns:
            The feasibility threshold in Hz (0.0 when even an idle window
            violates the temperature cap).
        """
        if self.mode == "uniform":
            return self._max_feasible_uniform(t_start, tolerance)
        return self._max_feasible_variable(t_start)

    def _max_feasible_uniform(
        self, t_start: float | np.ndarray, tolerance: float
    ) -> float:
        lo, hi = 0.0, self.platform.f_max
        if self._uniform_feasible(t_start, hi):
            return hi
        if not self._uniform_feasible(t_start, lo):
            return 0.0
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self._uniform_feasible(t_start, mid):
                lo = mid
            else:
                hi = mid
        return lo

    def _max_feasible_variable(self, t_start: float | np.ndarray) -> float:
        result = self._max_sqrt_solve(t_start)
        if result is None:
            return 0.0
        avg_frequency, _p_star = result
        return min(avg_frequency, self.platform.f_max)

    def _max_sqrt_solve(
        self, t_start: float | np.ndarray
    ) -> tuple[float, np.ndarray] | None:
        """Maximize the average frequency under the temperature cap.

        Returns ``(max average frequency, maximizing power vector)`` or
        None when even near-zero power violates the cap.  This single solve
        both yields the Figure 9 boundary and seeds the main solve's
        strictly feasible start (see :meth:`_interior_start`).  Memoized
        per start temperature when `accelerated`: a table sweep needs the
        boundary once per row, not once per cell.
        """
        if self.accelerated:
            key = self._start_key(t_start)
            if key in self._boundary_cache:
                return self._boundary_cache[key]
            result = self._max_sqrt_solve_cold(t_start)
            self._boundary_cache[key] = result
            return result
        return self._max_sqrt_solve_cold(t_start)

    def _max_sqrt_solve_cold(
        self, t_start: float | np.ndarray
    ) -> tuple[float, np.ndarray] | None:
        platform = self.platform
        n = platform.n_cores
        p_max = platform.power.p_max
        f_max = platform.f_max

        stacked = self._stacked_for(t_start)
        blocks = [
            LinearInequality(stacked.w, platform.t_max - stacked.offset),
            BoxConstraint(
                lower=np.full(n, POWER_FLOOR),
                upper=np.full(n, p_max),
                indices=np.arange(n),
            ),
        ]
        # Normalize the objective to O(1): the weighted sqrt-sum is ~1e10 Hz
        # while the barrier gap tolerance is absolute, so without scaling the
        # final stages run at t ~ 1e9 where Newton grinds against the
        # t-scaled sqrt curvature (measured ~25x slower for the same answer
        # to ~1e-8 relative; the gap bound loosens from gap_tol Hz to
        # gap_tol * f_max).  Same conditioning trick as the solver's
        # _SqrtMinimaxStage.  Kept off the non-accelerated path so
        # benchmark baselines reproduce the original cost structure.
        scale = (
            1.0 / (n * f_max)
            if self.accelerated and self.backend == "barrier"
            else 1.0
        )
        objective = NegativeSqrtObjective(
            weights=np.full(n, scale * f_max / np.sqrt(p_max)),
            indices=np.arange(n),
            n_vars=n,
        )
        x0 = np.full(n, POWER_FLOOR * 10.0)
        if self.backend == "scipy":
            result = solve_scipy(objective, blocks, x0)
        else:
            result = solve_barrier(
                objective, blocks, x0, self.barrier_options,
                compiled=self._compiled_for(blocks, n),
            )
        if not result.ok:
            return None
        return (
            -result.objective / (n * scale),
            np.asarray(result.x, dtype=float),
        )

    # -- uniform mode ----------------------------------------------------------

    def _uniform_temperatures(
        self, t_start: float | np.ndarray, f_target: float
    ) -> np.ndarray:
        scaling = self.platform.power.scaling
        p_shared = float(scaling.power(f_target))
        stacked = self._stacked_for(t_start)
        p = np.full(self.platform.n_cores, p_shared)
        return stacked.temperatures(p)

    def _uniform_feasible(
        self, t_start: float | np.ndarray, f_target: float
    ) -> bool:
        temps = self._uniform_temperatures(t_start, f_target)
        return bool(np.max(temps) <= self.platform.t_max)

    def _solve_uniform(
        self, t_start: float | np.ndarray, f_target: float
    ) -> FrequencyAssignment:
        n = self.platform.n_cores
        scaling = self.platform.power.scaling
        temps = self._uniform_temperatures(t_start, f_target)
        core_temps = temps[:, self.platform.core_indices]
        gradient = float(
            np.max(core_temps.max(axis=1) - core_temps.min(axis=1))
        )
        feasible = bool(np.max(temps) <= self.platform.t_max)
        if self.t_grad_cap is not None and gradient > self.t_grad_cap:
            feasible = False
        p_shared = float(scaling.power(f_target))
        if not feasible:
            return self._infeasible(t_start, f_target)
        frequencies = np.full(n, f_target)
        objective = n * p_shared + (
            self.gradient_weight * gradient if self.minimize_gradient else 0.0
        )
        return FrequencyAssignment(
            feasible=True,
            frequencies=frequencies,
            core_power=np.full(n, p_shared),
            predicted_peak=float(np.max(temps)),
            predicted_gradient=gradient,
            objective=objective,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=SolveStatus.OPTIMAL,
        )

    # -- variable mode -----------------------------------------------------------

    def _variable_blocks(
        self, t_start: float | np.ndarray, f_target: float
    ) -> tuple[list, int]:
        platform = self.platform
        n = platform.n_cores
        p_max = platform.power.p_max
        f_max = platform.f_max
        with_grad = self.minimize_gradient or self.t_grad_cap is not None
        n_vars = n + 1 if with_grad else n

        stacked = self._stacked_for(t_start)
        rows = stacked.w
        offset = stacked.offset
        if with_grad:
            # The widened matrix depends only on the platform response, so
            # it is built once and shared across every design point.
            if self._rows_with_grad is None or not self.accelerated:
                self._rows_with_grad = np.hstack(
                    [rows, np.zeros((rows.shape[0], 1))]
                )
            rows = self._rows_with_grad
        blocks: list = [
            LinearInequality(rows, platform.t_max - offset)
        ]

        if with_grad:
            d, g = self._gradient_rows_for(t_start, stacked)
            if self._grad_rows_matrix is None or not self.accelerated:
                self._grad_rows_matrix = np.hstack(
                    [d, -np.ones((d.shape[0], 1))]
                )
            blocks.append(LinearInequality(self._grad_rows_matrix, -g))
            cap = (
                self.t_grad_cap if self.t_grad_cap is not None else T_GRAD_CEILING
            )
            blocks.append(
                BoxConstraint(
                    lower=np.array([0.0]),
                    upper=np.array([cap]),
                    indices=np.array([n]),
                )
            )

        if f_target > 0:
            blocks.append(
                SqrtSumConstraint(
                    weights=np.full(n, f_max / np.sqrt(p_max)),
                    indices=np.arange(n),
                    target=n * f_target,
                )
            )
        blocks.append(
            BoxConstraint(
                lower=np.full(n, POWER_FLOOR),
                upper=np.full(n, p_max),
                indices=np.arange(n),
            )
        )
        return blocks, n_vars

    def _interior_start(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        p_star: np.ndarray,
        s_star: float,
    ) -> np.ndarray | None:
        """Strictly feasible start by blending toward the boundary point.

        ``p_star`` maximizes the (concave) weighted sqrt-sum under the
        temperature constraints; a low uniform power ``p_low`` satisfies
        them with slack.  Any convex blend keeps the temperature rows
        strictly satisfied (they are affine and both endpoints satisfy
        them, one strictly), and by concavity the blend's sqrt-sum is at
        least the blend of the endpoint sums — so choosing the blend weight
        above the frequency requirement's interpolation point makes *every*
        constraint strictly feasible.  This avoids the generic phase-I
        machinery entirely, which was observed to stall on this problem's
        scaling.

        Returns None when the requirement sits on/over the boundary.
        """
        platform = self.platform
        n = platform.n_cores
        weight = platform.f_max / np.sqrt(platform.power.p_max)
        s_req = n * f_target
        p_low = np.full(n, POWER_FLOOR * 10.0)
        s_low = float(weight * np.sqrt(p_low).sum())
        if s_star <= max(s_req, s_low) * (1 + 1e-9):
            return None
        needed = max((s_req - s_low) / (s_star - s_low), 0.0)
        if needed >= 0.995:
            return None
        alpha = needed + 0.5 * (0.995 - needed)
        p0 = alpha * p_star + (1 - alpha) * p_low

        with_grad = self.minimize_gradient or self.t_grad_cap is not None
        if not with_grad:
            return p0
        stacked = self._stacked_for(t_start)
        temps = stacked.temperatures(p0)[:, platform.core_indices]
        gradient = float(np.max(temps.max(axis=1) - temps.min(axis=1)))
        cap = (
            self.t_grad_cap if self.t_grad_cap is not None else T_GRAD_CEILING
        )
        tgrad0 = min(gradient + 1.0, cap - 1e-6)
        if tgrad0 <= gradient:
            # A hard gradient cap tighter than the blend's gradient: no
            # analytic interior point; let generic phase I try from here.
            tgrad0 = cap * 0.5
        return np.concatenate([p0, [tgrad0]])

    def _solve_variable(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        x0: np.ndarray | None = None,
        warm_from: FrequencyAssignment | None = None,
        prune: bool = False,
        warm_schedule: bool = False,
        structure: bool = False,
    ) -> FrequencyAssignment:
        platform = self.platform
        n = platform.n_cores

        blocks, n_vars = self._variable_blocks(t_start, f_target)
        with_grad = n_vars == n + 1
        c = np.ones(n_vars)
        if with_grad:
            c[n] = self.gradient_weight if self.minimize_gradient else 0.0
        objective = LinearObjective(c=c)

        if x0 is None and warm_from is not None and warm_from.feasible:
            x0 = warm_from.solver_x
        warm = None
        if x0 is not None:
            warm = np.asarray(x0, dtype=float)
            if warm.shape != (n_vars,):
                warm = None

        if self.backend == "scipy":
            # SLSQP accepts infeasible starts (and cannot reliably solve
            # the boundary pre-problem), so go straight at the program.
            if warm is None:
                p_guess = max(
                    POWER_FLOOR * 10.0,
                    platform.power.p_max
                    * (f_target / platform.f_max) ** 2
                    * 0.9,
                )
                warm = np.full(n_vars, p_guess)
                if with_grad:
                    cap = (
                        self.t_grad_cap
                        if self.t_grad_cap is not None
                        else T_GRAD_CEILING
                    )
                    warm[n] = cap / 2.0
            result = solve_scipy(objective, blocks, warm)
        else:
            compiled = self._compiled_for(blocks, n_vars)
            stage_compiled = None
            if structure and compiled is not None:
                st = self._structure_for(compiled, blocks)
                if st is not None:
                    stage_compiled = compiled.with_structure(st)
            result = None
            if warm is not None:
                prepared = self._prepare_warm(
                    blocks, compiled, warm, n_vars, f_target
                )
                if prepared is None:
                    warm = None
                else:
                    warm, warm_violation = prepared
                if warm is not None:
                    # Numerically interior warm start: skip the boundary
                    # pre-solve and phase I entirely.
                    hint = None
                    if (
                        warm_schedule
                        and warm_from is not None
                        and warm_violation < -WARM_HINT_MARGIN
                    ):
                        hint = self._warm_stage_hint(
                            t_start, f_target, warm_from, blocks,
                            compiled, warm,
                        )
                    if prune and compiled is not None:
                        result = self._solve_pruned(
                            t_start, objective, blocks, compiled, warm,
                            warm_violation, hint, structure=structure,
                        )
                    if result is None:
                        result = solve_barrier(
                            objective, blocks, warm, self._warm_options,
                            compiled=compiled,
                            initial_violation=warm_violation,
                            t_start_hint=hint,
                            stage_compiled=stage_compiled,
                        )
                        if not result.ok:
                            # A stalled warm solve must not misclassify the
                            # cell: retry on the cold start path below.
                            result = None
                    if result is not None and not self._plausible_optimum(
                        result.x, f_target
                    ):
                        # A warm solve that silently parked far above the
                        # frequency requirement is a stall, not an
                        # optimum; re-solve from the cold start.
                        result = None
            if result is None:
                boundary = self._max_sqrt_solve(t_start)
                if boundary is None:
                    return self._infeasible(t_start, f_target)
                boundary_avg, p_star = boundary
                if f_target > boundary_avg * (1 - 1e-9):
                    return self._infeasible(t_start, f_target)
                start = self._interior_start(
                    t_start, f_target, p_star, n * boundary_avg
                )
                if start is None:
                    return self._infeasible(t_start, f_target)
                result = solve_barrier(
                    objective, blocks, start, self.barrier_options,
                    compiled=compiled,
                    stage_compiled=stage_compiled,
                )
            if prune and compiled is not None and result.ok:
                self._note_active_rows(
                    self._prune_state_for(compiled, blocks),
                    compiled,
                    result.x,
                )
        if not result.ok:
            return self._infeasible(t_start, f_target, result.status)
        return self._assignment_from_result(t_start, f_target, result)

    def _assignment_from_result(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        result,
    ) -> FrequencyAssignment:
        """Recover frequencies, temperatures and metrics from a solve."""
        platform = self.platform
        n = platform.n_cores
        p = np.clip(result.x[:n], 0.0, platform.power.p_max)
        frequencies = np.asarray(
            platform.power.scaling.frequency_for_power(p), dtype=float
        )
        stacked = self._stacked_for(t_start)
        temps = stacked.temperatures(p)
        core_temps = temps[:, platform.core_indices]
        gradient = float(
            np.max(core_temps.max(axis=1) - core_temps.min(axis=1))
        )
        return FrequencyAssignment(
            feasible=True,
            frequencies=frequencies,
            core_power=p,
            predicted_peak=float(np.max(temps)),
            predicted_gradient=gradient,
            objective=result.objective,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=result.status,
            iterations=result.iterations,
            solver_x=np.asarray(result.x, dtype=float).copy(),
        )

    # -- sparse pruning and warm schedules -------------------------------------

    @staticmethod
    def _violation(blocks: list, compiled, x: np.ndarray) -> float:
        if compiled is not None:
            return compiled.max_violation(x)
        return max(float(np.max(block.residuals(x))) for block in blocks)

    def _prepare_warm(
        self,
        blocks: list,
        compiled,
        warm: np.ndarray,
        n_vars: int,
        f_target: float,
    ) -> tuple[np.ndarray, float] | None:
        """Push a neighbor's optimum comfortably into the interior.

        A barrier optimum hugs its active constraints (slack ~1e-9); used
        raw as a warm start, the log barrier's enormous curvature there
        stalls Newton's line search.  Two monotone repairs restore a
        comfortable interior without leaving the feasible set:

        * lift ``t_grad`` (see :data:`WARM_T_GRAD_LIFT`) — also covers the
          cross-row case where a colder start *raises* some pairwise
          gradient offsets and the neighbor's ``t_grad`` is slightly
          infeasible;
        * when thermal rows remain tight (boundary-limited neighbors),
          shrink power by :data:`WARM_POWER_SHRINK`, which loosens every
          thermal row by monotonicity and is attempted only while the
          sqrt constraint keeps real slack.

        Returns the repaired start and its (negative) max violation, or
        None when no comfortable interior start could be built (callers
        fall back to the cold path).
        """
        n = self.platform.n_cores
        margin = self.barrier_options.feasibility_margin
        with_grad = n_vars == n + 1
        prepared = warm.copy()
        violation = self._violation(blocks, compiled, prepared)
        if with_grad:
            cap = (
                self.t_grad_cap
                if self.t_grad_cap is not None
                else T_GRAD_CEILING
            )
            lifted = (
                float(prepared[n]) + max(violation, 0.0) + WARM_T_GRAD_LIFT
            )
            if lifted < cap:
                prepared[n] = lifted
                violation = self._violation(blocks, compiled, prepared)
        if violation < -margin:
            return prepared, violation
        # Thermal rows still tight: shed a little power if the frequency
        # requirement allows it.
        weight = self.platform.f_max / np.sqrt(self.platform.power.p_max)
        shrunk = np.maximum(
            prepared[:n] * (1.0 - WARM_POWER_SHRINK), POWER_FLOOR * 2.0
        )
        sqrt_slack = float(weight * np.sqrt(shrunk).sum()) - n * f_target
        if sqrt_slack <= n * f_target * 1e-6:
            return None
        prepared[:n] = shrunk
        violation = self._violation(blocks, compiled, prepared)
        if violation < -margin:
            return prepared, violation
        return None

    def _warm_stage_hint(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        warm_from: FrequencyAssignment,
        blocks: list,
        compiled,
        warm: np.ndarray,
    ) -> float | None:
        """Initial barrier weight ``m / (estimated gap at the warm start)``.

        The warm start is the neighbor's optimum, so its suboptimality for
        *this* cell is first-order the neighbor's constraint duals times
        the constraint perturbation (sensitivity analysis): the sqrt
        target moved by ``n * (f_prev - f_new)`` and, across temperature
        rows, the linear right-hand sides moved by ``b_new - b_prev``.
        The duals are the barrier estimates ``1 / (t_final * slack)`` at
        the neighbor's final stage weight — all computable from cached
        sweep data in a couple of matrix-vector products.
        """
        if compiled is None or not np.isscalar(t_start):
            return None
        t_prev = warm_from.t_start
        f_prev = warm_from.f_target
        opts = self.barrier_options
        m_new = total_constraints(blocks)
        m_prev = (
            m_new
            - (1 if f_target > 0 else 0)
            + (1 if f_prev > 0 else 0)
        )
        t_prev_final = final_stage_weight(max(m_prev, 1), opts)

        gap = 0.0
        if float(t_prev) != float(t_start):
            key = self._start_key(t_prev)
            if key not in self._stacked_cache:
                # The neighbor's constraint data has been evicted (or was
                # never built in this process): no cheap dual estimate.
                return None
            b_prev = self._linear_rhs(t_prev)
            ax = compiled.a @ warm
            s_prev = np.maximum(b_prev - ax, 1e-12)
            delta_b = np.maximum(compiled.b - b_prev, 0.0)
            gap += float(np.sum(delta_b / s_prev)) / t_prev_final
        if f_target > 0:
            if f_prev <= 0:
                # The sqrt constraint did not exist at the neighbor: the
                # perturbation is a tightening with unknown dual.
                return None
            n = self.platform.n_cores
            weight = self.platform.f_max / np.sqrt(self.platform.power.p_max)
            sqrt_sum = float(weight * np.sqrt(warm[:n]).sum())
            s_sqrt = max(sqrt_sum - n * f_prev, 1e-12)
            gap += max(n * (f_prev - f_target), 0.0) / (
                t_prev_final * s_sqrt
            )
        gap = max(gap, opts.gap_tol)
        return m_new / gap

    def _linear_rhs(self, t_start: float | np.ndarray) -> np.ndarray:
        """Stacked linear right-hand sides of the design point `t_start`."""
        stacked = self._stacked_for(t_start)
        parts = [self.platform.t_max - stacked.offset]
        if self.minimize_gradient or self.t_grad_cap is not None:
            _d, g = self._gradient_rows_for(t_start, stacked)
            parts.append(-g)
        return np.concatenate(parts)

    def _prune_state_for(
        self, compiled: CompiledConstraints, blocks: list
    ) -> _PruneState:
        """The pruning state of this problem structure (built on demand).

        The keep-mask starts as: no thermal rows (seeded from the first
        full-stack optimum), the structural step subsample of the gradient
        rows, and every row of any other linear block.
        """
        state = self._prune_states.get(compiled.signature)
        if state is not None:
            return state
        linear_counts = [
            block.a.shape[0]
            for block in blocks
            if isinstance(block, LinearInequality)
        ]
        thermal_rows = linear_counts[0] if linear_counts else 0
        gradient_rows = 0
        mask = np.zeros(compiled.a.shape[0], dtype=bool)
        mask[thermal_rows:] = True
        if len(linear_counts) > 1:
            steps = len(self.response.steps)
            rows = linear_counts[1]
            if rows % steps == 0:
                gradient_rows = rows
                keep = np.zeros(steps, dtype=bool)
                keep[::GRADIENT_PRUNE_SUBSAMPLE] = True
                keep[-min(GRADIENT_PRUNE_TAIL, steps):] = True
                mask[thermal_rows : thermal_rows + gradient_rows] = np.tile(
                    keep, gradient_rows // steps
                )
        state = _PruneState(
            thermal_rows=thermal_rows,
            gradient_rows=gradient_rows,
            mask=mask,
        )
        self._prune_states[compiled.signature] = state
        return state

    def _seed_thermal_from_boundary(
        self, state: _PruneState, t_start: float | np.ndarray
    ) -> bool:
        """Seed the thermal active set from the row's boundary solution.

        The feasibility-boundary solve maximizes power under the thermal
        cap, so the rows tight at its solution are the natural first guess
        for the rows that can bind anywhere in the row (lower-power optima
        run cooler).  Not a guarantee — the post-hoc full-stack check
        catches any miss — but it lets the very first cell of a sweep run
        pruned instead of paying a full-stack seed solve.
        """
        key = self._start_key(t_start)
        if key not in self._boundary_cache:
            return False
        cached = self._boundary_cache[key]
        if cached is None:
            return False
        _avg, p_star = cached
        stacked = self._stacked_for(t_start)
        slacks = (self.platform.t_max - stacked.temperatures(p_star)).ravel()
        if slacks.size != state.thermal_rows:
            return False
        state.mask[: state.thermal_rows] |= slacks < self.prune_slack_margin
        state.thermal_seeded = True
        return True

    def _plausible_optimum(self, x: np.ndarray, f_target: float) -> bool:
        """Cheap necessary optimality condition for warm-path results.

        Power strictly increases with frequency (Eq. 2), so at any true
        optimum with ``f_target > 0`` the average-frequency constraint is
        (essentially) active.  A claimed optimum serving well above the
        requirement is a stalled solve that parked at its start point —
        seen when a warm start hugs an un-liftable constraint wall.  The
        check can only reject spuriously in exotic gradient-dominated
        trade-offs, in which case the caller's cold re-solve returns the
        same (correct) point, just slower.
        """
        if f_target <= 0:
            return True
        n = self.platform.n_cores
        p = np.clip(x[:n], 0.0, self.platform.power.p_max)
        weight = self.platform.f_max / np.sqrt(self.platform.power.p_max)
        average = float(weight * np.sqrt(p).sum()) / n
        return average <= f_target * (1.0 + 1e-6)

    @staticmethod
    def _nonlinear_violation(blocks: list, x: np.ndarray) -> float:
        """Worst residual of the non-linear-inequality blocks (box, sqrt)."""
        worst = -np.inf
        for block in blocks:
            if isinstance(block, LinearInequality):
                continue
            worst = max(worst, float(np.max(block.residuals(x))))
        return worst

    def _solve_pruned(
        self,
        t_start: float | np.ndarray,
        objective: LinearObjective,
        blocks: list,
        compiled: CompiledConstraints,
        warm: np.ndarray,
        warm_violation: float,
        hint: float | None,
        structure: bool = False,
    ):
        """Pruned-stack pre-solve plus full-stack polish (or None).

        Soundness: the pruned program is a relaxation, so its optimum is
        checked against the *full* stack.  A violated thermal row grows
        the active set and sends the cell down the exact full-stack path;
        a violated (structurally dropped) gradient step row is repaired in
        closed form by lifting ``t_grad``, which restores slack on every
        gradient row and nothing else.  Exactness: the accepted
        pre-solution is only a *starting point* — it is polished on the
        full stack at the cold schedule's final barrier weight, so the
        returned point is the same analytic center a cold solve terminates
        at (agreement to Newton tolerance, not merely the duality-gap
        bound).
        """
        state = self._prune_state_for(compiled, blocks)
        if not state.thermal_seeded and not self._seed_thermal_from_boundary(
            state, t_start
        ):
            return None
        pruned = compiled.prune_linear_rows(state.mask)
        start, stop = state.kept_gradient_span()
        if stop > start:
            # `prune_linear_rows` copied b, so this tightening is local.
            # It must happen *before* the structure is attached below:
            # `with_structure` snapshots the partitioned RHS.
            pruned.b[start:stop] -= GRADIENT_PRUNE_TIGHTEN
        if structure:
            fold_only = self._pruned_structure_for(
                state, compiled, blocks, pruned
            )
            if fold_only is not None:
                # The fold is exact algebra, so the whole pre-solve may run
                # on it (no hand-off check needed); the full-stack polish
                # below restores cold agreement either way.
                pruned = pruned.with_structure(fold_only)
        pruned_violation = warm_violation
        if stop > start:
            # The full-stack `warm_violation` no longer bounds the
            # tightened stack's violation: a warm start whose t_grad lift
            # was capped can sit within the tightening band and would
            # crash Newton if claimed strictly feasible.
            pruned_violation = pruned.max_violation(warm)
            if pruned_violation >= -self._warm_options.feasibility_margin:
                return None
        pruned_blocks = [LinearInequality(pruned.a, pruned.b)] + [
            block
            for block in blocks
            if not isinstance(block, LinearInequality)
        ]
        pre = solve_barrier(
            objective, pruned_blocks, warm, self._warm_options,
            compiled=pruned,
            initial_violation=pruned_violation,
            t_start_hint=hint,
        )
        if not pre.ok:
            return None
        x_start = self._accept_pruned_solution(
            state, compiled, blocks, pre.x
        )
        if x_start is None:
            return None
        polish = solve_barrier(
            objective, blocks, x_start, self._warm_options,
            compiled=compiled,
            initial_violation=compiled.max_violation(x_start),
            t_start_hint=final_stage_weight(
                total_constraints(blocks), self._warm_options
            ),
        )
        if not polish.ok:
            return None
        polish.iterations += pre.iterations
        return polish

    def _accept_pruned_solution(
        self,
        state: _PruneState,
        compiled: CompiledConstraints,
        blocks: list,
        x: np.ndarray,
    ) -> np.ndarray | None:
        """Validate a pruned optimum against the full stack; repair or bail.

        Returns a strictly feasible polish start (possibly with ``t_grad``
        lifted over a dropped gradient step's violation), or None when the
        cell must fall back to the exact full-stack solve.
        """
        margin = self._warm_options.feasibility_margin
        slacks = compiled.linear_slacks(x)
        m_th = state.thermal_rows
        thermal_violation = (
            float(-slacks[:m_th].min()) if m_th else -np.inf
        )
        other_violation = self._nonlinear_violation(blocks, x)
        if max(thermal_violation, other_violation) >= -margin:
            self._note_active_rows(state, compiled, x)
            return None
        gradient_violation = (
            float(-slacks[m_th:].min()) if slacks.size > m_th else -np.inf
        )
        if gradient_violation < -margin:
            return x
        n = self.platform.n_cores
        if len(x) != n + 1:
            return None
        cap = (
            self.t_grad_cap if self.t_grad_cap is not None else T_GRAD_CEILING
        )
        lifted = x.copy()
        lifted[n] += gradient_violation + 1e-9
        if lifted[n] >= cap:
            return None
        if compiled.max_violation(lifted) >= -margin:
            return None
        return lifted

    def _note_active_rows(
        self,
        state: _PruneState,
        compiled: CompiledConstraints,
        x: np.ndarray,
    ) -> None:
        """Fold thermal rows near-active at `x` into the active set."""
        if state.thermal_rows:
            slacks = compiled.linear_slacks(x)[: state.thermal_rows]
            state.mask[: state.thermal_rows] |= (
                slacks < self.prune_slack_margin
            )
        state.thermal_seeded = True

    # -- batched multi-cell solves ----------------------------------------------

    def solve_batch(
        self,
        t_starts: list[float],
        f_target: float,
        warm_from: list[FrequencyAssignment | None],
        *,
        prune: bool = False,
        warm_schedule: bool = False,
        structure: bool = False,
    ) -> list[FrequencyAssignment | None]:
        """Solve several same-column design points against one shared stack.

        The batched counterpart of :meth:`solve` for the table sweep's
        column walk: all cells share the compiled constraint matrix and
        the sqrt target, differing only in right-hand sides, so their
        barriers are evaluated together through
        `repro.solver.compiled.BatchedCompiledConstraints` (one set of
        matrix products per Newton iteration for the whole batch).

        Cells the batch cannot serve — no strictly feasible warm start,
        a failed pruned pre-solve, a stalled stage — come back as ``None``
        and must be re-solved serially by the caller; results are
        otherwise identical to per-cell :meth:`solve` calls (the batch
        runs the same schedule, tolerances and polish).

        Args:
            t_starts: per-cell starting temperatures (scalars).
            f_target: the shared frequency target (Hz).
            warm_from: per-cell neighboring assignments supplying warm
                starts (None or infeasible entries fall back to serial).
            prune: per-cell sparse pruning, as in :meth:`solve`.
            warm_schedule: shared increasing-``t_initial`` schedule (the
                most conservative of the per-cell estimates).
            structure: structure-exploiting pre-final stages, as in
                :meth:`solve`.

        Returns:
            Per-cell :class:`FrequencyAssignment` or ``None``, in order.
        """
        batch = len(t_starts)
        if len(warm_from) != batch:
            raise SolverError("warm_from must match t_starts in length")
        results: list[FrequencyAssignment | None] = [None] * batch
        if (
            self.mode != "variable"
            or self.backend != "barrier"
            or not self.accelerated
            or batch < 2
        ):
            return results
        self._check_target(f_target)
        n = self.platform.n_cores
        opts = self._warm_options

        cells = []
        for t_start in t_starts:
            blocks, n_vars = self._variable_blocks(float(t_start), f_target)
            cells.append((blocks, self._compiled_for(blocks, n_vars)))
        n_vars = cells[0][1].n_vars
        with_grad = n_vars == n + 1
        c = np.ones(n_vars)
        if with_grad:
            c[n] = self.gradient_weight if self.minimize_gradient else 0.0

        try:
            batched = BatchedCompiledConstraints.from_cells(
                [compiled for _blocks, compiled in cells]
            )
        except SolverError:
            return results
        st = (
            self._structure_for(cells[0][1], cells[0][0])
            if structure
            else None
        )

        live = []
        columns = []
        comfort = []
        for j, assignment in enumerate(warm_from):
            if (
                assignment is None
                or not assignment.feasible
                or assignment.solver_x is None
            ):
                continue
            warm = np.asarray(assignment.solver_x, dtype=float)
            if warm.shape != (n_vars,):
                continue
            prepared = self._prepare_warm(
                cells[j][0], cells[j][1], warm, n_vars, f_target
            )
            if prepared is None:
                continue
            live.append(j)
            columns.append(prepared[0])
            comfort.append(prepared[1])
        if len(live) < 2:
            return results
        live = np.asarray(live, dtype=int)
        x = np.column_stack(columns)

        hint = None
        if warm_schedule:
            hints = [
                self._warm_stage_hint(
                    float(t_starts[j]), f_target, warm_from[j],
                    cells[j][0], cells[j][1], x[:, k],
                )
                if comfort[k] < -WARM_HINT_MARGIN
                else None
                for k, j in enumerate(live)
            ]
            if all(h is not None for h in hints):
                hint = min(hints)

        solved: list = []
        pre_iterations = np.zeros(live.size, dtype=int)
        state = (
            self._prune_state_for(cells[0][1], cells[0][0]) if prune else None
        )
        if state is not None and not state.thermal_seeded:
            for t_start in t_starts:
                self._seed_thermal_from_boundary(state, float(t_start))
        try:
            if state is not None and state.thermal_seeded:
                pruned = batched.prune_linear_rows(state.mask).select(live)
                start, stop = state.kept_gradient_span()
                if stop > start:
                    # Row-mask then column indexing both copied b.  Tighten
                    # before attaching the structure: `with_structure`
                    # snapshots the partitioned RHS.
                    pruned.b[start:stop, :] -= GRADIENT_PRUNE_TIGHTEN
                if st is not None:
                    fold_only = self._pruned_structure_for(
                        state, cells[0][1], cells[0][0], pruned
                    )
                    if fold_only is not None:
                        pruned = pruned.with_structure(fold_only)
                # A column whose capped t_grad lift left it inside the
                # tightening band would abort the whole batched solve;
                # filter it to the serial fallback and keep the rest.
                interior = (
                    pruned.max_violation(x, np.arange(live.size))
                    < -opts.feasibility_margin
                )
                if not bool(interior.all()):
                    live = live[interior]
                    x = x[:, interior]
                    if live.size == 0:
                        return results
                    pruned = pruned.select(np.nonzero(interior)[0])
                pre = solve_barrier_batch(
                    c, pruned, x, opts, t_start_hint=hint
                )
                keep: list[int] = []
                columns = []
                kept_iterations = []
                for k, result in enumerate(pre):
                    j = int(live[k])
                    start = (
                        self._accept_pruned_solution(
                            state, cells[j][1], cells[j][0], result.x
                        )
                        if result.ok
                        else None
                    )
                    if start is None:
                        # Dropped rows bind for this cell: the serial
                        # fallback takes it (the active set has grown).
                        continue
                    keep.append(j)
                    columns.append(start)
                    kept_iterations.append(result.iterations)
                if not keep:
                    return results
                live = np.asarray(keep, dtype=int)
                x = np.column_stack(columns)
                pre_iterations = np.asarray(kept_iterations, dtype=int)
                hint = final_stage_weight(batched.count(), opts)
            final = batched.select(live)
            solved = solve_barrier_batch(
                c, final, x, opts, t_start_hint=hint,
                stage_batched=(
                    final.with_structure(st) if st is not None else None
                ),
            )
        except SolverError:
            return results

        for k, (j, result) in enumerate(zip(live, solved)):
            if not result.ok or not self._plausible_optimum(
                result.x, f_target
            ):
                continue
            result.iterations += int(pre_iterations[k])
            if state is not None:
                self._note_active_rows(state, cells[j][1], result.x)
            results[j] = self._assignment_from_result(
                float(t_starts[j]), f_target, result
            )
        return results

    # -- wavefront row solves ----------------------------------------------------

    def solve_wave(
        self,
        t_start: float,
        f_targets: list[float],
        warm_from: list[FrequencyAssignment | None],
        *,
        prune: bool = False,
        warm_schedule: bool = False,
        structure: bool = False,
    ) -> list[FrequencyAssignment | None]:
        """Solve one temperature row's cells in a few large lockstep batches.

        The wavefront counterpart of :meth:`solve_batch`: where that
        method batches *same-frequency* cells across temperatures, this
        one batches a whole temperature *row* (one ``t_start``, many
        ``f_target`` columns) — the batched stack supports per-cell sqrt
        targets, so the entire row advances through each barrier stage in
        lockstep, amortizing per-stage dispatch over a batch the size of
        the frequency grid instead of the (much shorter) temperature
        grid.

        Cells split into two lockstep groups (schedules are shared within
        a batch, so warm and cold cells cannot ride together):

        * **warm** — cells whose hotter-row neighbor supplies a strictly
          feasible start (via :meth:`_prepare_warm`); solved on the warm
          schedule, optionally through the pruned pre-solve + polish.
        * **cold** — the rest, typically the hottest row of a sweep;
          boundary-checked against the row's feasibility boundary (cells
          beyond it are returned infeasible immediately, matching the
          serial path), then solved from blended interior starts on the
          full cold schedule.

        Cells the batches cannot serve come back ``None`` for the
        caller's serial fallback; results are otherwise the same solves
        :meth:`solve` performs, sharing schedules, tolerances, pruning
        and polish.

        Args:
            t_start: the row's starting temperature (scalar).
            f_targets: per-cell frequency targets (Hz); ``0`` cells fall
                back to serial (their stack has no sqrt block, so they
                cannot share the batch).
            warm_from: per-cell hotter-row assignments (None entries join
                the cold group).
            prune: sparse pruning for the warm group, as in :meth:`solve`.
            warm_schedule: accelerated stage hint for the warm group (the
                most conservative of the per-cell estimates).
            structure: structure-exploiting pre-final stages, as in
                :meth:`solve`.

        Returns:
            Per-cell :class:`FrequencyAssignment` or ``None``, in order.
        """
        batch = len(f_targets)
        if len(warm_from) != batch:
            raise SolverError("warm_from must match f_targets in length")
        results: list[FrequencyAssignment | None] = [None] * batch
        if (
            self.mode != "variable"
            or self.backend != "barrier"
            or not self.accelerated
            or batch == 0
        ):
            return results
        n = self.platform.n_cores

        cells: list[tuple[list, CompiledConstraints] | None] = []
        usable: list[int] = []
        for j, f_target in enumerate(f_targets):
            self._check_target(float(f_target))
            if f_target <= 0:
                cells.append(None)
                continue
            blocks, n_vars = self._variable_blocks(
                float(t_start), float(f_target)
            )
            compiled = self._compiled_for(blocks, n_vars)
            if compiled is None:
                cells.append(None)
                continue
            cells.append((blocks, compiled))
            usable.append(j)
        if not usable:
            return results
        first = cells[usable[0]]
        assert first is not None
        n_vars = first[1].n_vars
        with_grad = n_vars == n + 1
        c = np.ones(n_vars)
        if with_grad:
            c[n] = self.gradient_weight if self.minimize_gradient else 0.0
        st = self._structure_for(first[1], first[0]) if structure else None

        warm_js: list[int] = []
        warm_cols: list[np.ndarray] = []
        comfort: list[float] = []
        cold_js: list[int] = []
        for j in usable:
            assignment = warm_from[j]
            prepared = None
            if (
                assignment is not None
                and assignment.feasible
                and assignment.solver_x is not None
            ):
                warm = np.asarray(assignment.solver_x, dtype=float)
                if warm.shape == (n_vars,):
                    prepared = self._prepare_warm(
                        cells[j][0], cells[j][1], warm, n_vars,
                        float(f_targets[j]),
                    )
            if prepared is not None:
                warm_js.append(j)
                warm_cols.append(prepared[0])
                comfort.append(prepared[1])
            else:
                cold_js.append(j)

        # Cold group: the row's feasibility boundary classifies infeasible
        # cells outright (exactly as the serial cold path would) and seeds
        # the interior starts for the rest.
        cold_live: list[int] = []
        cold_cols: list[np.ndarray] = []
        if cold_js:
            boundary = self._max_sqrt_solve(float(t_start))
            for j in cold_js:
                f_target = float(f_targets[j])
                if boundary is None:
                    results[j] = self._infeasible(t_start, f_target)
                    continue
                boundary_avg, p_star = boundary
                if f_target > boundary_avg * (1 - 1e-9):
                    results[j] = self._infeasible(t_start, f_target)
                    continue
                start = self._interior_start(
                    float(t_start), f_target, p_star, n * boundary_avg
                )
                if start is None:
                    results[j] = self._infeasible(t_start, f_target)
                    continue
                cold_live.append(j)
                cold_cols.append(start)

        state = self._prune_state_for(first[1], first[0]) if prune else None
        if state is not None and not state.thermal_seeded:
            self._seed_thermal_from_boundary(state, float(t_start))

        # Cold cascade: a full cold schedule per cell is the dominant cost
        # of a wavefront row (the hottest row is all-cold).  The serial
        # sweep pays it only once per row — every other cell warm-starts
        # from its higher-frequency neighbor, whose optimum is feasible
        # for any lower target.  Reproduce that here: solve the row's
        # highest-frequency cold cell alone as the anchor, then solve
        # every other cold cell whose warm start from the anchor prepares
        # cleanly as one lockstep "cascade" group.  Cascade cells ride
        # separately from the hotter-row warm group below: their gap
        # estimates are far coarser (the anchor optimizes a different
        # frequency target), and one conservative hint in a lockstep batch
        # drags every cell down to its schedule.
        casc_js: list[int] = []
        casc_cols: list[np.ndarray] = []
        casc_comfort: list[float] = []
        anchor: FrequencyAssignment | None = None
        if len(cold_live) > 1:
            lead_pos = max(
                range(len(cold_live)),
                key=lambda k: float(f_targets[cold_live[k]]),
            )
            lead = cold_live.pop(lead_pos)
            lead_col = cold_cols.pop(lead_pos)
            self._solve_wave_group(
                results, cells, c, np.asarray([lead], dtype=int),
                [lead_col], f_targets, t_start, self.barrier_options,
                None, st, None,
            )
            anchor = results[lead]
            if (
                anchor is not None
                and anchor.feasible
                and anchor.solver_x is not None
            ):
                anchor_x = np.asarray(anchor.solver_x, dtype=float)
                still_live: list[int] = []
                still_cols: list[np.ndarray] = []
                for j, col in zip(cold_live, cold_cols):
                    prepared = self._prepare_warm(
                        cells[j][0], cells[j][1], anchor_x, n_vars,
                        float(f_targets[j]),
                    )
                    if prepared is not None:
                        casc_js.append(j)
                        casc_cols.append(prepared[0])
                        casc_comfort.append(prepared[1])
                    else:
                        still_live.append(j)
                        still_cols.append(col)
                cold_live, cold_cols = still_live, still_cols

        # The remaining cold group mirrors the serial cold path: full
        # schedule, no pruning (cold solves never prune serially either),
        # accelerated by the analytic duality-gap bound.
        self._solve_wave_group(
            results, cells, c, np.asarray(cold_live, dtype=int), cold_cols,
            f_targets, t_start, self.barrier_options, None, st, None,
        )

        opts = self._warm_options
        if casc_js:
            casc_hint = None
            if warm_schedule:
                hints = [
                    self._warm_stage_hint(
                        float(t_start), float(f_targets[j]), anchor,
                        cells[j][0], cells[j][1], casc_cols[k],
                    )
                    if casc_comfort[k] < -WARM_HINT_MARGIN
                    else None
                    for k, j in enumerate(casc_js)
                ]
                if all(h is not None for h in hints):
                    casc_hint = min(hints)
            self._solve_wave_group(
                results, cells, c, np.asarray(casc_js, dtype=int),
                casc_cols, f_targets, t_start, opts, casc_hint, st, state,
            )

        hint = None
        if warm_schedule and warm_js:
            hints = [
                self._warm_stage_hint(
                    float(t_start), float(f_targets[j]), warm_from[j],
                    cells[j][0], cells[j][1], warm_cols[k],
                )
                if comfort[k] < -WARM_HINT_MARGIN
                else None
                for k, j in enumerate(warm_js)
            ]
            if all(h is not None for h in hints):
                hint = min(hints)
        self._solve_wave_group(
            results, cells, c, np.asarray(warm_js, dtype=int), warm_cols,
            f_targets, t_start, opts, hint, st, state,
        )
        return results

    def _solve_wave_group(
        self,
        results: list,
        cells: list,
        c: np.ndarray,
        live: np.ndarray,
        columns: list[np.ndarray],
        f_targets: list[float],
        t_start: float,
        opts: BarrierOptions,
        hint: float | None,
        st: CompiledStructure | None,
        state: _PruneState | None,
    ) -> None:
        """Solve one wavefront group in lockstep, recording successes.

        Cells that fail anywhere (batch construction, interior filter,
        pruned acceptance, a stalled stage, implausible optimum) simply
        stay ``None`` in `results` for the caller's serial fallback.
        """
        if live.size == 0:
            return
        try:
            batched = BatchedCompiledConstraints.from_cells(
                [cells[int(j)][1] for j in live]
            )
        except SolverError:
            return
        x = np.column_stack(columns)
        pos = np.arange(live.size)
        pre_iterations = np.zeros(live.size, dtype=int)
        try:
            if state is not None and state.thermal_seeded:
                pruned = batched.prune_linear_rows(state.mask)
                g_start, g_stop = state.kept_gradient_span()
                if g_stop > g_start:
                    # Tighten before attaching the structure:
                    # `with_structure` snapshots the partitioned RHS.
                    pruned.b[g_start:g_stop, :] -= GRADIENT_PRUNE_TIGHTEN
                if st is not None:
                    j0 = int(live[0])
                    fold_only = self._pruned_structure_for(
                        state, cells[j0][1], cells[j0][0], pruned
                    )
                    if fold_only is not None:
                        pruned = pruned.with_structure(fold_only)
                interior = (
                    pruned.max_violation(x, np.arange(pos.size))
                    < -opts.feasibility_margin
                )
                if not bool(interior.all()):
                    pos = pos[interior]
                    x = x[:, interior]
                    if pos.size == 0:
                        return
                    pruned = pruned.select(np.nonzero(interior)[0])
                pre = solve_barrier_batch(
                    c, pruned, x, opts, t_start_hint=hint
                )
                keep: list[int] = []
                polish_cols: list[np.ndarray] = []
                kept_iterations: list[int] = []
                for k, result in enumerate(pre):
                    j = int(live[int(pos[k])])
                    polish_start = (
                        self._accept_pruned_solution(
                            state, cells[j][1], cells[j][0], result.x
                        )
                        if result.ok
                        else None
                    )
                    if polish_start is None:
                        continue
                    keep.append(int(pos[k]))
                    polish_cols.append(polish_start)
                    kept_iterations.append(result.iterations)
                if not keep:
                    return
                pos = np.asarray(keep, dtype=int)
                x = np.column_stack(polish_cols)
                pre_iterations = np.asarray(kept_iterations, dtype=int)
                hint = final_stage_weight(batched.count(), opts)
            final = batched if pos.size == live.size else batched.select(pos)
            solved = solve_barrier_batch(
                c, final, x, opts, t_start_hint=hint,
                stage_batched=(
                    final.with_structure(st) if st is not None else None
                ),
            )
        except SolverError:
            return
        for k, (p, result) in enumerate(zip(pos, solved)):
            j = int(live[int(p)])
            f_target = float(f_targets[j])
            if not result.ok or not self._plausible_optimum(
                result.x, f_target
            ):
                continue
            result.iterations += int(pre_iterations[k])
            if state is not None:
                self._note_active_rows(state, cells[j][1], result.x)
            results[j] = self._assignment_from_result(
                float(t_start), f_target, result
            )

    # -- helpers ---------------------------------------------------------------

    def _check_target(self, f_target: float) -> None:
        if not 0 <= f_target <= self.platform.f_max * (1 + 1e-9):
            raise SolverError(
                f"f_target must lie in [0, f_max={self.platform.f_max:g}]"
            )

    def _scalar_start(self, t_start: float | np.ndarray) -> float:
        if np.isscalar(t_start):
            return float(t_start)
        return float(np.max(np.asarray(t_start, dtype=float)))

    def _infeasible(
        self,
        t_start: float | np.ndarray,
        f_target: float,
        status: SolveStatus = SolveStatus.INFEASIBLE,
    ) -> FrequencyAssignment:
        n = self.platform.n_cores
        return FrequencyAssignment(
            feasible=False,
            frequencies=np.zeros(n),
            core_power=np.zeros(n),
            predicted_peak=np.inf,
            predicted_gradient=np.inf,
            objective=np.inf,
            t_start=self._scalar_start(t_start),
            f_target=f_target,
            status=status,
        )
