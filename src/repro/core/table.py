"""Phase-1 frequency table (paper Figure 4) and its run-time lookup.

Phase 1 sweeps a grid of (starting temperature, target average frequency)
design points, solving the Pro-Temp program at each; the results are stored
in a :class:`FrequencyTable`.  At run time (paper section 3.3) the thermal
management unit:

1. measures the maximum core temperature and rounds it **up** to the next
   grid row (safe by trajectory monotonicity — see
   `repro.thermal.model.ThermalModel.is_monotone`).  A measurement within
   :data:`GRID_SNAP_TOLERANCE` Celsius *above* a grid row is treated as
   sitting on that row (sensor/float noise must not force the next-hotter
   row's more conservative cell);
2. rounds the required average frequency **up** to the next grid column
   (serving at least the demanded performance), with the same snap rule
   applied *relatively* (``GRID_SNAP_TOLERANCE * max(1, |f|)``, since
   frequencies live on a ~1e9 Hz scale where an absolute 1e-9 would never
   trigger).  A demand above the top column is served *at* the top column
   — less than demanded — and the result carries ``demand_clamped=True``
   so the caller can see the shortfall;
3. if that cell is infeasible, walks **down** the frequency columns until a
   feasible cell is found ("the unit chooses the next lower frequency point
   in the table that can support the temperature constraints");
4. if no column is feasible — or the temperature exceeds the top grid row
   by more than the snap tolerance — the cores are shut down for the
   window (zero frequency), the maximally safe fallback.

**Sweep strategies.**  :func:`build_frequency_table` drives the sweep
through an explicit :class:`SweepStrategy` — row order, warm-start policy,
constraint pruning and batching are independent switches rather than
interleaved flags:

* *within-row warm starts* (``warm_start``) — each row is walked from the
  highest frequency column downward and every cell warm-starts from its
  feasible right-neighbor's raw solver vector.  Sound because lowering
  ``f_target`` only loosens the sqrt average-frequency constraint, so the
  neighbor's (strictly interior) optimum stays strictly feasible and both
  phase I and the per-cell boundary pre-solve are skipped;
* *cross-row warm starts* (``cross_row_warm_start``, requires
  ``row_order="hot-first"``) — rows are walked hottest first and a row's
  first feasible cell warm-starts from the hotter row's same-column
  optimum.  Thermal monotonicity makes that start strictly feasible for
  every temperature row (a colder start lowers every offset); only the
  pairwise-gradient offsets can move the other way, which the optimizer
  repairs by lifting the ``t_grad`` component (see
  `repro.core.protemp.ProTempOptimizer.solve`);
* *sparse constraint pruning* (``prune_constraints``) — cells solve
  against only the linear rows seen near-active at previous optima (most
  thermal step rows never are), then the full stack re-checks the result:
  any violation grows the active set and falls back to the exact path,
  and accepted solutions are polished on the full stack at the cold
  schedule's final barrier weight, so agreement with unpruned solves is
  preserved to Newton tolerance;
* *warm barrier schedules* (``warm_schedule``) — warm-started cells begin
  the barrier schedule at ``m / (estimated duality gap)`` instead of
  ``t_initial``, skipping centering stages a near-optimal start does not
  need (the start weight is snapped to the cold schedule's geometric grid
  so both paths finish at the same analytic center);
* *batched multi-cell solves* (``batch_rows``) — the sweep walks columns
  instead of rows and solves every temperature row's cell of a column in
  lockstep against one shared constraint matrix
  (`repro.core.protemp.ProTempOptimizer.solve_batch`);
* *structure-exploiting kernels* (``structure``) — pre-final barrier
  stages evaluate through the antisymmetry-folded gradient rows and the
  rank-compressed thermal tail (`repro.solver.compiled.CompiledStructure`);
  the final stage always runs on the exact stack, so agreement with the
  cold solver is unchanged;
* *wavefront row waves* (``wavefront``) — rows are walked hottest first
  and each row's cells are solved in a handful of large lockstep batches
  (`repro.core.protemp.ProTempOptimizer.solve_wave`), every cell
  warm-started from its hotter-row same-column optimum; this amortizes
  per-stage solver dispatch over batches the size of the frequency grid;
* *row parallelism* (``n_workers``) — temperature rows are independent
  (unless cross-row warm starts tie them together), so whole rows can be
  distributed over a process pool with identical results.

``benchmarks/bench_table_generation.py`` tracks the measured speedups of
each strategy against the cold per-cell baseline.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from bisect import bisect_left
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Literal

import numpy as np

from repro.errors import TableError, did_you_mean
from repro.core.protemp import FrequencyAssignment, ProTempOptimizer
from repro.solver.newton import NewtonOptions
from repro.thermal.constants import PAPER_DFS_PERIOD

#: Measurements this close to a grid line count as *on* it.  Absolute
#: (Celsius) for temperature rows; scaled by ``max(1, |f|)`` for frequency
#: columns (relative on the Hz scale).  See the module docstring.
GRID_SNAP_TOLERANCE = 1e-9


class TableProvenanceWarning(UserWarning):
    """A loaded table's provenance does not match the requesting context.

    Raised as a *warning* (not an error) because a mismatched table is
    still structurally valid — but its frequency vectors were optimized
    for a different platform, so its thermal guarantee does not transfer.
    """


@dataclass(frozen=True)
class TableEntry:
    """One cell of the Phase-1 table.

    Attributes:
        t_start: grid starting temperature (Celsius).
        f_target: grid average-frequency requirement (Hz).
        feasible: whether the convex program was feasible.
        frequencies: per-core frequency vector (Hz); zeros when infeasible.
        total_power: sum of core powers (W).
        predicted_peak: model-predicted peak temperature (Celsius).
        predicted_gradient: model-predicted max core gradient (Celsius).
    """

    t_start: float
    f_target: float
    feasible: bool
    frequencies: tuple[float, ...]
    total_power: float
    predicted_peak: float
    predicted_gradient: float

    @classmethod
    def from_assignment(cls, assignment: FrequencyAssignment) -> "TableEntry":
        """Build a table entry from an optimizer result."""
        return cls(
            t_start=assignment.t_start,
            f_target=assignment.f_target,
            feasible=assignment.feasible,
            frequencies=tuple(float(f) for f in assignment.frequencies),
            total_power=float(np.sum(assignment.core_power)),
            predicted_peak=float(assignment.predicted_peak),
            predicted_gradient=float(assignment.predicted_gradient),
        )


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a run-time table lookup.

    Attributes:
        frequencies: per-core frequencies to apply (Hz); zeros mean a
            shutdown window.
        entry: the table cell used (None for the shutdown fallback).
        satisfied_target: the grid frequency actually served (Hz); may be
            below the requested one when the controller had to back off.
        shutdown: True when the fallback (all cores off) was taken.
        demand_clamped: True when `f_required` exceeded the table's top
            frequency column (beyond the snap tolerance), i.e. the served
            performance is below the demand even before any thermal
            backoff.
    """

    frequencies: np.ndarray
    entry: TableEntry | None
    satisfied_target: float
    shutdown: bool
    demand_clamped: bool = False


@dataclass(frozen=True)
class SweepStrategy:
    """Explicit Phase-1 sweep policy (see the module docstring).

    Attributes:
        row_order: ``"ascending"`` walks temperature rows cold to hot (the
            grid order); ``"hot-first"`` walks hottest first, which
            cross-row warm starts require.
        warm_start: warm-start each cell from its feasible right-neighbor.
        cross_row_warm_start: warm-start a row's leading cells from the
            hotter row's same-column optimum (requires ``hot-first`` order
            and serial rows).
        prune_feasibility: compute each row's feasibility boundary first
            (one convex solve per row) and mark cells above it infeasible
            without running the full optimization.
        prune_constraints: solve against the sparse near-active constraint
            stack with a full-stack re-check and polish.
        warm_schedule: start warm-started barrier solves at an estimated-
            gap weight instead of ``t_initial``.
        batch_rows: walk columns and solve all temperature rows of a
            column in one batched solve (requires warm starts; serial).
        structure: evaluate pre-final barrier stages through the
            structure-exploiting kernels (antisymmetry fold +
            rank-compressed thermal tail).
        wavefront: solve each temperature row's cells in large lockstep
            batches, warm-started from the hotter row (requires
            ``hot-first`` order and warm starts; serial).
        n_workers: when > 1, distribute temperature rows over a process
            pool of this size (incompatible with cross-row warm starts
            and batching, which order cells across rows).
    """

    row_order: Literal["ascending", "hot-first"] = "ascending"
    warm_start: bool = True
    cross_row_warm_start: bool = False
    prune_feasibility: bool = True
    prune_constraints: bool = False
    warm_schedule: bool = False
    batch_rows: bool = False
    structure: bool = False
    wavefront: bool = False
    n_workers: int | None = None

    def __post_init__(self) -> None:
        if self.row_order not in ("ascending", "hot-first"):
            raise TableError(f"unknown row_order {self.row_order!r}")
        parallel = self.n_workers is not None and self.n_workers > 1
        if self.cross_row_warm_start:
            if self.row_order != "hot-first":
                raise TableError(
                    "cross-row warm starts require row_order='hot-first' "
                    "(a hotter row's optimum is only guaranteed feasible "
                    "for colder rows)"
                )
            if parallel or self.batch_rows:
                raise TableError(
                    "cross-row warm starts order rows sequentially and "
                    "cannot combine with n_workers or batch_rows"
                )
        if self.batch_rows:
            if parallel:
                raise TableError("batch_rows cannot combine with n_workers")
            if not self.warm_start:
                raise TableError("batch_rows requires warm_start")
        if self.wavefront:
            if self.row_order != "hot-first":
                raise TableError(
                    "wavefront sweeps require row_order='hot-first' (each "
                    "wave warm-starts from the already-solved hotter row)"
                )
            if parallel or self.batch_rows or self.cross_row_warm_start:
                raise TableError(
                    "wavefront orders rows sequentially and batches within "
                    "them; it cannot combine with n_workers, batch_rows or "
                    "cross_row_warm_start"
                )
            if not self.warm_start:
                raise TableError("wavefront requires warm_start")

    @classmethod
    def _preset_map(cls) -> dict[str, "SweepStrategy"]:
        return {
            "cold": cls(warm_start=False),
            "warm": cls(),
            "gen2": cls(
                row_order="hot-first",
                cross_row_warm_start=True,
                prune_constraints=True,
                warm_schedule=True,
            ),
            "gen2-batched": cls(
                prune_constraints=True,
                warm_schedule=True,
                batch_rows=True,
            ),
            "gen3": cls(
                row_order="hot-first",
                cross_row_warm_start=True,
                prune_constraints=True,
                warm_schedule=True,
                structure=True,
            ),
            "gen3-wavefront": cls(
                row_order="hot-first",
                prune_constraints=True,
                warm_schedule=True,
                structure=True,
                wavefront=True,
            ),
        }

    @classmethod
    def preset(cls, name: str) -> "SweepStrategy":
        """Named strategies: cold, warm, gen2, gen3, gen3-wavefront
        (plus the deprecated gen2-batched)."""
        presets = cls._preset_map()
        if name not in presets:
            raise TableError(
                f"unknown sweep strategy {name!r}; "
                f"choose from {sorted(presets)}"
                + did_you_mean(name, presets)
            )
        if name == "gen2-batched":
            warnings.warn(
                "the 'gen2-batched' preset is deprecated: its column-major "
                "batching is slower than 'gen2', and the 'gen3-wavefront' "
                "row-wave scheduler supersedes it; switch to "
                "'gen3-wavefront' (or 'gen3')",
                DeprecationWarning,
                stacklevel=2,
            )
        return presets[name]

    @property
    def preset_name(self) -> str | None:
        """The preset this strategy equals, or None for a custom one."""
        for name, preset in self._preset_map().items():
            if self == preset:
                return name
        return None


class FrequencyTable:
    """The Phase-1 output: feasible frequency vectors over a design grid.

    Args:
        t_grid: strictly increasing starting temperatures (Celsius).
        f_grid: strictly increasing average-frequency targets (Hz).
        entries: mapping ``(t_index, f_index) -> TableEntry`` covering the
            full grid.
        n_cores: number of cores the vectors apply to.
        metadata: free-form provenance (platform name, horizon, mode...).

    Raises:
        TableError: on malformed grids, missing cells, or any NaN in an
            entry's numeric fields (NaN has no JSON representation and no
            meaningful lookup semantics, so it is rejected at build time).
    """

    def __init__(
        self,
        t_grid: list[float],
        f_grid: list[float],
        entries: dict[tuple[int, int], TableEntry],
        n_cores: int,
        metadata: dict | None = None,
    ) -> None:
        if sorted(t_grid) != list(t_grid) or len(set(t_grid)) != len(t_grid):
            raise TableError("t_grid must be strictly increasing")
        if sorted(f_grid) != list(f_grid) or len(set(f_grid)) != len(f_grid):
            raise TableError("f_grid must be strictly increasing")
        for ti in range(len(t_grid)):
            for fi in range(len(f_grid)):
                if (ti, fi) not in entries:
                    raise TableError(f"missing table entry ({ti}, {fi})")
        for key, entry in entries.items():
            fields = (
                entry.t_start,
                entry.f_target,
                entry.total_power,
                entry.predicted_peak,
                entry.predicted_gradient,
                *entry.frequencies,
            )
            if any(math.isnan(float(v)) for v in fields):
                raise TableError(f"table entry {key} contains NaN")
        self.t_grid = [float(t) for t in t_grid]
        self.f_grid = [float(f) for f in f_grid]
        self.entries = dict(entries)
        self.n_cores = int(n_cores)
        self.metadata = dict(metadata or {})

    # -- lookup -----------------------------------------------------------

    def _row_index(self, t_current: float) -> int | None:
        """Grid row covering `t_current` (rounded up), or None when above
        the top row by more than the snap tolerance."""
        ti = bisect_left(self.t_grid, t_current - GRID_SNAP_TOLERANCE)
        return ti if ti < len(self.t_grid) else None

    def _column_index(self, f_required: float) -> tuple[int, bool]:
        """Grid column covering `f_required` (rounded up) and whether the
        demand had to be clamped to the top column."""
        tolerance = GRID_SNAP_TOLERANCE * max(1.0, abs(f_required))
        fi = bisect_left(self.f_grid, f_required - tolerance)
        if fi >= len(self.f_grid):
            return len(self.f_grid) - 1, True
        return fi, False

    def lookup(self, t_current: float, f_required: float) -> LookupResult:
        """Run-time lookup (see module docstring for the exact semantics).

        Args:
            t_current: current maximum core temperature (Celsius).
            f_required: required average frequency (Hz).

        Returns:
            A :class:`LookupResult`; `shutdown` is True when no feasible
            cell exists for this temperature, `demand_clamped` when the
            demand exceeded the table's top frequency column.
        """
        fi, demand_clamped = self._column_index(f_required)
        ti = self._row_index(t_current)
        if ti is None:
            return self._shutdown(demand_clamped)
        while fi >= 0:
            entry = self.entries[(ti, fi)]
            if entry.feasible:
                return LookupResult(
                    frequencies=np.array(entry.frequencies),
                    entry=entry,
                    satisfied_target=self.f_grid[fi],
                    shutdown=False,
                    demand_clamped=demand_clamped,
                )
            fi -= 1
        return self._shutdown(demand_clamped)

    def _shutdown(self, demand_clamped: bool = False) -> LookupResult:
        return LookupResult(
            frequencies=np.zeros(self.n_cores),
            entry=None,
            satisfied_target=0.0,
            shutdown=True,
            demand_clamped=demand_clamped,
        )

    # -- views ------------------------------------------------------------------

    def max_feasible_target(self, t_start: float) -> float:
        """Highest feasible grid frequency at the row covering `t_start`.

        Returns 0.0 when no column is feasible (shutdown row).
        """
        ti = self._row_index(t_start)
        if ti is None:
            return 0.0
        for fi in reversed(range(len(self.f_grid))):
            if self.entries[(ti, fi)].feasible:
                return self.f_grid[fi]
        return 0.0

    def feasibility_matrix(self) -> np.ndarray:
        """Boolean matrix (len(t_grid), len(f_grid)) of cell feasibility."""
        out = np.zeros((len(self.t_grid), len(self.f_grid)), dtype=bool)
        for (ti, fi), entry in self.entries.items():
            out[ti, fi] = entry.feasible
        return out

    def format(self) -> str:
        """Figure 4-style ASCII rendering."""
        lines = ["Starting temp (C) | target (MHz) -> per-core MHz"]
        for ti, t in enumerate(self.t_grid):
            for fi, f in enumerate(self.f_grid):
                entry = self.entries[(ti, fi)]
                if entry.feasible:
                    freqs = ", ".join(
                        f"{v / 1e6:.0f}" for v in entry.frequencies
                    )
                    lines.append(f"  <= {t:5.1f} | {f / 1e6:6.0f} -> {freqs}")
                else:
                    lines.append(f"  <= {t:5.1f} | {f / 1e6:6.0f} -> infeasible")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data (JSON-compatible) representation."""
        return {
            "t_grid": self.t_grid,
            "f_grid": self.f_grid,
            "n_cores": self.n_cores,
            "metadata": self.metadata,
            "entries": [
                {
                    "ti": ti,
                    "fi": fi,
                    "t_start": e.t_start,
                    "f_target": e.f_target,
                    "feasible": e.feasible,
                    "frequencies": list(e.frequencies),
                    "total_power": e.total_power,
                    "predicted_peak": _json_float(e.predicted_peak),
                    "predicted_gradient": _json_float(e.predicted_gradient),
                }
                for (ti, fi), e in sorted(self.entries.items())
            ],
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, expected_platform_hash: str | None = None
    ) -> "FrequencyTable":
        """Inverse of :meth:`to_dict`.

        Args:
            data: a :meth:`to_dict` payload.
            expected_platform_hash: when given, compared against the
                table's recorded ``platform_spec_hash`` metadata; a
                mismatch (or a table with no recorded hash) emits a
                :class:`TableProvenanceWarning` — the table's thermal
                guarantee only holds for the platform it was built for.
        """
        try:
            entries = {
                (item["ti"], item["fi"]): TableEntry(
                    t_start=item["t_start"],
                    f_target=item["f_target"],
                    feasible=item["feasible"],
                    frequencies=tuple(item["frequencies"]),
                    total_power=item["total_power"],
                    predicted_peak=_parse_float(item["predicted_peak"]),
                    predicted_gradient=_parse_float(
                        item["predicted_gradient"]
                    ),
                )
                for item in data["entries"]
            }
            table = cls(
                t_grid=data["t_grid"],
                f_grid=data["f_grid"],
                entries=entries,
                n_cores=data["n_cores"],
                metadata=data.get("metadata", {}),
            )
        except (KeyError, TypeError) as exc:
            raise TableError(f"malformed table data: {exc}") from exc
        if expected_platform_hash is not None:
            recorded = table.metadata.get("platform_spec_hash")
            if recorded is None:
                warnings.warn(
                    "table has no recorded platform_spec_hash; cannot "
                    f"verify it was built for platform {expected_platform_hash}",
                    TableProvenanceWarning,
                    stacklevel=2,
                )
            elif recorded != expected_platform_hash:
                warnings.warn(
                    f"table was built for platform {recorded}, not "
                    f"{expected_platform_hash}; its thermal guarantee does "
                    "not transfer",
                    TableProvenanceWarning,
                    stacklevel=2,
                )
        return table

    def save_json(self, path: str | Path) -> None:
        """Write the table to a JSON file (strict standard JSON).

        ``allow_nan=False`` guards against the non-standard ``NaN`` /
        ``Infinity`` literals `json.dumps` would otherwise emit: every
        non-finite value must have gone through :func:`_json_float`.
        """
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1, allow_nan=False)
        )

    @classmethod
    def load_json(
        cls, path: str | Path, *, expected_platform_hash: str | None = None
    ) -> "FrequencyTable":
        """Read a table written by :meth:`save_json`.

        Args:
            path: the JSON file.
            expected_platform_hash: optional provenance check — see
                :meth:`from_dict`.
        """
        return cls.from_dict(
            json.loads(Path(path).read_text()),
            expected_platform_hash=expected_platform_hash,
        )


def quantize_table(
    table: FrequencyTable,
    ladder: "FrequencyLadder",
    *,
    platform: "Platform | None" = None,
) -> FrequencyTable:
    """Snap every stored frequency down to a discrete hardware ladder.

    Real DVFS hardware supports a finite set of operating points; the
    continuous optimizer output must be quantized.  Rounding **down** keeps
    the table's guarantee intact: lower frequency means lower power (Eq. 2)
    and, by the thermal model's monotonicity, lower temperatures everywhere.

    The stored metrics are made to match the stored (quantized)
    frequencies rather than copied from the continuous entry:

    * ``total_power`` is recomputed from the quantized vector via Eq. 2 —
      exactly, through the platform's power model when `platform` is
      given, otherwise by the quadratic rescale
      ``total * sum(f_q^2) / sum(f_c^2)`` (equivalent under Eq. 2);
    * with `platform`, ``predicted_peak`` and ``predicted_gradient`` are
      re-simulated over the table's horizon from the quantized powers
      (every step, so the peak is at least as tight as the optimizer's
      subsampled prediction) and the metadata records
      ``"quantized_metrics": "resimulated"``;
    * without `platform`, the continuous peak is carried as a valid
      **upper bound** (all powers only decreased) and the metadata records
      ``"quantized_metrics": "carried_upper_bound"``.  The carried
      gradient is only approximate — per-core flooring can widen pairwise
      differences — so pass `platform` when exact gradients matter.

    Cells whose quantized vector would be all-zero (every frequency below
    the lowest ladder level and the ladder's floor clamps upward) are kept
    feasible only if the *clamped-up* lowest level still satisfies — we do
    not re-solve here, so such cells are conservatively marked infeasible.

    Args:
        table: a Phase-1 table with continuous frequencies.
        ladder: the hardware's discrete frequency levels.
        platform: optional platform for exact metric recomputation.

    Returns:
        A new :class:`FrequencyTable`; grids and metadata are preserved
        (with ``"quantized"`` / ``"quantized_metrics"`` markers added).
    """
    from repro.power.dvfs import FrequencyLadder  # local: avoid cycle

    if not isinstance(ladder, FrequencyLadder):
        raise TableError("quantize_table needs a FrequencyLadder")
    entries: dict[tuple[int, int], TableEntry] = {}
    for key, entry in table.entries.items():
        if not entry.feasible:
            entries[key] = entry
            continue
        quantized = []
        feasible = True
        for f in entry.frequencies:
            if f < ladder.f_min * (1 - 1e-12):
                # floor() would clamp *up* to f_min, which could violate
                # the thermal guarantee; treat as unachievable.
                feasible = False
                break
            quantized.append(ladder.floor(f))
        if not feasible:
            entries[key] = TableEntry(
                t_start=entry.t_start,
                f_target=entry.f_target,
                feasible=False,
                frequencies=tuple(0.0 for _ in entry.frequencies),
                total_power=0.0,
                predicted_peak=np.inf,
                predicted_gradient=np.inf,
            )
            continue
        quantized_f = np.asarray(quantized, dtype=float)
        if platform is not None:
            core_power = np.asarray(
                platform.power.scaling.power(quantized_f), dtype=float
            )
            total_power = float(core_power.sum())
            peak, gradient = _simulated_metrics(
                platform, table, entry.t_start, core_power
            )
        else:
            continuous_f = np.asarray(entry.frequencies, dtype=float)
            # Eq. 2 makes per-core power quadratic in frequency, so the
            # quantized total is the continuous one rescaled by the
            # frequency-square ratio — no power model needed.
            total_power = entry.total_power * float(
                np.sum(quantized_f**2) / np.sum(continuous_f**2)
            )
            peak, gradient = entry.predicted_peak, entry.predicted_gradient
        entries[key] = TableEntry(
            t_start=entry.t_start,
            f_target=entry.f_target,
            feasible=True,
            frequencies=tuple(float(f) for f in quantized_f),
            total_power=total_power,
            predicted_peak=peak,
            predicted_gradient=gradient,
        )
    metadata = dict(table.metadata)
    metadata["quantized"] = [float(level) for level in ladder.levels]
    metadata["quantized_metrics"] = (
        "resimulated" if platform is not None else "carried_upper_bound"
    )
    return FrequencyTable(
        t_grid=table.t_grid,
        f_grid=table.f_grid,
        entries=entries,
        n_cores=table.n_cores,
        metadata=metadata,
    )


def _simulated_metrics(
    platform: "Platform",
    table: FrequencyTable,
    t_start: float,
    core_power: np.ndarray,
) -> tuple[float, float]:
    """Peak and max pairwise core gradient over the table's window."""
    horizon = float(table.metadata.get("horizon_s", PAPER_DFS_PERIOD))
    node_power = platform.power.injection_matrix() @ core_power
    n_steps = max(int(round(horizon / platform.thermal.dt)), 1)
    trajectory = platform.thermal.simulate(t_start, node_power, n_steps)
    steps = trajectory[1:]
    core_temps = steps[:, platform.core_indices]
    gradient = float(
        np.max(core_temps.max(axis=1) - core_temps.min(axis=1))
    )
    return float(steps.max()), gradient


def _json_float(value: float) -> float | str:
    """JSON encoding of a float: finite as-is, ``±inf`` as signed strings.

    NaN is rejected — it has no standard JSON representation
    (``json.dumps`` would emit the non-standard ``NaN`` literal) and the
    table constructor already refuses it, so reaching one here is a bug.
    """
    value = float(value)
    if math.isnan(value):
        raise TableError("NaN is not representable in a frequency table")
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _parse_float(value: float | str) -> float:
    """Inverse of :func:`_json_float` (strict: rejects NaN and unknown
    string encodings instead of letting them leak into lookups)."""
    if isinstance(value, str):
        if value == "inf":
            return np.inf
        if value == "-inf":
            return -np.inf
        raise TableError(f"unrecognized float encoding {value!r}")
    result = float(value)
    if math.isnan(result):
        raise TableError("NaN is not allowed in a frequency table")
    return result


def _infeasible_entry(
    t_start: float, f_target: float, n_cores: int
) -> TableEntry:
    return TableEntry(
        t_start=float(t_start),
        f_target=float(f_target),
        feasible=False,
        frequencies=tuple([0.0] * n_cores),
        total_power=0.0,
        predicted_peak=np.inf,
        predicted_gradient=np.inf,
    )


def _build_row(
    optimizer: ProTempOptimizer,
    t_start: float,
    f_grid: list[float],
    strategy: SweepStrategy,
    hotter_row: dict[int, FrequencyAssignment] | None = None,
    on_cell: Callable[[], None] | None = None,
) -> tuple[dict[int, TableEntry], dict[int, FrequencyAssignment]]:
    """Solve one temperature row, walking frequency columns high to low.

    Walking downward lets each cell warm-start from its right-neighbor's
    optimum; a cell without a feasible right-neighbor (the row's leading
    feasible column) falls back to the hotter row's same-column optimum
    when cross-row warm starts are enabled.  Module-level so rows can be
    dispatched to worker processes; returns the row's assignments alongside
    its entries so the next (colder) row can warm-start from them.
    """
    n_cores = optimizer.platform.n_cores
    row: dict[int, TableEntry] = {}
    assignments: dict[int, FrequencyAssignment] = {}
    boundary = (
        optimizer.max_feasible_target(t_start)
        if strategy.prune_feasibility
        else None
    )
    prev: FrequencyAssignment | None = None
    for fi in reversed(range(len(f_grid))):
        f_target = f_grid[fi]
        if boundary is not None and f_target > boundary:
            row[fi] = _infeasible_entry(t_start, f_target, n_cores)
        else:
            warm = prev if strategy.warm_start else None
            if (
                (warm is None or not warm.feasible)
                and strategy.cross_row_warm_start
                and hotter_row is not None
            ):
                hotter = hotter_row.get(fi)
                if hotter is not None and hotter.feasible:
                    warm = hotter
            assignment = optimizer.solve(
                t_start,
                f_target,
                warm_from=warm,
                prune=strategy.prune_constraints,
                warm_schedule=strategy.warm_schedule,
                structure=strategy.structure,
            )
            row[fi] = TableEntry.from_assignment(assignment)
            assignments[fi] = assignment
            prev = assignment if strategy.warm_start else None
        if on_cell is not None:
            on_cell()
    return row, assignments


def _sweep_batched(
    optimizer: ProTempOptimizer,
    t_grid: list[float],
    f_grid: list[float],
    strategy: SweepStrategy,
    tick: Callable[[], None],
) -> dict[tuple[int, int], TableEntry]:
    """Column-major sweep solving all temperature rows of a column at once.

    Each cell still warm-starts from its own row's right-neighbor; the
    batch simply advances every row's cell of one column in lockstep
    through the shared constraint stack.  Cells the batch cannot serve
    (no feasible warm start, pruning fallback) are re-solved serially, so
    the result is identical to the serial sweep.
    """
    n_cores = optimizer.platform.n_cores
    entries: dict[tuple[int, int], TableEntry] = {}
    boundaries = [
        optimizer.max_feasible_target(t_start)
        if strategy.prune_feasibility
        else None
        for t_start in t_grid
    ]
    previous: dict[int, FrequencyAssignment] = {}
    for fi in reversed(range(len(f_grid))):
        f_target = f_grid[fi]
        active: list[int] = []
        for ti, t_start in enumerate(t_grid):
            if boundaries[ti] is not None and f_target > boundaries[ti]:
                entries[(ti, fi)] = _infeasible_entry(
                    t_start, f_target, n_cores
                )
                tick()
            else:
                active.append(ti)
        if not active:
            continue
        warms = [previous.get(ti) for ti in active]
        batch = optimizer.solve_batch(
            [t_grid[ti] for ti in active],
            f_target,
            warms,
            prune=strategy.prune_constraints,
            warm_schedule=strategy.warm_schedule,
            structure=strategy.structure,
        )
        for ti, warm, assignment in zip(active, warms, batch):
            if assignment is None:
                assignment = optimizer.solve(
                    t_grid[ti],
                    f_target,
                    warm_from=warm,
                    prune=strategy.prune_constraints,
                    warm_schedule=strategy.warm_schedule,
                    structure=strategy.structure,
                )
            entries[(ti, fi)] = TableEntry.from_assignment(assignment)
            if assignment.feasible:
                previous[ti] = assignment
            else:
                previous.pop(ti, None)
            tick()
    return entries


def _sweep_wavefront(
    optimizer: ProTempOptimizer,
    t_grid: list[float],
    f_grid: list[float],
    strategy: SweepStrategy,
    tick: Callable[[], None],
) -> dict[tuple[int, int], TableEntry]:
    """Hot-first row waves, each row a couple of large lockstep solves.

    Rows are walked hottest first; each wave hands the whole row — every
    frequency column past the feasibility boundary — to
    :meth:`~repro.core.protemp.ProTempOptimizer.solve_wave`, with each
    cell warm-started from the hotter row's same-column optimum (the
    hottest row runs as one cold lockstep batch).  Cells the wave cannot
    serve are re-solved serially, preferring the row's right-neighbor and
    falling back to the hotter-row start, so the result matches the
    serial sweeps to solver tolerance.
    """
    n_cores = optimizer.platform.n_cores
    entries: dict[tuple[int, int], TableEntry] = {}
    hotter: dict[int, FrequencyAssignment] = {}
    for ti in reversed(range(len(t_grid))):
        t_start = t_grid[ti]
        boundary = (
            optimizer.max_feasible_target(t_start)
            if strategy.prune_feasibility
            else None
        )
        active: list[int] = []
        for fi in reversed(range(len(f_grid))):
            if boundary is not None and f_grid[fi] > boundary:
                entries[(ti, fi)] = _infeasible_entry(
                    t_start, f_grid[fi], n_cores
                )
                tick()
            else:
                active.append(fi)
        assignments: dict[int, FrequencyAssignment] = {}
        if active:
            warms = [hotter.get(fi) for fi in active]
            wave = optimizer.solve_wave(
                t_start,
                [f_grid[fi] for fi in active],
                warms,
                prune=strategy.prune_constraints,
                warm_schedule=strategy.warm_schedule,
                structure=strategy.structure,
            )
            prev: FrequencyAssignment | None = None
            for fi, warm, assignment in zip(active, warms, wave):
                if assignment is None:
                    fallback = (
                        prev if prev is not None and prev.feasible else warm
                    )
                    assignment = optimizer.solve(
                        t_start,
                        f_grid[fi],
                        warm_from=fallback,
                        prune=strategy.prune_constraints,
                        warm_schedule=strategy.warm_schedule,
                        structure=strategy.structure,
                    )
                entries[(ti, fi)] = TableEntry.from_assignment(assignment)
                if assignment.feasible:
                    assignments[fi] = assignment
                prev = assignment
                tick()
        hotter = assignments
    return entries


def build_frequency_table(
    optimizer: ProTempOptimizer,
    t_grid: list[float],
    f_grid: list[float],
    *,
    strategy: SweepStrategy | str | None = None,
    progress: Callable[[int, int], None] | None = None,
    provenance: dict | None = None,
    prune_infeasible: bool | None = None,
    warm_start: bool | None = None,
    n_workers: int | None = None,
) -> FrequencyTable:
    """Run Phase 1: solve every grid point and assemble the table.

    Args:
        optimizer: configured :class:`ProTempOptimizer`.
        t_grid: starting temperatures (Celsius), strictly increasing.
        f_grid: average-frequency targets (Hz), strictly increasing.
        strategy: a :class:`SweepStrategy`, a preset name (``"cold"``,
            ``"warm"``, ``"gen2"``, ``"gen3"``, ``"gen3-wavefront"``, or
            the deprecated ``"gen2-batched"``), or None to build one from
            the legacy keyword flags below.
        progress: optional callback ``(done, total)`` for long sweeps
            (per cell when serial or batched, per completed row when
            parallel).
        provenance: caller-supplied metadata merged into the table's
            metadata — the scenario runner records the platform spec
            hash and a build timestamp here (the build itself never
            reads the clock, keeping sweeps deterministic).
        prune_infeasible: legacy flag (default True) — maps to
            ``SweepStrategy.prune_feasibility``; only valid when
            `strategy` is None.
        warm_start: legacy flag (default True) — maps to
            ``SweepStrategy.warm_start``; only valid when `strategy` is
            None.
        n_workers: legacy flag — maps to ``SweepStrategy.n_workers``;
            only valid when `strategy` is None.

    Returns:
        The assembled :class:`FrequencyTable`.

    Raises:
        TableError: when both `strategy` and a legacy flag are given (the
            flags would be silently ignored otherwise — set the
            corresponding :class:`SweepStrategy` field instead).
    """
    if strategy is None:
        strategy = SweepStrategy(
            prune_feasibility=(
                True if prune_infeasible is None else prune_infeasible
            ),
            warm_start=True if warm_start is None else warm_start,
            n_workers=n_workers,
        )
    else:
        if (
            prune_infeasible is not None
            or warm_start is not None
            or n_workers is not None
        ):
            raise TableError(
                "pass sweep options either via `strategy` or via the "
                "legacy keywords (prune_infeasible / warm_start / "
                "n_workers), not both"
            )
        if isinstance(strategy, str):
            strategy = SweepStrategy.preset(strategy)
    entries: dict[tuple[int, int], TableEntry] = {}
    total = len(t_grid) * len(f_grid)
    done = 0

    def tick() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total)

    workers = strategy.n_workers
    if strategy.wavefront:
        entries = _sweep_wavefront(
            optimizer, list(t_grid), list(f_grid), strategy, tick
        )
    elif strategy.batch_rows:
        entries = _sweep_batched(
            optimizer, list(t_grid), list(f_grid), strategy, tick
        )
    elif workers is not None and workers > 1 and len(t_grid) > 1:
        pool_size = min(workers, len(t_grid), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                pool.submit(
                    _build_row, optimizer, t_start, list(f_grid), strategy
                )
                for t_start in t_grid
            ]
            for ti, future in enumerate(futures):
                row, _assignments = future.result()
                for fi, entry in row.items():
                    entries[(ti, fi)] = entry
                done += len(f_grid)
                if progress is not None:
                    progress(done, total)
    else:
        order = (
            list(reversed(range(len(t_grid))))
            if strategy.row_order == "hot-first"
            else list(range(len(t_grid)))
        )
        hotter: dict[int, FrequencyAssignment] | None = None
        for ti in order:
            row, assignments = _build_row(
                optimizer,
                t_grid[ti],
                list(f_grid),
                strategy,
                hotter_row=hotter if strategy.cross_row_warm_start else None,
                on_cell=tick,
            )
            for fi, entry in row.items():
                entries[(ti, fi)] = entry
            hotter = assignments
    platform = optimizer.platform
    barrier = optimizer.barrier_options
    newton = barrier.newton or NewtonOptions()
    metadata = {
        "platform": platform.name,
        "mode": optimizer.mode,
        "horizon_s": optimizer.response.horizon,
        "t_max": platform.t_max,
        "f_max": platform.f_max,
        "p_max": platform.power.p_max,
        "sweep_strategy": strategy.preset_name or "custom",
        "solver_gap_tol": barrier.gap_tol,
        "solver_newton_tol": newton.tol,
        "step_subsample": optimizer.response.step_subsample,
    }
    if provenance:
        metadata.update(provenance)
    return FrequencyTable(
        t_grid=list(t_grid),
        f_grid=list(f_grid),
        entries=entries,
        n_cores=platform.n_cores,
        metadata=metadata,
    )
