"""Phase-1 frequency table (paper Figure 4) and its run-time lookup.

Phase 1 sweeps a grid of (starting temperature, target average frequency)
design points, solving the Pro-Temp program at each; the results are stored
in a :class:`FrequencyTable`.  At run time (paper section 3.3) the thermal
management unit:

1. measures the maximum core temperature and rounds it **up** to the next
   grid row (safe by trajectory monotonicity — see
   `repro.thermal.model.ThermalModel.is_monotone`);
2. rounds the required average frequency **up** to the next grid column
   (serving at least the demanded performance);
3. if that cell is infeasible, walks **down** the frequency columns until a
   feasible cell is found ("the unit chooses the next lower frequency point
   in the table that can support the temperature constraints");
4. if no column is feasible — or the temperature exceeds the top grid row —
   the cores are shut down for the window (zero frequency), the maximally
   safe fallback.

**Sweep performance.**  :func:`build_frequency_table` walks each
temperature row from the *highest* frequency column downward and
warm-starts every cell from its feasible right-neighbor's raw solver
vector.  This is sound: lowering ``f_target`` only loosens the sqrt
average-frequency constraint while every other constraint is unchanged, so
the neighbor's optimum (strictly interior at a barrier optimum) stays
strictly feasible and phase I plus the per-cell feasibility-boundary
pre-solve are skipped (see `repro.solver.barrier.solve_barrier` and
`repro.core.protemp.ProTempOptimizer`, which additionally shares one
compiled constraint stack across all cells).  Temperature rows are
mutually independent, so ``n_workers > 1`` optionally distributes whole
rows over a process pool; results are identical to the serial sweep.
``benchmarks/bench_table_generation.py`` tracks the measured speedups.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import TableError
from repro.core.protemp import FrequencyAssignment, ProTempOptimizer


@dataclass(frozen=True)
class TableEntry:
    """One cell of the Phase-1 table.

    Attributes:
        t_start: grid starting temperature (Celsius).
        f_target: grid average-frequency requirement (Hz).
        feasible: whether the convex program was feasible.
        frequencies: per-core frequency vector (Hz); zeros when infeasible.
        total_power: sum of core powers (W).
        predicted_peak: model-predicted peak temperature (Celsius).
        predicted_gradient: model-predicted max core gradient (Celsius).
    """

    t_start: float
    f_target: float
    feasible: bool
    frequencies: tuple[float, ...]
    total_power: float
    predicted_peak: float
    predicted_gradient: float

    @classmethod
    def from_assignment(cls, assignment: FrequencyAssignment) -> "TableEntry":
        """Build a table entry from an optimizer result."""
        return cls(
            t_start=assignment.t_start,
            f_target=assignment.f_target,
            feasible=assignment.feasible,
            frequencies=tuple(float(f) for f in assignment.frequencies),
            total_power=float(np.sum(assignment.core_power)),
            predicted_peak=float(assignment.predicted_peak),
            predicted_gradient=float(assignment.predicted_gradient),
        )


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a run-time table lookup.

    Attributes:
        frequencies: per-core frequencies to apply (Hz); zeros mean a
            shutdown window.
        entry: the table cell used (None for the shutdown fallback).
        satisfied_target: the grid frequency actually served (Hz); may be
            below the requested one when the controller had to back off.
        shutdown: True when the fallback (all cores off) was taken.
    """

    frequencies: np.ndarray
    entry: TableEntry | None
    satisfied_target: float
    shutdown: bool


class FrequencyTable:
    """The Phase-1 output: feasible frequency vectors over a design grid.

    Args:
        t_grid: strictly increasing starting temperatures (Celsius).
        f_grid: strictly increasing average-frequency targets (Hz).
        entries: mapping ``(t_index, f_index) -> TableEntry`` covering the
            full grid.
        n_cores: number of cores the vectors apply to.
        metadata: free-form provenance (platform name, horizon, mode...).
    """

    def __init__(
        self,
        t_grid: list[float],
        f_grid: list[float],
        entries: dict[tuple[int, int], TableEntry],
        n_cores: int,
        metadata: dict | None = None,
    ) -> None:
        if sorted(t_grid) != list(t_grid) or len(set(t_grid)) != len(t_grid):
            raise TableError("t_grid must be strictly increasing")
        if sorted(f_grid) != list(f_grid) or len(set(f_grid)) != len(f_grid):
            raise TableError("f_grid must be strictly increasing")
        for ti in range(len(t_grid)):
            for fi in range(len(f_grid)):
                if (ti, fi) not in entries:
                    raise TableError(f"missing table entry ({ti}, {fi})")
        self.t_grid = [float(t) for t in t_grid]
        self.f_grid = [float(f) for f in f_grid]
        self.entries = dict(entries)
        self.n_cores = int(n_cores)
        self.metadata = dict(metadata or {})

    # -- lookup -----------------------------------------------------------

    def lookup(self, t_current: float, f_required: float) -> LookupResult:
        """Run-time lookup (see module docstring for the semantics).

        Args:
            t_current: current maximum core temperature (Celsius).
            f_required: required average frequency (Hz).

        Returns:
            A :class:`LookupResult`; `shutdown` is True when no feasible
            cell exists for this temperature.
        """
        ti = bisect_left(self.t_grid, t_current - 1e-9)
        if ti >= len(self.t_grid):
            return self._shutdown()
        fi = bisect_left(self.f_grid, f_required - 1e-9)
        fi = min(fi, len(self.f_grid) - 1)
        while fi >= 0:
            entry = self.entries[(ti, fi)]
            if entry.feasible:
                return LookupResult(
                    frequencies=np.array(entry.frequencies),
                    entry=entry,
                    satisfied_target=self.f_grid[fi],
                    shutdown=False,
                )
            fi -= 1
        return self._shutdown()

    def _shutdown(self) -> LookupResult:
        return LookupResult(
            frequencies=np.zeros(self.n_cores),
            entry=None,
            satisfied_target=0.0,
            shutdown=True,
        )

    # -- views ------------------------------------------------------------------

    def max_feasible_target(self, t_start: float) -> float:
        """Highest feasible grid frequency at the row covering `t_start`.

        Returns 0.0 when no column is feasible (shutdown row).
        """
        ti = bisect_left(self.t_grid, t_start - 1e-9)
        if ti >= len(self.t_grid):
            return 0.0
        for fi in reversed(range(len(self.f_grid))):
            if self.entries[(ti, fi)].feasible:
                return self.f_grid[fi]
        return 0.0

    def feasibility_matrix(self) -> np.ndarray:
        """Boolean matrix (len(t_grid), len(f_grid)) of cell feasibility."""
        out = np.zeros((len(self.t_grid), len(self.f_grid)), dtype=bool)
        for (ti, fi), entry in self.entries.items():
            out[ti, fi] = entry.feasible
        return out

    def format(self) -> str:
        """Figure 4-style ASCII rendering."""
        lines = ["Starting temp (C) | target (MHz) -> per-core MHz"]
        for ti, t in enumerate(self.t_grid):
            for fi, f in enumerate(self.f_grid):
                entry = self.entries[(ti, fi)]
                if entry.feasible:
                    freqs = ", ".join(
                        f"{v / 1e6:.0f}" for v in entry.frequencies
                    )
                    lines.append(f"  <= {t:5.1f} | {f / 1e6:6.0f} -> {freqs}")
                else:
                    lines.append(f"  <= {t:5.1f} | {f / 1e6:6.0f} -> infeasible")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data (JSON-compatible) representation."""
        return {
            "t_grid": self.t_grid,
            "f_grid": self.f_grid,
            "n_cores": self.n_cores,
            "metadata": self.metadata,
            "entries": [
                {
                    "ti": ti,
                    "fi": fi,
                    "t_start": e.t_start,
                    "f_target": e.f_target,
                    "feasible": e.feasible,
                    "frequencies": list(e.frequencies),
                    "total_power": e.total_power,
                    "predicted_peak": _json_float(e.predicted_peak),
                    "predicted_gradient": _json_float(e.predicted_gradient),
                }
                for (ti, fi), e in sorted(self.entries.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrequencyTable":
        """Inverse of :meth:`to_dict`."""
        try:
            entries = {
                (item["ti"], item["fi"]): TableEntry(
                    t_start=item["t_start"],
                    f_target=item["f_target"],
                    feasible=item["feasible"],
                    frequencies=tuple(item["frequencies"]),
                    total_power=item["total_power"],
                    predicted_peak=_parse_float(item["predicted_peak"]),
                    predicted_gradient=_parse_float(
                        item["predicted_gradient"]
                    ),
                )
                for item in data["entries"]
            }
            return cls(
                t_grid=data["t_grid"],
                f_grid=data["f_grid"],
                entries=entries,
                n_cores=data["n_cores"],
                metadata=data.get("metadata", {}),
            )
        except (KeyError, TypeError) as exc:
            raise TableError(f"malformed table data: {exc}") from exc

    def save_json(self, path: str | Path) -> None:
        """Write the table to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load_json(cls, path: str | Path) -> "FrequencyTable":
        """Read a table written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def quantize_table(
    table: FrequencyTable, ladder: "FrequencyLadder"
) -> FrequencyTable:
    """Snap every stored frequency down to a discrete hardware ladder.

    Real DVFS hardware supports a finite set of operating points; the
    continuous optimizer output must be quantized.  Rounding **down** keeps
    the table's guarantee intact: lower frequency means lower power (Eq. 2)
    and, by the thermal model's monotonicity, lower temperatures everywhere.

    Cells whose quantized vector would be all-zero (every frequency below
    the lowest ladder level and the ladder's floor clamps upward) are kept
    feasible only if the *clamped-up* lowest level still satisfies — we do
    not re-solve here, so such cells are conservatively marked infeasible.

    Args:
        table: a Phase-1 table with continuous frequencies.
        ladder: the hardware's discrete frequency levels.

    Returns:
        A new :class:`FrequencyTable`; grids and metadata are preserved
        (with a ``"quantized"`` marker added).
    """
    from repro.power.dvfs import FrequencyLadder  # local: avoid cycle

    if not isinstance(ladder, FrequencyLadder):
        raise TableError("quantize_table needs a FrequencyLadder")
    entries: dict[tuple[int, int], TableEntry] = {}
    for key, entry in table.entries.items():
        if not entry.feasible:
            entries[key] = entry
            continue
        quantized = []
        feasible = True
        for f in entry.frequencies:
            if f < ladder.f_min * (1 - 1e-12):
                # floor() would clamp *up* to f_min, which could violate
                # the thermal guarantee; treat as unachievable.
                feasible = False
                break
            quantized.append(ladder.floor(f))
        if not feasible:
            entries[key] = TableEntry(
                t_start=entry.t_start,
                f_target=entry.f_target,
                feasible=False,
                frequencies=tuple(0.0 for _ in entry.frequencies),
                total_power=0.0,
                predicted_peak=np.inf,
                predicted_gradient=np.inf,
            )
            continue
        entries[key] = TableEntry(
            t_start=entry.t_start,
            f_target=entry.f_target,
            feasible=True,
            frequencies=tuple(quantized),
            total_power=entry.total_power,
            predicted_peak=entry.predicted_peak,
            predicted_gradient=entry.predicted_gradient,
        )
    metadata = dict(table.metadata)
    metadata["quantized"] = [float(level) for level in ladder.levels]
    return FrequencyTable(
        t_grid=table.t_grid,
        f_grid=table.f_grid,
        entries=entries,
        n_cores=table.n_cores,
        metadata=metadata,
    )


def _json_float(value: float) -> float | str:
    return "inf" if np.isinf(value) else float(value)


def _parse_float(value: float | str) -> float:
    return np.inf if value == "inf" else float(value)


def _infeasible_entry(
    t_start: float, f_target: float, n_cores: int
) -> TableEntry:
    return TableEntry(
        t_start=float(t_start),
        f_target=float(f_target),
        feasible=False,
        frequencies=tuple([0.0] * n_cores),
        total_power=0.0,
        predicted_peak=np.inf,
        predicted_gradient=np.inf,
    )


def _build_row(
    optimizer: ProTempOptimizer,
    t_start: float,
    f_grid: list[float],
    prune_infeasible: bool,
    warm_start: bool,
    on_cell: Callable[[], None] | None = None,
) -> dict[int, TableEntry]:
    """Solve one temperature row, walking frequency columns high to low.

    Walking downward lets each cell warm-start from its right-neighbor's
    optimum: lowering ``f_target`` only loosens the average-frequency
    constraint, so the neighbor's (strictly interior) optimum remains
    strictly feasible and both phase I and the per-cell boundary pre-solve
    are skipped.  Module-level so rows can be dispatched to worker
    processes.
    """
    n_cores = optimizer.platform.n_cores
    row: dict[int, TableEntry] = {}
    boundary = (
        optimizer.max_feasible_target(t_start) if prune_infeasible else None
    )
    prev_x = None
    for fi in reversed(range(len(f_grid))):
        f_target = f_grid[fi]
        if boundary is not None and f_target > boundary:
            row[fi] = _infeasible_entry(t_start, f_target, n_cores)
        else:
            assignment = optimizer.solve(t_start, f_target, x0=prev_x)
            row[fi] = TableEntry.from_assignment(assignment)
            prev_x = (
                assignment.solver_x
                if warm_start and assignment.feasible
                else None
            )
        if on_cell is not None:
            on_cell()
    return row


def build_frequency_table(
    optimizer: ProTempOptimizer,
    t_grid: list[float],
    f_grid: list[float],
    *,
    progress: Callable[[int, int], None] | None = None,
    prune_infeasible: bool = True,
    warm_start: bool = True,
    n_workers: int | None = None,
) -> FrequencyTable:
    """Run Phase 1: solve every grid point and assemble the table.

    Args:
        optimizer: configured :class:`ProTempOptimizer`.
        t_grid: starting temperatures (Celsius), strictly increasing.
        f_grid: average-frequency targets (Hz), strictly increasing.
        progress: optional callback ``(done, total)`` for long sweeps
            (per cell when serial, per completed row when parallel).
        prune_infeasible: compute each row's feasibility boundary first
            (one convex solve) and mark cells above it infeasible without
            running the full optimization.  Sound because feasibility is
            monotone in the frequency target — raising the target only
            tightens Eq. 3 — and it skips exactly the cells whose phase-I
            certification is slowest.
        warm_start: warm-start each cell from its feasible higher-frequency
            neighbor (see :func:`_build_row`); disable to reproduce the
            cold per-cell solve of the paper's Phase-1 cost model.
        n_workers: when > 1, distribute temperature rows over a process
            pool of this size.  Rows are independent, so the result is
            identical to the serial sweep.

    Returns:
        The assembled :class:`FrequencyTable`.
    """
    entries: dict[tuple[int, int], TableEntry] = {}
    total = len(t_grid) * len(f_grid)
    if n_workers is not None and n_workers > 1 and len(t_grid) > 1:
        workers = min(n_workers, len(t_grid), os.cpu_count() or 1)
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _build_row,
                    optimizer,
                    t_start,
                    list(f_grid),
                    prune_infeasible,
                    warm_start,
                )
                for t_start in t_grid
            ]
            for ti, future in enumerate(futures):
                for fi, entry in future.result().items():
                    entries[(ti, fi)] = entry
                done += len(f_grid)
                if progress is not None:
                    progress(done, total)
    else:
        done = 0

        def tick() -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(done, total)

        for ti, t_start in enumerate(t_grid):
            row = _build_row(
                optimizer, t_start, list(f_grid), prune_infeasible,
                warm_start, on_cell=tick,
            )
            for fi, entry in row.items():
                entries[(ti, fi)] = entry
    platform = optimizer.platform
    return FrequencyTable(
        t_grid=list(t_grid),
        f_grid=list(f_grid),
        entries=entries,
        n_cores=platform.n_cores,
        metadata={
            "platform": platform.name,
            "mode": optimizer.mode,
            "horizon_s": optimizer.response.horizon,
            "t_max": platform.t_max,
            "f_max": platform.f_max,
        },
    )
