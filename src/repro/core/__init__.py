"""Pro-Temp core: convex formulation, optimizer, Phase-1 table."""

from repro.core.formulation import StackedConstraints, WindowResponse
from repro.core.protemp import FrequencyAssignment, ProTempOptimizer
from repro.core.schedule import ScheduleOptimizer, ScheduleResult
from repro.core.table import (
    FrequencyTable,
    LookupResult,
    SweepStrategy,
    TableEntry,
    TableProvenanceWarning,
    build_frequency_table,
    quantize_table,
)

__all__ = [
    "FrequencyAssignment",
    "FrequencyTable",
    "LookupResult",
    "ProTempOptimizer",
    "ScheduleOptimizer",
    "ScheduleResult",
    "StackedConstraints",
    "SweepStrategy",
    "TableEntry",
    "TableProvenanceWarning",
    "WindowResponse",
    "build_frequency_table",
    "quantize_table",
]
