"""Affine temperature response over a DFS window (the optimizer's substrate).

With constant per-core power ``p`` over a window of ``m`` thermal steps, the
discrete dynamics ``t_{k+1} = A t_k + B (E p) + c`` unroll to::

    t_k = A^k t_0 + M_k p + v_k,
    M_k = sum_{j<k} A^j B E,    v_k = sum_{j<k} A^j c

where ``E`` is the power-injection matrix mapping core powers to node powers
(including the 30% non-core background — see
`repro.power.model.PlatformPowerModel.injection_matrix`).  Every temperature
at every step is therefore **affine in p**, which is what makes the paper's
Eq. 3 a convex program: all temperature and gradient constraints are linear
in power space, and only the average-frequency requirement is non-linear
(concave, handled by `repro.solver.problem.SqrtSumConstraint`).

:class:`WindowResponse` precomputes ``M_k``, ``v_k`` and the uniform-start
response ``r_k = A^k 1`` once per platform/horizon and then builds the
stacked constraint matrices for any starting temperature in O(size of the
matrices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.platform import Platform
from repro.thermal.constants import PAPER_DFS_PERIOD


@dataclass(frozen=True)
class StackedConstraints:
    """Linear temperature data stacked over selected steps.

    For steps ``k_1 < ... < k_s`` and all nodes::

        temperatures = offset + W p   (rows: step-major, node-minor)

    Attributes:
        w: response matrix, shape (s * n_nodes, n_cores).
        offset: constant part, shape (s * n_nodes,).
        steps: the step indices included.
        n_nodes: number of thermal nodes per step.
    """

    w: np.ndarray
    offset: np.ndarray
    steps: np.ndarray
    n_nodes: int

    def temperatures(self, p: np.ndarray) -> np.ndarray:
        """Evaluate temperatures for core-power vector `p`.

        Returns shape (len(steps), n_nodes).
        """
        flat = self.offset + self.w @ p
        return flat.reshape(len(self.steps), self.n_nodes)


class WindowResponse:
    """Precomputed affine response of a platform over one DFS window.

    Args:
        platform: the platform to model.
        horizon: window length in seconds (default: the paper's 100 ms).
        step_subsample: include every k-th thermal step in the constraint
            set (the final step is always included).  1 reproduces the
            paper's "every time-step" constraints exactly; larger values
            trade a slightly sparser constraint envelope for speed.

    Raises:
        SolverError: if the horizon is not a positive multiple of the
            thermal step.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        horizon: float = PAPER_DFS_PERIOD,
        step_subsample: int = 1,
    ) -> None:
        if horizon <= 0:
            raise SolverError("horizon must be positive")
        if step_subsample < 1:
            raise SolverError("step_subsample must be >= 1")
        m = int(round(horizon / platform.thermal.dt))
        if m < 1 or abs(m * platform.thermal.dt - horizon) > 1e-9:
            raise SolverError(
                f"horizon {horizon:g}s is not a positive multiple of the "
                f"thermal step {platform.thermal.dt:g}s"
            )
        self.platform = platform
        self.horizon = horizon
        self.m = m
        self.step_subsample = step_subsample

        a = platform.thermal.a_matrix
        b = platform.thermal.b_vector
        c = platform.thermal.c_vector
        e = platform.power.injection_matrix()
        be = b[:, None] * e  # B E, shape (n_nodes, n_cores)

        n = platform.thermal.n
        steps = list(range(step_subsample, m + 1, step_subsample))
        if steps[-1] != m:
            steps.append(m)
        self.steps = np.array(steps, dtype=int)

        # Iterate the recursions, capturing selected steps.
        m_k = np.zeros((n, platform.n_cores))
        v_k = np.zeros(n)
        powk = np.eye(n)  # A^k
        keep = set(steps)
        m_list, v_list, powk_list = [], [], []
        for k in range(1, m + 1):
            m_k = a @ m_k + be
            v_k = a @ v_k + c
            powk = a @ powk
            if k in keep:
                m_list.append(m_k.copy())
                v_list.append(v_k.copy())
                powk_list.append(powk.copy())
        self._m_stack = np.array(m_list)  # (s, n, n_cores)
        self._v_stack = np.array(v_list)  # (s, n)
        self._powk_stack = np.array(powk_list)  # (s, n, n)
        self.n_nodes = n

    # -- constraint assembly -------------------------------------------------

    def stacked(self, t_start: float | np.ndarray) -> StackedConstraints:
        """Stacked affine response for a given start temperature.

        Args:
            t_start: scalar (uniform start — the Pro-Temp table case) or a
                full node vector.

        Returns:
            A :class:`StackedConstraints` over the selected steps.
        """
        n = self.n_nodes
        if np.isscalar(t_start):
            t0 = np.full(n, float(t_start))
        else:
            t0 = np.asarray(t_start, dtype=float)
            if t0.shape != (n,):
                raise SolverError(f"t_start must be scalar or shape ({n},)")
        s = len(self.steps)
        offset = (self._powk_stack @ t0 + self._v_stack).reshape(s * n)
        w = self._m_stack.reshape(s * n, -1)
        return StackedConstraints(
            w=w, offset=offset, steps=self.steps, n_nodes=n
        )

    def core_rows(self) -> np.ndarray:
        """Flat row indices (into the stacked system) of core nodes."""
        core = np.asarray(self.platform.core_indices, dtype=int)
        s = len(self.steps)
        return (
            np.arange(s)[:, None] * self.n_nodes + core[None, :]
        ).reshape(-1)

    def gradient_rows(
        self, stacked: StackedConstraints
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pairwise core temperature-difference system (Eq. 4 lhs).

        Returns ``(d, g)`` with rows ``d p + g = t_{k,i} - t_{k,j}`` for all
        ordered core pairs ``i != j`` and all selected steps.  The Eq. 4
        constraint is then ``d p + g <= t_grad``.
        """
        core = np.asarray(self.platform.core_indices, dtype=int)
        s = len(self.steps)
        w3 = stacked.w.reshape(s, self.n_nodes, -1)[:, core, :]
        off3 = stacked.offset.reshape(s, self.n_nodes)[:, core]
        n_cores = len(core)
        # Row order is pair-major (all steps of pair (i, j) contiguous),
        # with pairs enumerated row-major over i != j.
        idx_i, idx_j = np.nonzero(~np.eye(n_cores, dtype=bool))
        d = (
            (w3[:, idx_i, :] - w3[:, idx_j, :])
            .transpose(1, 0, 2)
            .reshape(-1, w3.shape[2])
        )
        g = (off3[:, idx_i] - off3[:, idx_j]).T.reshape(-1)
        return d, g
