"""Multi-window frequency schedules (extension, after reference [24]).

The Pro-Temp table assigns frequencies one DFS window at a time.  When the
controller *knows* the demand profile for the next few windows (e.g. a
decode pipeline with a scheduled burst), it can do better: solve one convex
program over a horizon of ``H`` windows with piecewise-constant per-window
core powers — the formulation of the authors' companion paper, "Temperature-
aware processor frequency assignment for MPSoCs using convex optimization"
(CODES+ISSS 2007, reference [24]).

The program::

    minimize    sum_{w,i} p_{w,i}
    subject to  thermal dynamics across all H windows   (affine in p)
                t <= t_max at every step of every window
                sum_i f_{w,i} >= n * f_target[w]        for each window
                0 <= p_{w,i} <= p_max

remains convex for exactly the same reason as the single-window program:
temperatures are affine in the stacked power vector, and each per-window
frequency requirement is a concave sqrt-sum constraint.

A classic use: *pre-cooling* — when a heavy window is announced, the
optimizer lowers earlier windows' frequencies so the burst window starts
cooler and can legally run faster (see ``examples/schedule_precooling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.formulation import WindowResponse
from repro.errors import SolverError
from repro.platform import Platform
from repro.solver.barrier import BarrierOptions, solve_barrier
from repro.solver.newton import NewtonOptions
from repro.solver.problem import (
    BoxConstraint,
    LinearInequality,
    LinearObjective,
    SqrtSumConstraint,
)
from repro.solver.result import SolveStatus
from repro.solver.scipy_backend import solve_scipy
from repro.thermal.constants import PAPER_DFS_PERIOD

#: Strictly positive floor on per-window core power (W).
POWER_FLOOR = 1e-9


@dataclass(frozen=True)
class ScheduleResult:
    """Optimal multi-window schedule.

    Attributes:
        feasible: whether the demand profile is achievable.
        frequencies: per-window, per-core frequencies (Hz), shape (H, n).
        core_power: per-window core powers (W), shape (H, n).
        window_peaks: model-predicted max temperature per window (Celsius).
        objective: total power objective value.
        status: underlying solver status.
    """

    feasible: bool
    frequencies: np.ndarray
    core_power: np.ndarray
    window_peaks: np.ndarray
    objective: float
    status: SolveStatus

    @property
    def average_frequencies(self) -> np.ndarray:
        """Mean core frequency per window (Hz), shape (H,)."""
        return self.frequencies.mean(axis=1)


class ScheduleOptimizer:
    """Horizon-H frequency-schedule optimizer.

    Args:
        platform: the multi-core platform.
        horizon_windows: number of DFS windows to schedule (H >= 1).
        window: DFS period in seconds.
        step_subsample: thermal-step thinning inside each window.
        backend: ``"barrier"`` or ``"scipy"``.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        horizon_windows: int = 3,
        window: float = PAPER_DFS_PERIOD,
        step_subsample: int = 5,
        backend: str = "barrier",
    ) -> None:
        if horizon_windows < 1:
            raise SolverError("horizon_windows must be >= 1")
        if backend not in ("barrier", "scipy"):
            raise SolverError(f"unknown backend {backend!r}")
        self.platform = platform
        self.h = horizon_windows
        self.backend = backend
        self.response = WindowResponse(
            platform, horizon=window, step_subsample=step_subsample
        )
        self._barrier_options = BarrierOptions(
            gap_tol=1e-6,
            newton=NewtonOptions(tol=1e-9, max_iterations=120),
        )

    def solve(
        self,
        t_start: float | np.ndarray,
        f_targets: np.ndarray,
    ) -> ScheduleResult:
        """Optimal schedule for a known per-window demand profile.

        Args:
            t_start: starting temperature (scalar or node vector).
            f_targets: required average frequency per window (Hz),
                shape (H,).

        Returns:
            A :class:`ScheduleResult` (``feasible=False`` when no schedule
            satisfies the caps and the demands).
        """
        platform = self.platform
        n = platform.n_cores
        h = self.h
        f_targets = np.asarray(f_targets, dtype=float)
        if f_targets.shape != (h,):
            raise SolverError(f"f_targets must have shape ({h},)")
        if np.any(f_targets < 0) or np.any(
            f_targets > platform.f_max * (1 + 1e-9)
        ):
            raise SolverError("f_targets must lie in [0, f_max]")

        rows, offsets = self._stacked_horizon(t_start)
        n_vars = h * n
        p_max = platform.power.p_max
        f_max = platform.f_max

        blocks: list = [
            LinearInequality(rows, platform.t_max - offsets),
            BoxConstraint(
                lower=np.full(n_vars, POWER_FLOOR),
                upper=np.full(n_vars, p_max),
                indices=np.arange(n_vars),
            ),
        ]
        for w in range(h):
            if f_targets[w] > 0:
                blocks.append(
                    SqrtSumConstraint(
                        weights=np.full(n, f_max / np.sqrt(p_max)),
                        indices=np.arange(w * n, (w + 1) * n),
                        target=n * f_targets[w],
                    )
                )

        objective = LinearObjective(c=np.ones(n_vars))
        x0 = self._greedy_interior_start(t_start, f_targets)
        if x0 is None:
            x0 = np.full(n_vars, p_max * 0.25)
        if self.backend == "scipy":
            result = solve_scipy(objective, blocks, x0)
        else:
            result = solve_barrier(
                objective, blocks, x0, self._barrier_options
            )
        if not result.ok:
            return ScheduleResult(
                feasible=False,
                frequencies=np.zeros((h, n)),
                core_power=np.zeros((h, n)),
                window_peaks=np.full(h, np.inf),
                objective=np.inf,
                status=result.status,
            )

        p = np.clip(result.x, 0.0, p_max).reshape(h, n)
        freqs = np.asarray(
            platform.power.scaling.frequency_for_power(p), dtype=float
        )
        temps = (offsets + rows @ result.x).reshape(
            h, len(self.response.steps), self.response.n_nodes
        )
        peaks = temps.max(axis=(1, 2))
        return ScheduleResult(
            feasible=True,
            frequencies=freqs,
            core_power=p,
            window_peaks=peaks,
            objective=result.objective,
            status=result.status,
        )

    def _greedy_interior_start(
        self,
        t_start: float | np.ndarray,
        f_targets: np.ndarray,
    ) -> np.ndarray | None:
        """Construct a strictly feasible schedule window by window.

        For each window in order, solve the *single-window* boundary
        problem from the propagated state (maximize the sqrt-sum under the
        temperature rows — robust; see
        :meth:`repro.core.protemp.ProTempOptimizer._max_sqrt_solve`) and
        blend slightly above the window's requirement, exactly as the
        single-window optimizer seeds itself.  Earlier windows choose
        near-minimal power, which by trajectory monotonicity leaves later
        windows as cool (as feasible) as possible.

        Returns None when any window's requirement exceeds its greedy
        boundary — the joint program may still be infeasible or (rarely)
        feasible via a non-greedy path, in which case the generic phase-I
        machinery takes over.
        """
        from repro.core.protemp import ProTempOptimizer

        platform = self.platform
        n = platform.n_cores
        single = ProTempOptimizer(
            platform,
            horizon=self.response.horizon,
            step_subsample=self.response.step_subsample,
            minimize_gradient=False,
            backend="barrier",
        )
        weight = platform.f_max / np.sqrt(platform.power.p_max)
        p_low = np.full(n, POWER_FLOOR * 10.0)
        s_low = float(weight * np.sqrt(p_low).sum())

        if np.isscalar(t_start):
            state = np.full(self.response.n_nodes, float(t_start))
        else:
            state = np.asarray(t_start, dtype=float).copy()
        p_full = self.response._powk_stack[-1]
        m_full = self.response._m_stack[-1]
        v_full = self.response._v_stack[-1]

        chunks = []
        for w in range(self.h):
            boundary = single._max_sqrt_solve(state)
            if boundary is None:
                return None
            boundary_avg, p_star = boundary
            s_star = n * boundary_avg
            s_req = n * float(f_targets[w])
            if s_star <= max(s_req, s_low) * (1 + 1e-9):
                return None
            needed = max((s_req - s_low) / (s_star - s_low), 0.0)
            if needed >= 0.99:
                return None
            # Stay just above the requirement: coolest for later windows.
            alpha = needed + 0.1 * (0.99 - needed)
            p_w = alpha * p_star + (1 - alpha) * p_low
            chunks.append(p_w)
            state = p_full @ state + m_full @ p_w + v_full
        return np.concatenate(chunks)

    # -- horizon assembly -------------------------------------------------

    def _stacked_horizon(
        self, t_start: float | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the affine response of all H windows over (p_0..p_{H-1}).

        Window ``w`` starts from the end state of window ``w-1``; the end
        state is affine in the earlier windows' powers, so each row block
        composes the single-window response with the window-to-window
        propagation.
        """
        platform = self.platform
        n = platform.n_cores
        n_nodes = self.response.n_nodes
        s = len(self.response.steps)
        h = self.h

        if np.isscalar(t_start):
            t0 = np.full(n_nodes, float(t_start))
        else:
            t0 = np.asarray(t_start, dtype=float)
            if t0.shape != (n_nodes,):
                raise SolverError(
                    f"t_start must be scalar or shape ({n_nodes},)"
                )

        # Single-window pieces at the selected steps.
        m_stack = self.response._m_stack  # (s, n_nodes, n)
        v_stack = self.response._v_stack  # (s, n_nodes)
        powk = self.response._powk_stack  # (s, n_nodes, n_nodes)
        # Full-window propagation (the final selected step is step m).
        p_full = powk[-1]
        m_full = m_stack[-1]
        v_full = v_stack[-1]

        rows = np.zeros((h * s * n_nodes, h * n))
        offsets = np.zeros(h * s * n_nodes)

        # State at the start of window w: t_w = base_w + sum_u coef_w[u] p_u
        base = t0.copy()
        coefs: list[np.ndarray] = []  # per earlier window: (n_nodes, n)
        for w in range(h):
            block = slice(w * s * n_nodes, (w + 1) * s * n_nodes)
            # temps in window w at step k: powk[k] t_w + m_stack[k] p_w + v_k
            offsets[block] = (powk @ base + v_stack).reshape(-1)
            for u, coef in enumerate(coefs):
                rows[block, u * n : (u + 1) * n] = (powk @ coef).reshape(
                    s * n_nodes, n
                )
            rows[block, w * n : (w + 1) * n] = m_stack.reshape(
                s * n_nodes, n
            )
            # Propagate to the next window start.
            coefs = [p_full @ coef for coef in coefs]
            coefs.append(m_full.copy())
            base = p_full @ base + v_full
        return rows, offsets
