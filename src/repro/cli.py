"""Command-line interface: ``protemp <experiment>`` / ``python -m repro``.

Runs any of the paper's experiments end-to-end and prints the figure's data
as text (optionally CSV).  Heavy experiments accept ``--duration`` to trade
fidelity for speed; the defaults match EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    ascii_plot,
    cached_table,
    make_platform,
    run_assignment_effect,
    run_band_comparison,
    run_feasibility_sweep,
    run_gradient_timeseries,
    run_per_core_frequency,
    run_snapshot,
    run_waiting_comparison,
)
from repro.thermal.calibration import calibration_report, format_report

EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "calibration",
    "table",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="protemp",
        description=(
            "Pro-Temp reproduction (Murali et al., DATE 2008): run the "
            "paper's experiments on the simulated Niagara-8 platform."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS,
        help="which experiment to run (figN of the paper)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds for trace-driven experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload random seed"
    )
    parser.add_argument(
        "--table-cache",
        default=None,
        help="JSON file for caching the Phase-1 table",
    )
    return parser


def _snapshot_plot(result) -> str:
    return ascii_plot(
        result.times,
        {"P1": result.temperature},
        hline=result.t_max,
        y_label="Temperature (C)",
        x_label="time (s)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    started = time.time()
    platform = make_platform()

    def table():
        return cached_table(platform, cache_path=args.table_cache)

    duration = args.duration
    if args.experiment == "fig1":
        result = run_snapshot(
            "basic", duration=duration or 60.0, seed=args.seed,
            platform=platform,
        )
        print(result.text())
        print(_snapshot_plot(result))
    elif args.experiment == "fig2":
        result = run_snapshot(
            "protemp", duration=duration or 60.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
        print(_snapshot_plot(result))
    elif args.experiment in ("fig6a", "fig6b"):
        kind = "mixed" if args.experiment == "fig6a" else "compute"
        result = run_band_comparison(
            kind, duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "fig7":
        result = run_waiting_comparison(
            duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "fig8":
        result = run_gradient_timeseries(
            duration=duration or 60.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
        print(
            ascii_plot(
                result.times,
                {"P1": result.p1, "P2": result.p2},
                y_label="Temperature (C)",
                x_label="time (s)",
            )
        )
    elif args.experiment == "fig9":
        print(run_feasibility_sweep(platform=platform).text())
    elif args.experiment == "fig10":
        print(run_per_core_frequency(platform=platform).text())
    elif args.experiment == "fig11":
        result = run_assignment_effect(
            duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "calibration":
        print(format_report(calibration_report(platform), platform.core_names))
    elif args.experiment == "table":
        print(table().format())
    print(f"[{args.experiment} finished in {time.time() - started:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
