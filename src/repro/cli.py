"""Command-line interface: ``protemp <command>`` / ``python -m repro``.

Three command families:

* ``protemp <figN>`` — run one of the paper's experiments end-to-end and
  print the figure's data as text.  Heavy experiments accept
  ``--duration`` to trade fidelity for speed.
* ``protemp run <config.json>`` — expand a declarative scenario config
  (see `repro.scenario.specs.scenario_grid_from_config`) and execute the
  grid on a :class:`~repro.scenario.ScenarioRunner`, optionally over a
  process pool (``--workers``), restricted to one deterministic shard
  (``--shard i/n``), and/or backed by a persistent scenario-outcome cache
  (``--outcome-store DIR``; see `repro.scenario.store`).
* ``protemp merge <store>...`` — union the outcome sets of several
  stores (shards of one grid, or several runs; directories and sqlite
  files mix freely), detect spec-hash collisions and conflicting
  duplicates, print the combined summary table, and optionally write
  the merged store (``--output STORE``).
* ``protemp migrate <src> <dst>`` — copy one outcome store onto another
  backend (directory → sqlite and back) with the merge conflict
  semantics against whatever the destination already holds.
* ``protemp serve`` — run the long-lived scenario service: one warm
  :class:`~repro.scenario.ScenarioRunner` shared across HTTP requests
  (or stdin/NDJSON lines with ``--stdin``), outcomes streamed as
  JSON-lines events, graceful drain on SIGTERM, durable job state with
  ``--state`` (see `repro.serving`).
* ``protemp submit <config.json>`` — send a config to a running service
  and stream its outcome events back (``--url``, ``--json``,
  ``--priority`` to schedule ahead of the default-priority backlog).
* ``protemp report [STORE...]`` — summarize a run: per-policy outcome
  totals from outcome stores, per-job state/priority tables from a
  ``--state`` job journal, and per-phase wall-time/cache-hit/solve-count
  tables from a saved ``--metrics`` snapshot (``/metrics`` JSON);
  ``--json`` emits the versioned report object.
* ``protemp list`` — show the registered platforms, workloads, policies,
  assignments, sensors and experiments (``--json`` for tooling).
* ``protemp check [paths]`` — run the project-invariant static-analysis
  pass (`repro.devtools.check`) over the given files/directories
  (default ``src``): determinism, lock discipline, cache-key
  completeness, float hygiene, registry/spec discipline.  ``--rule``
  filters to specific rules, ``--json`` emits the versioned report (see
  docs/DEVTOOLS.md).

``protemp --version`` reports the installed package version (package
metadata when installed, the source tree's ``repro.__version__``
otherwise).

See docs/SCALING.md for the sharded-grid walkthrough and docs/SERVING.md
for the service endpoints and event schema.
"""

from __future__ import annotations

import argparse
import importlib.metadata
import json
import sys
import time
from pathlib import Path

from repro.analysis import (
    ascii_plot,
    cached_table,
    make_platform,
    run_assignment_effect,
    run_band_comparison,
    run_feasibility_sweep,
    run_gradient_timeseries,
    run_per_core_frequency,
    run_snapshot,
    run_waiting_comparison,
)
from repro.errors import OutcomeStoreError, ScenarioError, did_you_mean
from repro.scenario import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
    ScenarioRunner,
    merge_stores,
    open_existing_store,
    open_outcome_store,
)
from repro.thermal.calibration import calibration_report, format_report

EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "calibration",
    "table",
)

#: Scenario-API commands sharing the positional slot with the experiments.
COMMANDS = (
    "run",
    "tournament",
    "merge",
    "migrate",
    "list",
    "serve",
    "submit",
    "check",
    "report",
)

#: Distribution name in package metadata (pyproject.toml).
DISTRIBUTION = "protemp-repro"


def package_version() -> str:
    """The package version: installed metadata, else the source tree's.

    ``protemp --version`` must work both for an installed wheel (read the
    distribution metadata) and for a source checkout on ``PYTHONPATH``
    (fall back to ``repro.__version__``).
    """
    try:
        return importlib.metadata.version(DISTRIBUTION)
    except importlib.metadata.PackageNotFoundError:
        from repro import __version__

        return __version__

#: Registries shown by ``protemp list``, in display order.
_REGISTRIES = (
    ("platforms", PLATFORMS),
    ("workloads", WORKLOADS),
    ("policies", POLICIES),
    ("assignments", ASSIGNMENTS),
    ("sensors", SENSORS),
)


class _HintingArgumentParser(argparse.ArgumentParser):
    """Argparse with did-you-mean hints for unknown subcommands.

    Unknown-subcommand failures exit with the same code (2) and message
    shape as every other unknown-name error in the package
    (:func:`repro.errors.did_you_mean`): ``protemp: unknown command
    'serv'; did you mean 'serve'?``.
    """

    def error(self, message: str):
        if "invalid choice" in message:
            start = message.find("'") + 1
            bad = message[start:message.find("'", start)]
            hint = did_you_mean(bad, EXPERIMENTS + COMMANDS) or (
                "; see 'protemp list' for experiments and commands"
            )
            self.print_usage(sys.stderr)
            sys.stderr.write(
                f"{self.prog}: unknown command {bad!r}{hint}\n"
            )
            sys.exit(2)
        super().error(message)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = _HintingArgumentParser(
        prog="protemp",
        description=(
            "Pro-Temp reproduction (Murali et al., DATE 2008): run the "
            "paper's experiments, or declarative scenario grids, on "
            "simulated multi-core platforms."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"protemp {package_version()}",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + COMMANDS,
        help=(
            "a paper experiment (figN), 'run' (execute a scenario config), "
            "'tournament' (ranked head-to-head over a policy grid), "
            "'serve'/'submit' (the long-lived scenario service), "
            "'merge'/'migrate' (combine or convert outcome stores), "
            "'check' (static analysis), or 'list' (show registered "
            "components)"
        ),
    )
    parser.add_argument(
        "config",
        nargs="?",
        default=None,
        help=(
            "scenario config JSON file ('run'/'tournament'/'submit'), "
            "first outcome store ('merge'), source store ('migrate'), or "
            "first path to analyze ('check')"
        ),
    )
    parser.add_argument(
        "stores",
        nargs="*",
        default=[],
        help=(
            "additional outcome stores to union ('merge'), the "
            "destination store ('migrate'), or additional paths to "
            "analyze ('check')"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds for trace-driven experiments",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload random seed"
    )
    parser.add_argument(
        "--table-cache",
        default=None,
        help="JSON file for caching the Phase-1 table",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for 'run' (default: serial)",
    )
    parser.add_argument(
        "--table-cache-dir",
        default=None,
        help="directory of persistent Phase-1 table caches for 'run'",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "run only shard I of N (0-based) of the expanded grid; the "
            "slicing hashes specs, so N hosts running I=0..N-1 cover the "
            "grid exactly once"
        ),
    )
    parser.add_argument(
        "--outcome-store",
        default=None,
        metavar="STORE",
        help=(
            "persistent scenario-outcome store: cells already in the store "
            "are replayed instead of re-simulated, fresh cells are written "
            "back ('run', 'serve'); a directory, a *.sqlite/*.db file, or "
            "a sqlite:/dir: URL"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="write the merged outcome store to this directory ('merge')",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output ('run', 'list'; raw NDJSON events "
            "for 'submit')"
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        help="bind address for 'serve' (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port for 'serve' (default 8765)",
    )
    parser.add_argument(
        "--stdin",
        action="store_true",
        help=(
            "'serve' only: read one config JSON per stdin line and write "
            "NDJSON events to stdout instead of serving HTTP"
        ),
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help=(
            "base URL of the running service for 'submit' "
            "(default http://127.0.0.1:8765)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help=(
            "'check' only: run just this rule (repeatable, e.g. "
            "--rule PT001 --rule PT004; default: all rules)"
        ),
    )
    parser.add_argument(
        "--state",
        default=None,
        metavar="FILE",
        help=(
            "'serve' only: journal job state to this SQLite file so a "
            "restarted service re-enqueues interrupted jobs (finished "
            "cells replay from the outcome store) and idempotency keys "
            "survive restarts"
        ),
    )
    parser.add_argument(
        "--idempotency-key",
        default=None,
        metavar="KEY",
        help=(
            "'submit' only: retry token — resubmitting the same config "
            "under the same key streams the existing job instead of "
            "running it twice"
        ),
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=None,
        metavar="N",
        help=(
            "'submit' only: scheduling priority for the job (higher "
            "runs first; default 0)"
        ),
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="N",
        help=(
            "'serve' only: admission-control limit — reject submissions "
            "with 429 once this many scenario cells are accepted but not "
            "yet finished (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "'report' only: a saved /metrics JSON snapshot to summarize "
            "into per-phase timing tables"
        ),
    )
    parser.add_argument(
        "--tournament",
        action="store_true",
        help=(
            "'report' only: also reduce the given outcome stores into a "
            "ranked head-to-head tournament (same reducer as 'protemp "
            "tournament', so a saved store re-renders its ranking)"
        ),
    )
    return parser


def list_payload() -> dict:
    """The ``protemp list --json`` payload (shared with ``/registry``)."""
    payload: dict = {
        kind: {
            name: entry.description for name, entry in registry.items()
        }
        for kind, registry in _REGISTRIES
    }
    payload["experiments"] = list(EXPERIMENTS)
    return payload


def _list_command(as_json: bool) -> int:
    """``protemp list``: registered components and experiments."""
    if as_json:
        print(json.dumps(list_payload(), indent=1, sort_keys=True))
        return 0
    for kind, registry in _REGISTRIES:
        print(f"{kind}:")
        for name, entry in registry.items():
            suffix = " [needs table]" if entry.needs_table else ""
            print(f"  {name:<22s} {entry.description}{suffix}")
        print()
    print("experiments:")
    print("  " + " ".join(EXPERIMENTS))
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` into ``(shard_index, shard_count)``.

    Raises:
        ScenarioError: when the text is not ``I/N`` with integers (range
            checks happen in `repro.scenario.specs.shard_specs`).
    """
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError("missing '/'")
        return int(index_text), int(count_text)
    except ValueError as exc:
        raise ScenarioError(
            f"--shard must look like I/N (e.g. 0/4), got {text!r}: {exc}"
        ) from exc


def _print_summary_table(rows: list[dict]) -> None:
    """Human-readable outcome table shared by ``run`` and ``merge``.

    ``merge`` rows are deterministic summaries without per-run provenance
    (wall time, cache flags); those columns render as ``-``.
    """
    header = (
        f"{'scenario':<36s} {'policy':<10s} {'peak C':>7s} {'>tmax%':>7s} "
        f"{'wait ms':>8s} {'done':>11s} {'wall s':>7s} {'table':>6s}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        done = f"{row['completed_tasks']}/{row['arrived_tasks']}"
        if row.get("outcome_cache_hit"):
            table_note = "store"
        else:
            table_note = {True: "cache", False: "built", None: "-"}[
                row.get("table_cache_hit")
            ]
        wall = (
            f"{row['wall_time_s']:7.2f}" if "wall_time_s" in row else f"{'-':>7s}"
        )
        print(
            f"{row['scenario']:<36s} {row['policy']:<10s} "
            f"{row['peak_c']:7.1f} {row['violation_fraction'] * 100:6.2f}% "
            f"{row['mean_wait_s'] * 1e3:8.1f} {done:>11s} "
            f"{wall} {table_note:>6s}"
        )


def _reject_foreign_flags(
    command: str, args: argparse.Namespace, invalid: dict[str, object]
) -> str | None:
    """Guard against flags that belong to a *different* subcommand.

    The experiments, ``run`` and ``merge`` share one argparse namespace;
    silently ignoring another command's flag (classic: ``merge
    --outcome-store`` instead of ``--output``) would discard user intent.

    Returns:
        An error message, or None when no foreign flag is set.
    """
    used = [
        flag
        for flag, value in invalid.items()
        # Identity, not equality: 0 is a meaningful value for int flags
        # (--port 0 binds an ephemeral port) and must still be rejected.
        if value is not None and value is not False
    ]
    if used:
        return (
            f"protemp {command}: {', '.join(used)} "
            f"{'is' if len(used) == 1 else 'are'} not valid for '{command}'"
        )
    return None


def _run_command(args: argparse.Namespace) -> int:
    """``protemp run <config.json>``: execute a scenario grid."""
    if args.config is None:
        print("protemp run: a scenario config JSON path is required",
              file=sys.stderr)
        return 2
    if args.stores:
        print("protemp run: takes a single config "
              f"(unexpected arguments: {args.stores})", file=sys.stderr)
        return 2
    error = _reject_foreign_flags(
        "run",
        args,
        {
            "--output": args.output,
            "--host": args.host,
            "--port": args.port,
            "--url": args.url,
            "--stdin": args.stdin,
            "--rule": args.rule,
            "--state": args.state,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        hint = " (did you mean --outcome-store?)" if args.output else ""
        print(f"{error}{hint}", file=sys.stderr)
        return 2
    runner = ScenarioRunner(
        n_workers=args.workers,
        table_cache_dir=args.table_cache_dir,
        outcome_store=args.outcome_store,
    )
    try:
        shard_index = shard_count = None
        if args.shard is not None:
            shard_index, shard_count = _parse_shard(args.shard)
        outcomes = runner.run_config(
            args.config, shard_index=shard_index, shard_count=shard_count
        )
    except (ScenarioError, OutcomeStoreError) as exc:
        print(f"protemp run: {exc}", file=sys.stderr)
        return 2
    rows = [outcome.summary_row() for outcome in outcomes]
    if args.json:
        print(json.dumps(rows, indent=1))
        return 0
    _print_summary_table(rows)
    print(
        f"[{len(rows)} scenarios ({runner.scenarios_executed} executed, "
        f"{runner.outcomes_replayed} from store), "
        f"{runner.tables_built} tables built]",
        file=sys.stderr,
    )
    return 0


def _tournament_command(args: argparse.Namespace) -> int:
    """``protemp tournament <config.json>``: ranked head-to-head run.

    Expands the config's grid (which must carry a ``policy`` axis with at
    least two entries), runs it through the scenario runner — with
    ``--outcome-store`` a warm re-run replays every cell and re-ranks
    with zero solves — and reduces the outcomes to standings, a pairwise
    win matrix, and a ranking.  ``--json`` emits the versioned report:
    its ``tournament`` section is a pure function of the outcomes (the CI
    smoke job byte-compares it across cold/warm runs), while ``run``
    carries this invocation's cache provenance.
    """
    from repro.analysis.tournament import (
        render_tournament,
        run_tournament,
        tournament_json,
    )

    if args.config is None:
        print(
            "protemp tournament: a scenario config JSON path is required",
            file=sys.stderr,
        )
        return 2
    if args.stores:
        print(
            "protemp tournament: takes a single config "
            f"(unexpected arguments: {args.stores})",
            file=sys.stderr,
        )
        return 2
    error = _reject_foreign_flags(
        "tournament",
        args,
        {
            "--output": args.output,
            "--host": args.host,
            "--port": args.port,
            "--url": args.url,
            "--stdin": args.stdin,
            "--rule": args.rule,
            "--state": args.state,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        hint = (
            " ('tournament' already ranks; the flag belongs to 'report')"
            if args.tournament
            else ""
        )
        print(f"{error}{hint}", file=sys.stderr)
        return 2
    runner = ScenarioRunner(
        n_workers=args.workers,
        table_cache_dir=args.table_cache_dir,
        outcome_store=args.outcome_store,
    )
    try:
        shard_index = shard_count = None
        if args.shard is not None:
            shard_index, shard_count = _parse_shard(args.shard)
        report = run_tournament(
            args.config,
            runner=runner,
            shard_index=shard_index,
            shard_count=shard_count,
        )
    except (ScenarioError, OutcomeStoreError) as exc:
        print(f"protemp tournament: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(tournament_json(report))
    else:
        print(render_tournament(report["tournament"]), end="")
    run_info = report["run"]
    print(
        f"[{run_info['scenarios']} cells "
        f"({run_info['scenarios_executed']} executed, "
        f"{run_info['outcomes_replayed']} from store), "
        f"{run_info['tables_built']} tables built]",
        file=sys.stderr,
    )
    return 0


def _merge_command(args: argparse.Namespace) -> int:
    """``protemp merge <store>...``: union shard outcome sets.

    Stores are named like ``--outcome-store``: a directory, a
    ``*.sqlite``/``*.db`` file, or a ``sqlite:``/``dir:`` URL — shards
    on different backends merge freely.
    """
    error = _reject_foreign_flags(
        "merge",
        args,
        {
            "--outcome-store": args.outcome_store,
            "--shard": args.shard,
            "--workers": args.workers,
            "--table-cache-dir": args.table_cache_dir,
            "--host": args.host,
            "--port": args.port,
            "--url": args.url,
            "--stdin": args.stdin,
            "--rule": args.rule,
            "--state": args.state,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        hint = (
            " (did you mean --output?)"
            if args.outcome_store is not None
            else ""
        )
        print(f"{error}{hint}", file=sys.stderr)
        return 2
    paths = ([args.config] if args.config else []) + list(args.stores)
    if not paths:
        print("protemp merge: at least one outcome-store path is required",
              file=sys.stderr)
        return 2
    try:
        merged = merge_stores(open_existing_store(p) for p in paths)
        if args.output is not None:
            target = open_outcome_store(args.output)
            for record in merged.records:
                target.put(record)
    except OutcomeStoreError as exc:
        print(f"protemp merge: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(merged.summary_rows(), indent=1))
    else:
        _print_summary_table(merged.summary_rows())
    print(
        f"[{len(merged.records)} outcomes from {len(paths)} stores "
        f"({merged.duplicates} duplicates dropped)"
        + (f" -> {args.output}" if args.output is not None else "")
        + "]",
        file=sys.stderr,
    )
    return 0


def _migrate_command(args: argparse.Namespace) -> int:
    """``protemp migrate <src> <dst>``: copy a store onto another backend.

    Any backend to any other (directory → sqlite and back); ``put``
    applies the merge conflict semantics against whatever the
    destination already holds, so migrating into a non-empty store is a
    union (benign duplicates skip, conflicting records abort).
    """
    error = _reject_foreign_flags(
        "migrate",
        args,
        {
            "--outcome-store": args.outcome_store,
            "--shard": args.shard,
            "--workers": args.workers,
            "--table-cache-dir": args.table_cache_dir,
            "--output": args.output,
            "--host": args.host,
            "--port": args.port,
            "--url": args.url,
            "--stdin": args.stdin,
            "--rule": args.rule,
            "--state": args.state,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.config is None or len(args.stores) != 1:
        print("protemp migrate: takes exactly a source and a destination "
              "store (e.g. protemp migrate outcomes/ outcomes.sqlite)",
              file=sys.stderr)
        return 2
    src_name, dst_name = args.config, args.stores[0]
    copied = skipped = 0
    try:
        source = open_existing_store(src_name)
        destination = open_outcome_store(dst_name)
        for record in source.records():
            if destination.get(record.spec_hash) is None:
                destination.put(record)
                copied += 1
            else:
                destination.put(record)  # conflict check vs existing
                skipped += 1
        total = len(destination)
    except OutcomeStoreError as exc:
        print(f"protemp migrate: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {
                "source": src_name,
                "destination": dst_name,
                "copied": copied,
                "skipped": skipped,
                "destination_records": total,
            },
            indent=1,
            allow_nan=False,
        ))
    else:
        print(
            f"[{copied} records copied {src_name} -> {dst_name} "
            f"({skipped} already present; destination holds {total})]",
            file=sys.stderr,
        )
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    """``protemp serve``: the long-lived scenario service."""
    from repro.serving import (
        DEFAULT_HOST,
        DEFAULT_MAX_WORKERS,
        DEFAULT_PORT,
        ScenarioService,
        serve,
        serve_stdin,
    )

    error = _reject_foreign_flags(
        "serve",
        args,
        {
            "--output": args.output,
            "--shard": args.shard,
            "--url": args.url,
            "--rule": args.rule,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.config is not None or args.stores:
        print("protemp serve: takes no positional arguments (configs are "
              "submitted over HTTP or stdin)", file=sys.stderr)
        return 2
    service = ScenarioService(
        max_workers=args.workers or DEFAULT_MAX_WORKERS,
        table_cache_dir=args.table_cache_dir,
        outcome_store=args.outcome_store,
        state=args.state,
        queue_capacity=args.queue_capacity,
    )
    if args.stdin:
        if args.host is not None or args.port is not None:
            print("protemp serve: --stdin does not take --host/--port",
                  file=sys.stderr)
            return 2
        return serve_stdin(service)
    return serve(
        service,
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
    )


def _submit_command(args: argparse.Namespace) -> int:
    """``protemp submit <config.json>``: stream a config through a service."""
    from repro.serving import DEFAULT_HOST, DEFAULT_PORT, ServiceClient
    from repro.errors import ServiceError

    error = _reject_foreign_flags(
        "submit",
        args,
        {
            "--output": args.output,
            "--shard": args.shard,
            "--workers": args.workers,
            "--table-cache-dir": args.table_cache_dir,
            "--outcome-store": args.outcome_store,
            "--host": args.host,
            "--port": args.port,
            "--stdin": args.stdin,
            "--rule": args.rule,
            "--state": args.state,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        hint = " (caches live on the server; see 'protemp serve')" if (
            args.table_cache_dir or args.outcome_store
        ) else ""
        print(f"{error}{hint}", file=sys.stderr)
        return 2
    if args.config is None:
        print("protemp submit: a scenario config JSON path is required",
              file=sys.stderr)
        return 2
    if args.stores:
        print("protemp submit: takes a single config "
              f"(unexpected arguments: {args.stores})", file=sys.stderr)
        return 2
    path = Path(args.config)
    if not path.exists():
        print(f"protemp submit: no such scenario config: {args.config}",
              file=sys.stderr)
        return 2
    try:
        config = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"protemp submit: config is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    url = (
        args.url
        if args.url is not None
        else f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    )
    client = ServiceClient(url)
    rows: list[dict] = []
    done: dict | None = None
    try:
        for event in client.submit_and_stream(
            config,
            idempotency_key=args.idempotency_key,
            priority=args.priority,
        ):
            if args.json:
                print(json.dumps(event))
                sys.stdout.flush()
            kind = event.get("event")
            if kind == "job":
                print(f"[{event['job_id']}: {event['n_scenarios']} "
                      "scenarios]", file=sys.stderr)
            elif kind == "outcome":
                rows.append(event["row"])
            elif kind == "scenario_error" and not args.json:
                error = event["error"]
                print(
                    f"protemp submit: scenario {event['scenario']!r} "
                    f"failed: {error['type']}: {error['message']}",
                    file=sys.stderr,
                )
            if kind == "done":
                done = event
    except ServiceError as exc:
        retry = getattr(exc, "retry_after_s", None)
        suffix = f" (retry after {retry}s)" if retry is not None else ""
        print(f"protemp submit: {exc}{suffix}", file=sys.stderr)
        return 2
    if not args.json:
        _print_summary_table(rows)
    if done is None:
        print("protemp submit: event stream ended without a done event",
              file=sys.stderr)
        return 1
    print(
        f"[{done['n_scenarios']} scenarios "
        f"({done['scenarios_executed']} executed, "
        f"{done['outcomes_replayed']} from store, "
        f"{done['failed']} failed) in {done['wall_time_s']:.1f}s]",
        file=sys.stderr,
    )
    return 0 if done["failed"] == 0 and not done.get("error") else 1


def _check_command(args: argparse.Namespace) -> int:
    """``protemp check [paths]``: the project-invariant static analysis.

    Exit codes follow the usual linter convention: 0 clean (waived-only
    counts as clean), 1 active findings, 2 usage errors (unknown rule
    ids, missing paths).
    """
    # Lazy: devtools is pure stdlib but irrelevant to every other command.
    from repro.devtools.check import render_json, render_text, run_check
    from repro.errors import DevtoolsError

    error = _reject_foreign_flags(
        "check",
        args,
        {
            "--duration": args.duration,
            "--table-cache": args.table_cache,
            "--workers": args.workers,
            "--table-cache-dir": args.table_cache_dir,
            "--shard": args.shard,
            "--outcome-store": args.outcome_store,
            "--output": args.output,
            "--host": args.host,
            "--port": args.port,
            "--stdin": args.stdin,
            "--url": args.url,
            "--state": args.state,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
            "--metrics": args.metrics,
            "--tournament": args.tournament,
        },
    )
    if error:
        print(error, file=sys.stderr)
        return 2
    paths = ([args.config] if args.config else []) + list(args.stores)
    if not paths:
        if not Path("src").is_dir():
            print(
                "protemp check: no paths given and no ./src directory to "
                "default to",
                file=sys.stderr,
            )
            return 2
        paths = ["src"]
    try:
        report = run_check(paths, rules=args.rule)
    except DevtoolsError as exc:
        print(f"protemp check: {exc}", file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    return report.exit_code


def _report_command(args: argparse.Namespace) -> int:
    """``protemp report [STORE...]``: summarize a run's artifacts.

    Any combination of inputs works — outcome stores (positional),
    a job journal (``--state``), and a saved ``/metrics`` JSON snapshot
    (``--metrics``); at least one must be given.  Exit 0 with the
    rendered tables, 2 on usage errors or unreadable inputs.
    """
    # Lazy like _serve_command: report pulls in the serving layer only
    # when a --state journal is named.
    from repro.observability.report import build_report, render_report
    from repro.errors import ServiceError

    error = _reject_foreign_flags(
        "report",
        args,
        {
            "--duration": args.duration,
            "--table-cache": args.table_cache,
            "--workers": args.workers,
            "--table-cache-dir": args.table_cache_dir,
            "--shard": args.shard,
            "--outcome-store": args.outcome_store,
            "--output": args.output,
            "--host": args.host,
            "--port": args.port,
            "--stdin": args.stdin,
            "--url": args.url,
            "--rule": args.rule,
            "--idempotency-key": args.idempotency_key,
            "--priority": args.priority,
            "--queue-capacity": args.queue_capacity,
        },
    )
    if error:
        hint = (
            " (did you mean a positional store path?)"
            if args.outcome_store is not None
            else ""
        )
        print(f"{error}{hint}", file=sys.stderr)
        return 2
    store_paths = ([args.config] if args.config else []) + list(args.stores)
    if not store_paths and args.state is None and args.metrics is None:
        print(
            "protemp report: nothing to report — give outcome stores, "
            "--state JOURNAL, and/or --metrics SNAPSHOT",
            file=sys.stderr,
        )
        return 2
    try:
        report = build_report(
            stores=store_paths or None,
            state=args.state,
            metrics=args.metrics,
            tournament=args.tournament,
        )
    except (OutcomeStoreError, ScenarioError, ServiceError, OSError) as exc:
        print(f"protemp report: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"protemp report: metrics snapshot is not valid JSON: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True, allow_nan=False))
    else:
        print(render_report(report), end="")
    return 0


def _snapshot_plot(result) -> str:
    return ascii_plot(
        result.times,
        {"P1": result.temperature},
        hline=result.t_max,
        y_label="Temperature (C)",
        x_label="time (s)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        return _list_command(args.json)
    started = time.time()
    if args.experiment == "run":
        code = _run_command(args)
        print(f"[run finished in {time.time() - started:.1f}s]",
              file=sys.stderr)
        return code
    if args.experiment == "tournament":
        code = _tournament_command(args)
        print(f"[tournament finished in {time.time() - started:.1f}s]",
              file=sys.stderr)
        return code
    if args.experiment == "merge":
        return _merge_command(args)
    if args.experiment == "migrate":
        return _migrate_command(args)
    if args.experiment == "serve":
        return _serve_command(args)
    if args.experiment == "submit":
        return _submit_command(args)
    if args.experiment == "check":
        return _check_command(args)
    if args.experiment == "report":
        return _report_command(args)
    if args.config is not None or args.stores:
        print(f"protemp {args.experiment}: unexpected positional arguments",
              file=sys.stderr)
        return 2
    platform = make_platform()

    def table():
        return cached_table(platform, cache_path=args.table_cache)

    duration = args.duration
    if args.experiment == "fig1":
        result = run_snapshot(
            "basic", duration=duration or 60.0, seed=args.seed,
            platform=platform,
        )
        print(result.text())
        print(_snapshot_plot(result))
    elif args.experiment == "fig2":
        result = run_snapshot(
            "protemp", duration=duration or 60.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
        print(_snapshot_plot(result))
    elif args.experiment in ("fig6a", "fig6b"):
        kind = "mixed" if args.experiment == "fig6a" else "compute"
        result = run_band_comparison(
            kind, duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "fig7":
        result = run_waiting_comparison(
            duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "fig8":
        result = run_gradient_timeseries(
            duration=duration or 60.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
        print(
            ascii_plot(
                result.times,
                {"P1": result.p1, "P2": result.p2},
                y_label="Temperature (C)",
                x_label="time (s)",
            )
        )
    elif args.experiment == "fig9":
        print(run_feasibility_sweep(platform=platform).text())
    elif args.experiment == "fig10":
        print(run_per_core_frequency(platform=platform).text())
    elif args.experiment == "fig11":
        result = run_assignment_effect(
            duration=duration or 40.0, seed=args.seed,
            platform=platform, table=table(),
        )
        print(result.text())
    elif args.experiment == "calibration":
        print(format_report(calibration_report(platform), platform.core_names))
    elif args.experiment == "table":
        print(table().format())
    print(f"[{args.experiment} finished in {time.time() - started:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
