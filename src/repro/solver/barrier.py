"""Log-barrier interior-point method with phase-I feasibility search.

Standard barrier method (Boyd & Vandenberghe ch. 11 — the paper's reference
[25], and what CVX's underlying solvers implement for this problem class):

* **Phase I** finds a strictly feasible point by minimizing an auxiliary
  slack ``s`` subject to ``f_i(x) <= s`` — or certifies infeasibility when
  the optimal slack stays positive.
* **Phase II** minimizes ``t * objective(x) + phi(x)`` for a geometrically
  increasing sequence of ``t``, where ``phi`` is the log barrier of all
  constraint blocks; each stage is solved with damped Newton
  (`repro.solver.newton`) warm-started from the previous stage.  The final
  duality gap is bounded by ``m / t`` with ``m`` the number of scalar
  constraints.

Two fast paths serve repeated solves of structurally identical programs
(the Phase-1 table sweep):

* **Warm start** — when the supplied ``x0`` is already strictly feasible
  (e.g. the optimum of a neighboring design point), phase I is skipped
  entirely after a single residual check.
* **Compiled constraints** — passing a
  `repro.solver.compiled.CompiledConstraints` stack makes every stage
  evaluate the barrier through one vectorized matrix product instead of a
  per-block Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.solver.compiled import (
        BatchedCompiledConstraints,
        CompiledConstraints,
    )
from repro.solver.newton import (
    NewtonOptions,
    minimize_newton,
    minimize_newton_batch,
)
from repro.solver.problem import (
    SLACK_FLOOR,
    ConstraintBlock,
    Objective,
    SqrtSumConstraint,
    max_violation,
    total_constraints,
)
from repro.solver.result import SolveResult, SolveStatus


@dataclass
class BarrierOptions:
    """Tuning knobs for the barrier method.

    Attributes:
        t_initial: initial barrier weight.
        mu: geometric growth factor of the barrier weight per stage.
        gap_tol: stop when the duality-gap bound ``m / t`` drops below it.
        feasibility_margin: phase I stops early once the slack is below
            ``-feasibility_margin`` (comfortably strictly feasible).
        infeasibility_tol: phase I declares infeasibility when the optimal
            slack cannot be pushed below this positive tolerance.
        newton: inner Newton options.
    """

    t_initial: float = 1.0
    mu: float = 20.0
    gap_tol: float = 1e-7
    feasibility_margin: float = 1e-9
    infeasibility_tol: float = 1e-9
    newton: NewtonOptions | None = None


#: Stage budget shared by every barrier schedule.
MAX_STAGES = 64


def cold_stage_weights(m: int, options: BarrierOptions) -> list[float]:
    """The cold schedule: ``t_initial * mu^j`` until ``m / t < gap_tol``.

    Single source of truth for the stage grid — the warm/batched paths'
    exactness argument ("same final weight, hence the same returned
    center") relies on every schedule variant deriving from this one.
    Capped at :data:`MAX_STAGES`; a schedule whose last weight still has
    ``m / t >= gap_tol`` signals stage-budget exhaustion to the caller.
    """
    weights = []
    t = options.t_initial
    for _ in range(MAX_STAGES):
        weights.append(t)
        if m / t < options.gap_tol:
            break
        t *= options.mu
    return weights


def final_stage_weight(m: int, options: BarrierOptions) -> float:
    """The barrier weight at which a cold solve of `m` constraints stops.

    This is the first grid point ``t_initial * mu^j`` with
    ``m / t < gap_tol`` — starting a warm solve here runs exactly one
    stage, the one whose analytic center the cold path also returns.
    """
    return cold_stage_weights(m, options)[-1]


def warm_stage_weights(
    m: int, options: BarrierOptions, hint: float
) -> list[float]:
    """Accelerated stage schedule for a near-optimal warm start.

    Starts at the caller's gap-based hint (clamped to the cold schedule's
    range) and reaches the **same final weight a cold solve stops at**
    with geometric jumps of ratio at most ``mu`` — larger jumps were
    measured to cost far more Newton iterations per stage than they save
    in stage count on this problem family.  Because every barrier solve's
    result is its final stage's Newton-converged analytic center — a
    function of the final weight only, not of the path taken to it —
    landing exactly on the cold final weight preserves agreement with
    cold solves to Newton tolerance while skipping the early centering
    stages a near-optimal start does not need.
    """
    t_final = final_stage_weight(m, options)
    t0 = min(max(hint, options.t_initial), t_final)
    if t0 >= t_final:
        return [t_final]
    jumps = max(
        int(np.ceil(np.log(t_final / t0) / np.log(options.mu) - 1e-9)),
        1,
    )
    ratio = (t_final / t0) ** (1.0 / jumps)
    weights = [t0 * ratio**i for i in range(jumps + 1)]
    weights[-1] = t_final
    return weights


class _PhaseOneProblem:
    """Barrier formulation of phase I over the augmented variable (x, s).

    Minimizes ``s`` subject to ``f_i(x) <= s`` for all scalar constraints:
    the barrier stage objective is ``t s - sum_i log(s - f_i(x))``.  The
    shifted barrier terms are assembled from each block's residuals,
    Jacobian and per-row Hessians (see :func:`_residual_derivatives`)::

        d/d(x,s) [-log(s - f_i)] = (grad f_i, -1) / (s - f_i)
        Hessian adds (grad f_i)(grad f_i)^T / slack^2 (with the +/-1 s-row)
        plus hess f_i / slack.

    Linear and box rows (constant Jacobian, zero Hessian) are stacked once
    into a single matrix on first evaluation, so the per-stage cost is a
    couple of matrix products rather than a per-block Python loop; blocks
    with curvature stay on the generic per-block path.
    """

    def __init__(self, blocks: list[ConstraintBlock]):
        from repro.solver.problem import (  # local import to avoid cycles
            BoxConstraint,
            LinearInequality,
        )

        self._curved = [
            b
            for b in blocks
            if not isinstance(b, (LinearInequality, BoxConstraint))
        ]
        self._flat = [
            b for b in blocks if isinstance(b, (LinearInequality, BoxConstraint))
        ]
        self._a: np.ndarray | None = None  # stacked flat rows, built lazily
        self._b: np.ndarray | None = None

    def _ensure_stacked(self, n: int) -> None:
        from repro.solver.compiled import (  # local import to avoid cycles
            stack_flat_rows,
        )

        if self._a is not None:
            return
        self._a, self._b = stack_flat_rows(self._flat, n)

    def value_grad_hess(
        self, xs: np.ndarray, t: float
    ) -> tuple[float, np.ndarray, np.ndarray]:
        x, s = xs[:-1], xs[-1]
        n = len(x)
        self._ensure_stacked(n)
        total_value = t * s
        grad = np.zeros(n + 1)
        grad[-1] = t
        hess = np.zeros((n + 1, n + 1))

        if self._a.shape[0]:
            slack = s - (self._a @ x - self._b)
            if np.any(slack <= SLACK_FLOOR):
                return np.inf, grad, hess
            inv = 1.0 / slack
            total_value += -float(np.log(slack).sum())
            # d/dx of -log(s - f) = (grad f) / slack ; d/ds = -1/slack
            grad[:n] += self._a.T @ inv
            grad[-1] += -inv.sum()
            jw = self._a * inv[:, None]
            hess[:n, :n] += jw.T @ jw  # (grad f)(grad f)^T / slack^2
            cross = -self._a.T @ (inv**2)
            hess[:n, -1] += cross
            hess[-1, :n] += cross
            hess[-1, -1] += float((inv**2).sum())

        for block in self._curved:
            res, jac, hess_terms = _residual_derivatives(block, x)
            slack = s - res
            if np.any(slack <= SLACK_FLOOR):
                return np.inf, grad, hess
            inv = 1.0 / slack
            total_value += -float(np.log(slack).sum())
            grad[:n] += jac.T @ inv
            grad[-1] += -inv.sum()
            jw = jac * inv[:, None]
            hess[:n, :n] += jw.T @ jw
            for hi, h_mat in hess_terms:
                hess[:n, :n] += h_mat * inv[hi]
            cross = -(jac * (inv**2)[:, None]).sum(axis=0)
            hess[:n, -1] += cross
            hess[-1, :n] += cross
            hess[-1, -1] += float((inv**2).sum())
        return total_value, grad, hess


def _residual_derivatives(
    block: ConstraintBlock, x: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, np.ndarray]]]:
    """Residuals, Jacobian and per-constraint Hessians of a block.

    Supports the block types defined in `repro.solver.problem`.  Returns
    ``(residuals, jacobian, [(row_index, hessian), ...])`` where the list
    only contains rows with non-zero Hessian.
    """
    from repro.solver.problem import (  # local import to avoid cycles
        BoxConstraint,
        LinearInequality,
        SqrtSumConstraint,
    )

    n = len(x)
    if isinstance(block, LinearInequality):
        return block.residuals(x), block.a, []
    if isinstance(block, BoxConstraint):
        from repro.solver.compiled import stack_flat_rows  # avoid cycle

        jac, _ = stack_flat_rows([block], n)
        return block.residuals(x), jac, []
    if isinstance(block, SqrtSumConstraint):
        # Clip keeps the derivatives finite when phase I wanders to the
        # boundary; the resulting large gradient pushes iterates back to
        # positive values.
        vals = np.clip(x[block.indices], 1e-12, None)
        roots = np.sqrt(vals)
        jac = np.zeros((1, n))
        jac[0, block.indices] = -block.weights / (2.0 * roots)
        hess = np.zeros((n, n))
        diag = np.zeros(n)
        diag[block.indices] = block.weights / (4.0 * roots**3)
        np.fill_diagonal(hess, diag)
        return block.residuals(x), jac, [(0, hess)]
    raise SolverError(
        f"phase I does not support constraint block type {type(block).__name__}"
    )


class _SqrtMinimaxStage:
    """Stage-2 phase-I function: minimize the *maximum* sqrt-sum deficit.

    Over the augmented variable ``(x, s)``::

        t s - sum_b log(s - g_b(x)) + barrier_smooth(x)

    where ``g_b(x) = target_b - sum w sqrt(x)`` is block b's deficit.  The
    maximum (not the sum) is the correct joint-feasibility certificate:
    with several sqrt constraints, minimizing the summed deficit lets one
    block's surplus mask another's violation (observed with multi-window
    schedules).  Smooth blocks stay *hard* (unshifted barrier), which keeps
    ``x`` strictly inside its box and the sqrt terms smooth.

    Each block is normalized by ``max(1, |target|, max weight)`` so the
    slack variable lives on an O(1) scale regardless of units (frequency
    targets are ~1e9 Hz while power variables are ~1 W; without
    normalization the ``s`` direction of the Hessian is ~1e-18 and Newton
    stalls).  Normalization does not change the feasible set.
    """

    def __init__(
        self,
        sqrt_blocks: list[SqrtSumConstraint],
        smooth_blocks: list[ConstraintBlock],
    ):
        self._sqrt = sqrt_blocks
        self._smooth = smooth_blocks
        self._scales = np.array(
            [
                max(1.0, abs(block.target), float(block.weights.max()))
                for block in sqrt_blocks
            ]
        )

    def deficits(self, x: np.ndarray) -> np.ndarray:
        """Normalized deficits (feasible iff all <= 0)."""
        return np.array(
            [
                float(block.residuals(x)[0]) / scale
                for block, scale in zip(self._sqrt, self._scales)
            ]
        )

    def value_grad_hess(
        self, xs: np.ndarray, t: float
    ) -> tuple[float, np.ndarray, np.ndarray]:
        x, s = xs[:-1], xs[-1]
        n = len(x)
        grad = np.zeros(n + 1)
        hess = np.zeros((n + 1, n + 1))
        value = t * s
        grad[-1] = t

        for block in self._smooth:
            b_val, b_grad, b_hess = block.barrier(x)
            if not np.isfinite(b_val):
                return np.inf, grad, hess
            value += b_val
            grad[:n] += b_grad
            hess[:n, :n] += b_hess

        for block, scale in zip(self._sqrt, self._scales):
            vals = x[block.indices]
            if np.any(vals <= 0):
                return np.inf, grad, hess
            roots = np.sqrt(vals)
            deficit = (
                block.target - float(block.weights @ roots)
            ) / scale
            slack = s - deficit
            if slack <= SLACK_FLOOR:
                return np.inf, grad, hess
            dg = np.zeros(n)
            dg[block.indices] = -block.weights / (2.0 * roots) / scale
            d2g = np.zeros(n)
            d2g[block.indices] = block.weights / (4.0 * roots**3) / scale
            value += -np.log(slack)
            grad[:n] += dg / slack
            grad[-1] += -1.0 / slack
            hess[:n, :n] += np.outer(dg, dg) / slack**2 + np.diag(d2g) / slack
            hess[:n, -1] += -dg / slack**2
            hess[-1, :n] += -dg / slack**2
            hess[-1, -1] += 1.0 / slack**2
        return value, grad, hess


def _phase_one_smooth(
    blocks: list[ConstraintBlock],
    x0: np.ndarray,
    opts: BarrierOptions,
) -> tuple[np.ndarray | None, float]:
    """Slack-based phase I over blocks with bounded curvature (no sqrt)."""
    initial_violation = max_violation(blocks, x0)
    if initial_violation < -opts.feasibility_margin:
        return x0.copy(), initial_violation

    problem = _PhaseOneProblem(blocks)
    s = initial_violation + max(1.0, abs(initial_violation))
    xs = np.concatenate([x0, [s]])
    t = opts.t_initial
    m = total_constraints(blocks) or 1
    newton_opts = opts.newton or NewtonOptions()

    best_violation = initial_violation
    for _stage in range(64):
        outcome = minimize_newton(
            lambda z: problem.value_grad_hess(z, t), xs, newton_opts
        )
        xs = outcome.x
        violation = max_violation(blocks, xs[:-1])
        best_violation = min(best_violation, violation)
        if violation < -opts.feasibility_margin:
            return xs[:-1].copy(), violation
        if m / t < opts.gap_tol:
            break
        t *= opts.mu
    if best_violation <= opts.infeasibility_tol:
        return xs[:-1].copy(), best_violation
    return None, best_violation


def find_strictly_feasible(
    blocks: list[ConstraintBlock],
    x0: np.ndarray,
    options: BarrierOptions | None = None,
) -> tuple[np.ndarray | None, float]:
    """Phase I: find a strictly feasible x, or certify infeasibility.

    Runs in two stages:

    1. slack-based phase I over the smooth (linear/box) blocks — their
       curvature is bounded, so the standard augmented formulation
       converges;
    2. with those constraints strictly satisfied (and kept *hard*), solve
       the minimax program ``min s s.t. deficit_b(x) <= s`` over the sqrt
       blocks (see :class:`_SqrtMinimaxStage`), stopping as soon as every
       sqrt constraint is strictly met.  A positive optimal ``s``
       certifies joint infeasibility.

    The split exists because sqrt constraints have unbounded curvature at
    the boundary ``x_i = 0``; inside the generic slack formulation the
    iterates can park there and stall (see the unit tests).  Keeping the
    box hard in stage 2 keeps ``x`` strictly positive, where the sqrt terms
    are smooth.

    Args:
        blocks: constraint blocks.
        x0: any starting point (need not be feasible).
        options: solver options.

    Returns:
        ``(x, violation)`` — a strictly feasible point and its (negative)
        max violation, or ``(None, min_violation)`` when infeasible with the
        smallest achieved violation.
    """
    opts = options or BarrierOptions()
    x0 = np.asarray(x0, dtype=float)

    sqrt_blocks = [b for b in blocks if isinstance(b, SqrtSumConstraint)]
    smooth = [b for b in blocks if not isinstance(b, SqrtSumConstraint)]

    x, violation = _phase_one_smooth(smooth, x0, opts)
    if x is None:
        return None, violation
    if not sqrt_blocks:
        return x, violation
    violation_all = max_violation(blocks, x)
    if violation_all < -opts.feasibility_margin:
        return x, violation_all

    stage = _SqrtMinimaxStage(sqrt_blocks, smooth)
    s = float(stage.deficits(x).max())
    s = s + max(1.0, abs(s))
    xs = np.concatenate([x, [s]])

    t = opts.t_initial
    m = len(sqrt_blocks) + total_constraints(smooth)
    newton_opts = opts.newton or NewtonOptions()

    best_violation = violation_all
    for _stage in range(64):
        outcome = minimize_newton(
            lambda z: stage.value_grad_hess(z, t), xs, newton_opts
        )
        xs = outcome.x
        violation_all = max_violation(blocks, xs[:-1])
        best_violation = min(best_violation, violation_all)
        if violation_all < -opts.feasibility_margin:
            return xs[:-1].copy(), violation_all
        if m / t < opts.gap_tol:
            break
        t *= opts.mu
    if best_violation <= opts.infeasibility_tol:
        return xs[:-1].copy(), best_violation
    return None, best_violation


def solve_barrier(
    objective: Objective,
    blocks: list[ConstraintBlock],
    x0: np.ndarray,
    options: BarrierOptions | None = None,
    *,
    compiled: "CompiledConstraints | None" = None,
    initial_violation: float | None = None,
    t_start_hint: float | None = None,
    stage_compiled: "CompiledConstraints | None" = None,
) -> SolveResult:
    """Solve ``minimize objective(x) s.t. all blocks`` by the barrier method.

    Args:
        objective: smooth convex objective.
        blocks: convex constraint blocks.
        x0: starting point; a strictly feasible `x0` (a warm start) skips
            phase I entirely, otherwise phase I runs first.
        options: solver options.
        compiled: optional precompiled stack of `blocks` (see
            `repro.solver.compiled`); when given, phase-II stages and
            residual checks evaluate through its vectorized fast path.  The
            caller guarantees it was compiled from (a structural twin of)
            `blocks`.
        initial_violation: the max constraint violation at `x0`, when the
            caller has already computed it (warm-start paths); saves one
            residual pass over all constraint rows.
        t_start_hint: requested initial barrier weight for a near-optimal
            warm start — typically ``m / (estimated duality gap at x0)``.
            Switches to the accelerated schedule of
            :func:`warm_stage_weights`, which finishes at the same final
            weight — and hence the same point — as a cold solve.  Ignored
            when phase I runs (the hint presumes a feasible start).
        stage_compiled: optional structure-exploiting twin of `compiled`
            (same constraints, a `CompiledStructure` attached) used for
            every barrier stage *except the last*.  The final stage — the
            one whose Newton-converged center is the returned point —
            always evaluates through `compiled`, so any certified
            approximation in the structured stack (the rank tail) cannot
            move the result.  At the hand-off the iterate is checked
            against the exact stack; if the structured stages drifted
            outside the exact domain (a violated truncation bound), the
            whole schedule transparently re-runs on the exact stack.
            Requires `compiled`.

    Returns:
        A :class:`SolveResult`; status INFEASIBLE when phase I certifies an
        empty interior, MAX_ITERATIONS when the stage budget runs out.
    """
    opts = options or BarrierOptions()
    x0 = np.asarray(x0, dtype=float)
    total_iterations = 0
    warm_started = False

    def violation_at(z: np.ndarray) -> float:
        if compiled is not None:
            return compiled.max_violation(z)
        return max_violation(blocks, z)

    if initial_violation is None:
        initial_violation = violation_at(x0)
    if initial_violation < -opts.feasibility_margin:
        # Warm start: x0 is already strictly feasible, skip phase I.
        x, violation = x0.copy(), initial_violation
        warm_started = True
    else:
        x, violation = find_strictly_feasible(blocks, x0, opts)
    if x is None:
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            x=x0,
            objective=np.inf,
            max_violation=violation,
        )
    if violation > -opts.feasibility_margin:
        # Boundary-feasible only: nudge via phase I result; the barrier needs
        # a strict interior, so treat as infeasible-for-interior but report
        # the feasible point with its objective (degenerate problems).
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            x=x,
            objective=objective.value(x),
            max_violation=violation,
        )

    m = total_constraints(blocks) or 1
    newton_opts = opts.newton or NewtonOptions()

    def stage_function(t_weight: float, comp: "CompiledConstraints | None"):
        def func(z: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
            value = t_weight * objective.value(z)
            grad = t_weight * objective.gradient(z)
            hess = t_weight * objective.hessian(z)
            if comp is not None:
                b_val, b_grad, b_hess = comp.barrier(z)
                if not np.isfinite(b_val):
                    return np.inf, grad, hess
                return value + b_val, grad + b_grad, hess + b_hess
            for block in blocks:
                b_val, b_grad, b_hess = block.barrier(z)
                if not np.isfinite(b_val):
                    return np.inf, grad, hess
                value += b_val
                grad = grad + b_grad
                hess = hess + b_hess
            return value, grad, hess

        return func

    def stage_value_function(
        t_weight: float, comp: "CompiledConstraints | None"
    ):
        # Value-only twin of stage_function for line-search probes; the
        # arithmetic is identical term-for-term (same order of additions)
        # so line-search decisions — and hence the iterates — match the
        # full evaluator bit-for-bit.
        if comp is None:
            return None

        def vf(z: np.ndarray) -> float:
            value = t_weight * objective.value(z)
            b_val = comp.barrier_value(z)
            if not np.isfinite(b_val):
                return np.inf
            return value + b_val

        return vf

    use_stage = stage_compiled is not None and compiled is not None
    # A tail-free structure (pair fold only) is exact algebra, not an
    # approximation: the final stage may run on it too, skipping both the
    # hand-off check and the full-stack evaluations of the most expensive
    # stage.  Only a rank tail forces the exact final stage.
    exact_structure = (
        use_stage
        and stage_compiled.structure is not None
        and stage_compiled.structure.tail is None
    )

    def run_schedule(weights, x_start, structured):
        """Run a barrier schedule; None signals structured hand-off failure.

        With `structured` every stage but the last evaluates through the
        structure-exploiting stack; the last always uses the exact one, so
        the returned point (the final stage's Newton center) is unchanged.
        (A tail-free structured stack is itself exact, so it serves the
        final stage as well.)  Before an exact final stage the iterate is
        validated against the exact domain — a violated rank-tail bound
        can only surface there, and returning None lets the caller re-run
        the whole schedule exactly.
        """
        z = x_start
        iters = 0
        stage_converged = True
        last = len(weights) - 1
        for i, t_weight in enumerate(weights):
            comp = (
                stage_compiled
                if structured and (i < last or exact_structure)
                else compiled
            )
            if structured and not exact_structure and i == last and last > 0:
                if not np.isfinite(compiled.barrier_value(z)):
                    return None
            outcome = minimize_newton(
                stage_function(t_weight, comp),
                z,
                newton_opts,
                value_func=stage_value_function(t_weight, comp),
            )
            z = outcome.x
            iters += outcome.iterations
            stage_converged = outcome.converged
        return z, iters, stage_converged

    if warm_started and t_start_hint is not None:
        # Near-optimal warm start: few big jumps, same final weight (and
        # hence the same returned center) as the cold schedule below.
        weights = warm_stage_weights(m, opts, t_start_hint)
        run = run_schedule(weights, x, use_stage)
        if run is None:
            run = run_schedule(weights, x, False)
        x, stage_iters, converged = run
        total_iterations += stage_iters
        t = weights[-1]
        if not converged:
            # The final stage ran out of iteration budget mid-progress:
            # the point is not the stage center, so don't claim it is —
            # callers fall back to the exact cold path.
            return SolveResult(
                status=SolveStatus.MAX_ITERATIONS,
                x=x,
                objective=objective.value(x),
                iterations=total_iterations,
                duality_gap=m / t,
                max_violation=violation_at(x),
            )
        duals = _dual_estimates(blocks, x, t)
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            x=x,
            objective=objective.value(x),
            iterations=total_iterations,
            duality_gap=m / t,
            dual_variables=duals,
            max_violation=violation_at(x),
        )

    weights = cold_stage_weights(m, opts)
    run = run_schedule(weights, x, use_stage)
    if run is None:
        run = run_schedule(weights, x, False)
    x, stage_iters, _converged = run
    total_iterations += stage_iters
    t = weights[-1]

    if m / t < opts.gap_tol:
        duals = _dual_estimates(blocks, x, t)
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            x=x,
            objective=objective.value(x),
            iterations=total_iterations,
            duality_gap=m / t,
            dual_variables=duals,
            max_violation=violation_at(x),
        )
    return SolveResult(
        status=SolveStatus.MAX_ITERATIONS,
        x=x,
        objective=objective.value(x),
        iterations=total_iterations,
        duality_gap=m / t,
        max_violation=violation_at(x),
    )


def solve_barrier_batch(
    c: np.ndarray,
    batched: "BatchedCompiledConstraints",
    x0: np.ndarray,
    options: BarrierOptions | None = None,
    *,
    t_start_hint: float | None = None,
    stage_batched: "BatchedCompiledConstraints | None" = None,
) -> list[SolveResult]:
    """Solve several warm-started linear-objective cells in lockstep.

    The batched counterpart of the :func:`solve_barrier` warm path: every
    column of `x0` must already be strictly feasible for its cell (there is
    no batched phase I — the Phase-1 sweep guarantees this by construction
    and falls back to serial solves otherwise).  All cells share one
    objective vector ``c``, one constraint count ``m`` and therefore one
    barrier schedule; each stage advances every unconverged cell through
    `repro.solver.newton.minimize_newton_batch`, whose evaluations hit the
    shared constraint matrix once per iteration for the whole batch.

    Args:
        c: shared linear objective vector, shape (n_vars,).
        batched: the cells' shared-matrix constraint stack
            (`repro.solver.compiled.BatchedCompiledConstraints`).
        x0: starting columns, shape (n_vars, batch), each strictly
            feasible for its cell.
        options: solver options.
        t_start_hint: optional initial barrier weight; switches to the
            accelerated :func:`warm_stage_weights` schedule, which ends at
            the same final weight as the cold schedule.
        stage_batched: optional structure-exploiting twin of `batched`
            (same cells, a `CompiledStructure` attached), used for every
            stage but the last; the final stage always evaluates through
            the exact stack.  Cells whose hand-off iterate falls outside
            the exact domain (a violated rank-tail bound) are dropped from
            the final stage and reported MAX_ITERATIONS so callers
            re-solve them serially.

    Returns:
        One :class:`SolveResult` per cell, in batch order.

    Raises:
        SolverError: when a start column is not strictly feasible.
    """
    opts = options or BarrierOptions()
    x = np.asarray(x0, dtype=float).copy()
    n, batch = x.shape
    if batch != batched.batch:
        raise SolverError(
            f"x0 has {batch} columns but the stack binds {batched.batch}"
        )
    all_cols = np.arange(batch)
    start_violation = batched.max_violation(x, all_cols)
    if np.any(start_violation >= -opts.feasibility_margin):
        raise SolverError(
            "solve_barrier_batch requires strictly feasible start columns"
        )

    m = batched.count() or 1
    newton_opts = opts.newton or NewtonOptions()
    iterations = np.zeros(batch, dtype=int)

    def stage_function(t_weight: float, comp, live: np.ndarray):
        # `live` maps the sub-batch the Newton loop sees onto the full
        # batch: when hand-off validation drops cells before the final
        # stage the survivors are renumbered 0..k-1 inside the solver.
        def func(
            z: np.ndarray, cols: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            values, grads, hessians = comp.barrier(z, live[cols])
            values = values + t_weight * (c @ z)
            grads = grads + t_weight * c[None, :]
            return values, grads, hessians

        return func

    def stage_value_function(t_weight: float, comp, live: np.ndarray):
        def vf(z: np.ndarray, cols: np.ndarray) -> np.ndarray:
            values = comp.barrier_value(z, live[cols])
            return values + t_weight * (c @ z)

        return vf

    if t_start_hint is not None:
        schedule = warm_stage_weights(m, opts, t_start_hint)
    else:
        schedule = cold_stage_weights(m, opts)

    t = schedule[-1]
    converged = np.ones(batch, dtype=bool)
    handoff_failed = np.zeros(batch, dtype=bool)
    live = all_cols
    last = len(schedule) - 1
    # Mirror of the serial `exact_structure` rule: a fold-only structured
    # stack is exact, so it may evaluate the final stage too (and the
    # hand-off check is moot).
    exact_structure = (
        stage_batched is not None
        and stage_batched.structure is not None
        and stage_batched.structure.tail is None
    )
    use_stage = stage_batched is not None and (last > 0 or exact_structure)
    for i, t_weight in enumerate(schedule):
        comp = (
            stage_batched
            if use_stage and (i < last or exact_structure)
            else batched
        )
        if use_stage and not exact_structure and i == last:
            # Hand-off to the exact stack: drop cells whose structured
            # iterate is outside the exact domain.
            vals = batched.barrier_value(x[:, live], live)
            good = np.isfinite(vals)
            if not np.all(good):
                handoff_failed[live[~good]] = True
                live = live[good]
                if live.size == 0:
                    break
        outcome = minimize_newton_batch(
            stage_function(t_weight, comp, live),
            x[:, live],
            newton_opts,
            value_func=stage_value_function(t_weight, comp, live),
        )
        x[:, live] = outcome.x
        iterations[live] += outcome.iterations
        converged[live] = outcome.converged

    final_violation = batched.max_violation(x, all_cols)
    return [
        SolveResult(
            # A cell whose final stage exhausted its Newton budget is not
            # at the stage center; report MAX_ITERATIONS so callers
            # re-solve it serially instead of trusting the point.  Same
            # for cells dropped at the structured hand-off.
            status=(
                SolveStatus.OPTIMAL
                if converged[j]
                and m / t < opts.gap_tol
                and not handoff_failed[j]
                else SolveStatus.MAX_ITERATIONS
            ),
            x=x[:, j].copy(),
            objective=float(c @ x[:, j]),
            iterations=int(iterations[j]),
            duality_gap=m / t,
            max_violation=float(final_violation[j]),
        )
        for j in range(batch)
    ]


def _dual_estimates(
    blocks: list[ConstraintBlock], x: np.ndarray, t: float
) -> np.ndarray:
    """Barrier dual estimates ``lambda_i = 1 / (t * (-f_i(x)))``."""
    duals = []
    for block in blocks:
        res = block.residuals(x)
        duals.append(1.0 / (t * np.maximum(-res, 1e-300)))
    return np.concatenate(duals) if duals else np.zeros(0)
