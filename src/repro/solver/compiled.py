"""Precompiled constraint stacks for fast repeated barrier evaluation.

The barrier solver's inner loop evaluates the log-barrier of every
constraint block at every Newton step.  The generic path walks the block
list in Python, paying one set of allocations and one small GEMM per block
per evaluation.  For the Pro-Temp program family that loop is pure
overhead: all but one block are linear (`LinearInequality`) or separable
(`BoxConstraint`), so their barrier terms can be evaluated in a handful of
vectorized operations over one stacked matrix.

:class:`CompiledConstraints` performs that stacking **once**:

* all ``LinearInequality`` rows are concatenated into a single matrix
  ``A`` / vector ``b`` whose barrier is evaluated as ``A.T @ w`` and
  ``(A * w).T @ A`` (one GEMV + one GEMM per evaluation, regardless of how
  many linear blocks the problem was assembled from);
* all ``BoxConstraint`` bounds are concatenated into flat index/bound
  arrays whose barrier contribution is diagonal and fully vectorized;
* any other block (in practice the single `SqrtSumConstraint`) is kept as
  an opaque fallback evaluated through the generic
  ``ConstraintBlock.barrier`` protocol.

Because the stacked matrix depends only on the problem *structure* — not
on right-hand sides — a compiled stack can be cheaply rebound to a new
block list with identical shape via :meth:`CompiledConstraints.with_blocks`.
This is what makes Phase-1 table sweeps fast: across a
(temperature x frequency) grid only the RHS offsets and the sqrt target
change, so the matrix stack is compiled once per sweep and shared by every
cell (see `repro.core.protemp.ProTempOptimizer`).

Two further sweep fast paths build on the stacked form:

* **Sparse row pruning** — :meth:`CompiledConstraints.prune_linear_rows`
  keeps only a caller-chosen subset of the stacked linear rows (the rows
  observed near-active at previous optima; most thermal step rows never
  are).  The pruned program is a relaxation, so its solution must be
  re-checked against the full stack (`max_violation`) — see
  `repro.core.protemp.ProTempOptimizer` for the fallback protocol that
  makes this sound.
* **Batched multi-cell evaluation** — :class:`BatchedCompiledConstraints`
  binds one shared matrix to *several* cells' right-hand sides and
  evaluates every cell's barrier in one set of matrix products
  (``A @ X`` over a column per cell), which removes the per-cell Python
  dispatch overhead that dominates small-platform sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.solver.problem import (
    SLACK_FLOOR,
    BoxConstraint,
    ConstraintBlock,
    LinearInequality,
)


def stack_flat_rows(
    blocks: list[ConstraintBlock], n_vars: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack linear and box blocks into one ``A x <= b`` system.

    Box bounds are expanded to ``+/- e_i`` rows (per block: all lower
    rows, then all upper rows), matching the residual convention of
    `BoxConstraint`.  Used by phase I, which needs a uniform row-wise
    view of the flat constraints.

    Raises:
        SolverError: on a block type with non-constant Jacobian.
    """
    a_parts: list[np.ndarray] = []
    b_parts: list[np.ndarray] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            a_parts.append(block.a)
            b_parts.append(block.b)
        elif isinstance(block, BoxConstraint):
            k = len(block.indices)
            rows = np.zeros((2 * k, n_vars))
            arange = np.arange(k)
            rows[arange, block.indices] = -1.0  # lower - x <= 0
            rows[k + arange, block.indices] = 1.0  # x - upper <= 0
            a_parts.append(rows)
            b_parts.append(np.concatenate([-block.lower, block.upper]))
        else:
            raise SolverError(
                f"cannot stack non-flat block {type(block).__name__}"
            )
    if not a_parts:
        return np.zeros((0, n_vars)), np.zeros(0)
    return (
        np.ascontiguousarray(np.vstack(a_parts)),
        np.concatenate(b_parts),
    )


@dataclass(frozen=True)
class PairFold:
    """Exact +/- antisymmetry fold of paired linear rows.

    The pairwise-gradient constraints come in ordered pairs whose rows are
    exact mirrors around a shared symmetric part ``c`` (for the Pro-Temp
    program, ``c`` is the ``t_grad`` column)::

        a[plus[k]]  = c + d[k]
        a[minus[k]] = c - d[k]

    Both barrier terms of a pair can then be evaluated from *one* product
    ``d @ x`` plus the scalar ``c @ x`` — halving the dominant GEMV/GEMM —
    and their Hessian contribution collapses to one GEMM over ``d`` plus a
    rank-two ``c`` correction:

        H = (d * (s+^-2 + s-^-2)).T @ d
            + w c^T + c w^T + (sum s+^-2 + s-^-2) c c^T,
        w = d.T @ (s+^-2 - s-^-2).

    Construction is *validated exactly*: :meth:`detect` refuses any pairing
    whose rows do not reconstruct bit-for-bit as ``c ± d`` (callers fall
    back to the unfolded stack), so the fold is pure algebra — it changes
    floating-point rounding, never the represented constraints.

    Attributes:
        plus: row indices of the ``c + d`` members, shape (n_pairs,).
        minus: row indices of the ``c - d`` members, shape (n_pairs,).
        d: antisymmetric parts, shape (n_pairs, n_vars).
        c: shared symmetric part, shape (n_vars,).
    """

    plus: np.ndarray
    minus: np.ndarray
    d: np.ndarray
    c: np.ndarray

    @classmethod
    def detect(
        cls, a: np.ndarray, plus: np.ndarray, minus: np.ndarray
    ) -> "PairFold | None":
        """Validated fold of ``a`` rows paired as ``(plus[k], minus[k])``.

        Returns None unless every pair reconstructs exactly: the symmetric
        part must be identical across pairs and ``c + d`` / ``c - d`` must
        reproduce the original rows bit-for-bit.
        """
        plus = np.asarray(plus, dtype=int)
        minus = np.asarray(minus, dtype=int)
        if plus.shape != minus.shape or plus.ndim != 1 or plus.size == 0:
            return None
        rows_plus = a[plus]
        rows_minus = a[minus]
        double_c = rows_plus + rows_minus
        c = double_c[0] / 2.0
        if not np.array_equal(double_c, np.broadcast_to(2.0 * c, double_c.shape)):
            return None
        d = rows_plus - c
        if not np.array_equal(c + d, rows_plus):
            return None
        if not np.array_equal(c - d, rows_minus):
            return None
        return cls(
            plus=plus,
            minus=minus,
            d=np.ascontiguousarray(d),
            c=np.ascontiguousarray(c),
        )


@dataclass(frozen=True)
class RankTail:
    """Rank-structured representation of geometrically converging rows.

    The thermal step-response rows converge to steady state, so the family
    ``a[row(t, g)]`` (step ``t``, node ``g``) deviates from its final-step
    rows by a matrix with rapidly decaying singular values.  This stores
    the final-step rows as a *base* plus a rank-``r`` correction::

        a[row(t, g)] ~= base[g] + sum_r coeffs[t, r] * dirs[r, g]

    so slack/value/gradient evaluation touches ``(1 + r) * n_groups`` rows
    instead of ``n_steps * n_groups``.  The approximation error is
    **certified** at construction: ``bound`` is the worst-case slack error
    ``max_{t,g} sum_j |residual[t,g,j]| * x_bound[j]`` over the variable
    box, and :meth:`build` refuses to compress when the requested tolerance
    cannot be met.  The final step's coefficients are zeroed exactly, so
    the most-converged (and most often active) rows are represented
    without error.  Hessian accumulation keeps the exact rows (`tail_a`):
    at this problem's variable count a rank expansion of the GEMM would
    cost more than it saves, and exact rows add no approximation error.

    Attributes:
        rows: indices of the represented rows, step-major, shape
            (n_steps * n_groups,).
        n_steps: number of step blocks.
        n_groups: rows per step block.
        base: final-step rows, shape (n_groups, n_vars).
        coeffs: per-step correction coefficients, shape (n_steps, rank).
        dirs_flat: correction directions, shape (rank * n_groups, n_vars)
            (row-major over (rank, group)).
        tail_a: exact represented rows, contiguous, shape
            (n_steps * n_groups, n_vars) — used for Hessian accumulation.
        bound: certified worst-case absolute slack error over the box.
    """

    rows: np.ndarray
    n_steps: int
    n_groups: int
    base: np.ndarray
    coeffs: np.ndarray
    dirs_flat: np.ndarray
    tail_a: np.ndarray
    bound: float

    @property
    def rank(self) -> int:
        """Rank of the correction term."""
        return int(self.coeffs.shape[1])

    @classmethod
    def build(
        cls,
        a: np.ndarray,
        rows: np.ndarray,
        n_steps: int,
        n_groups: int,
        x_bound: np.ndarray,
        tol: float,
        max_rank: int = 16,
    ) -> "RankTail | None":
        """Compress ``a[rows]`` to the smallest rank meeting `tol`.

        Args:
            a: full row matrix.
            rows: indices of the rows to represent, step-major
                (``rows[t * n_groups + g]`` is step ``t``, group ``g``).
            n_steps: step blocks (must satisfy
                ``len(rows) == n_steps * n_groups``).
            n_groups: rows per step block.
            x_bound: per-variable bound ``max |x_j|`` over the feasible
                box, used to certify the slack error.
            tol: maximum certified slack error accepted.
            max_rank: rank ceiling; beyond it compression is refused.

        Returns:
            The tail, or None when no rank within `max_rank` certifies
            `tol` (callers must fall back to the exact stack).
        """
        rows = np.asarray(rows, dtype=int)
        if rows.size != n_steps * n_groups or n_steps < 2:
            return None
        x_bound = np.asarray(x_bound, dtype=float)
        tail_a = np.ascontiguousarray(a[rows])
        stacked = tail_a.reshape(n_steps, n_groups, -1)
        base = np.ascontiguousarray(stacked[-1])
        deviations = (stacked - base).reshape(n_steps, -1)
        u, sing, vt = np.linalg.svd(deviations, full_matrices=False)
        limit = min(max_rank, sing.size)
        for rank in range(limit + 1):
            coeffs = u[:, :rank] * sing[:rank]
            # The final step *is* the base: zero its coefficients exactly
            # so the most-converged rows carry no approximation error.
            coeffs[-1, :] = 0.0
            residual = deviations - coeffs @ vt[:rank]
            slack_err = np.abs(
                residual.reshape(n_steps, n_groups, -1)
            ) @ x_bound
            bound = float(slack_err.max())
            if bound <= tol:
                n_vars = tail_a.shape[1]
                # Cost gate: per group, the exact rows cost n_steps * n_vars
                # flops per slack evaluation while the expansion costs
                # n_vars * (1 + rank) + n_steps * rank.  A certified rank
                # that does not at least halve that work is refused — for
                # slow thermal transients (horizon shorter than the settling
                # time) the deviations span nearly the full variable space
                # and the "compression" would only add overhead.
                if (
                    n_vars * (1 + rank) + n_steps * rank
                    > (n_steps * n_vars) // 2
                ):
                    return None
                return cls(
                    rows=rows,
                    n_steps=int(n_steps),
                    n_groups=int(n_groups),
                    base=base,
                    coeffs=np.ascontiguousarray(coeffs),
                    dirs_flat=np.ascontiguousarray(
                        vt[:rank].reshape(rank * n_groups, n_vars)
                    ),
                    tail_a=tail_a,
                    bound=bound,
                )
        return None


@dataclass(frozen=True)
class CompiledStructure:
    """Structure-exploiting evaluation plan for a stacked row matrix.

    Partitions the linear rows of one :class:`CompiledConstraints` matrix
    into an antisymmetry :class:`PairFold`, a rank-structured
    :class:`RankTail`, and an exact remainder.  The plan depends only on
    the matrix part — never on right-hand sides — so one structure is
    shared by every RHS rebind of a compiled template across a sweep.

    A stack carrying a structure with a tail evaluates its barrier
    *approximately* (within the tail's certified ``bound``); feasibility
    checks (`max_violation`, `linear_slacks`) always use the exact rows.
    Solvers must therefore only use tailed structures for non-final
    barrier stages and verify the hand-off point against the exact stack
    (see `repro.solver.barrier.solve_barrier`).

    Attributes:
        fold: exact pair fold, or None.
        tail: rank-structured tail, or None.
        rest: indices of rows in neither part, shape (m_rest,).
        rest_a: contiguous copy of those rows.
    """

    fold: PairFold | None
    tail: RankTail | None
    rest: np.ndarray
    rest_a: np.ndarray

    @classmethod
    def build(
        cls,
        a: np.ndarray,
        *,
        pair_plus: np.ndarray | None = None,
        pair_minus: np.ndarray | None = None,
        tail_rows: np.ndarray | None = None,
        tail_steps: int = 0,
        tail_groups: int = 0,
        x_bound: np.ndarray | None = None,
        tail_tol: float = 0.0,
        tail_max_rank: int = 16,
    ) -> "CompiledStructure | None":
        """Build a structure plan for `a`, validating every part.

        Either part may independently fail validation (rows that are not
        exact mirrors; a tail whose certified error exceeds `tail_tol`) —
        the failed part is simply omitted.  Returns None when nothing
        could be exploited.
        """
        m = a.shape[0]
        fold = None
        if pair_plus is not None and pair_minus is not None:
            fold = PairFold.detect(a, pair_plus, pair_minus)
        tail = None
        if tail_rows is not None and x_bound is not None:
            tail = RankTail.build(
                a,
                tail_rows,
                tail_steps,
                tail_groups,
                x_bound,
                tail_tol,
                tail_max_rank,
            )
        if fold is None and tail is None:
            return None
        covered = np.zeros(m, dtype=bool)
        if fold is not None:
            covered[fold.plus] = True
            covered[fold.minus] = True
        if tail is not None:
            covered[tail.rows] = True
        rest = np.nonzero(~covered)[0]
        return cls(
            fold=fold,
            tail=tail,
            rest=rest,
            rest_a=np.ascontiguousarray(a[rest]),
        )

    def without_tail(self, a: np.ndarray) -> "CompiledStructure | None":
        """Fold-only variant of this plan (tail rows move to the exact rest)."""
        if self.tail is None:
            return self
        if self.fold is None:
            return None
        rest = np.sort(np.concatenate([self.rest, self.tail.rows]))
        return CompiledStructure(
            fold=self.fold,
            tail=None,
            rest=rest,
            rest_a=np.ascontiguousarray(a[rest]),
        )

    def bind_rhs(self, b: np.ndarray) -> "StructureRHS":
        """Gather `b` into the plan's row partition, once per RHS bind.

        The structured kernels index the right-hand sides by fold/tail/rest
        rows on *every* barrier evaluation; at this problem's size those
        fancy-index gathers cost as much as the GEMV they accompany.
        Binding them once per stack (`with_structure` snapshots the result)
        moves the cost out of the Newton inner loop.  Accepts both serial
        ``(m,)`` and batched ``(m, batch)`` right-hand sides.
        """
        return StructureRHS(
            plus=(
                np.ascontiguousarray(b[self.fold.plus])
                if self.fold is not None
                else None
            ),
            minus=(
                np.ascontiguousarray(b[self.fold.minus])
                if self.fold is not None
                else None
            ),
            tail=(
                np.ascontiguousarray(b[self.tail.rows])
                if self.tail is not None
                else None
            ),
            rest=np.ascontiguousarray(b[self.rest]),
        )


@dataclass(frozen=True)
class StructureRHS:
    """Right-hand sides gathered into a :class:`CompiledStructure` partition.

    A pure cache: ``plus``/``minus``/``tail``/``rest`` are copies of the
    stack's ``b`` at the plan's row indices, shaped like the ``b`` they were
    gathered from (``(rows,)`` serial, ``(rows, batch)`` batched).  Because
    it snapshots ``b``, it must be (re)built after any RHS mutation —
    :meth:`CompiledConstraints.with_structure` and friends do this; callers
    that tighten ``b`` in place must do so *before* attaching a structure.
    """

    plus: np.ndarray | None
    minus: np.ndarray | None
    tail: np.ndarray | None
    rest: np.ndarray

    def select(self, cols: np.ndarray) -> "StructureRHS":
        """Batched cache restricted to the cells in index array `cols`."""
        return StructureRHS(
            plus=self.plus[:, cols] if self.plus is not None else None,
            minus=self.minus[:, cols] if self.minus is not None else None,
            tail=self.tail[:, cols] if self.tail is not None else None,
            rest=self.rest[:, cols],
        )


def blocks_signature(
    blocks: list[ConstraintBlock],
) -> tuple[tuple[str, int], ...]:
    """Structural fingerprint of a block list: per-block ``(kind, rows)``.

    Two block lists with equal signatures can share one compiled matrix
    stack (see :meth:`CompiledConstraints.with_blocks`).
    """
    signature: list[tuple[str, int]] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            signature.append(("linear", block.a.shape[0]))
        elif isinstance(block, BoxConstraint):
            signature.append(("box", len(block.indices)))
        else:
            signature.append((type(block).__name__, block.count()))
    return tuple(signature)


@dataclass(frozen=True)
class CompiledConstraints:
    """A constraint-block list compiled to stacked arrays.

    Build with :meth:`compile`; rebind right-hand sides with
    :meth:`with_blocks`.

    Attributes:
        a: stacked ``LinearInequality`` rows, shape (m_lin, n_vars).
        b: stacked right-hand sides, shape (m_lin,).
        box_indices: concatenated box-constraint variable indices.
        box_lower: concatenated lower bounds (aligned with `box_indices`).
        box_upper: concatenated upper bounds (aligned with `box_indices`).
        nonlinear: blocks evaluated through the generic barrier protocol.
        n_vars: dimensionality of the variable vector.
        signature: per-block structural fingerprint ``(kind, rows)`` used to
            decide whether a block list is shape-compatible with this stack.
        structure: optional :class:`CompiledStructure` evaluation plan; when
            set, :meth:`barrier` and :meth:`barrier_value` evaluate the
            linear rows through the fold/rank-tail fast path (feasibility
            checks always stay exact).  Attach with :meth:`with_structure`.
    """

    a: np.ndarray
    b: np.ndarray
    box_indices: np.ndarray
    box_lower: np.ndarray
    box_upper: np.ndarray
    nonlinear: tuple[ConstraintBlock, ...]
    n_vars: int
    signature: tuple[tuple[str, int], ...]
    box_unique: bool = True
    structure: CompiledStructure | None = None
    structure_rhs: StructureRHS | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(
        cls, blocks: list[ConstraintBlock], n_vars: int
    ) -> "CompiledConstraints":
        """Stack `blocks` into vectorized form.

        Args:
            blocks: constraint blocks (any mix of types; unknown types fall
                back to their own ``barrier``/``residuals`` methods).
            n_vars: dimensionality of the variable vector.

        Returns:
            The compiled stack.
        """
        a_parts: list[np.ndarray] = []
        b_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        lo_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        nonlinear: list[ConstraintBlock] = []
        for block in blocks:
            if isinstance(block, LinearInequality):
                if block.a.shape[1] != n_vars:
                    raise SolverError(
                        f"linear block has {block.a.shape[1]} columns, "
                        f"expected {n_vars}"
                    )
                a_parts.append(block.a)
                b_parts.append(block.b)
            elif isinstance(block, BoxConstraint):
                idx_parts.append(block.indices)
                lo_parts.append(block.lower)
                hi_parts.append(block.upper)
            else:
                nonlinear.append(block)
        a = (
            np.ascontiguousarray(np.vstack(a_parts))
            if a_parts
            else np.zeros((0, n_vars))
        )
        b = np.concatenate(b_parts) if b_parts else np.zeros(0)
        box_indices = (
            np.concatenate(idx_parts) if idx_parts else np.zeros(0, dtype=int)
        )
        return cls(
            a=a,
            b=b,
            box_indices=box_indices,
            box_lower=np.concatenate(lo_parts) if lo_parts else np.zeros(0),
            box_upper=np.concatenate(hi_parts) if hi_parts else np.zeros(0),
            nonlinear=tuple(nonlinear),
            n_vars=int(n_vars),
            signature=blocks_signature(blocks),
            box_unique=bool(
                len(np.unique(box_indices)) == len(box_indices)
            ),
        )

    def with_blocks(
        self, blocks: list[ConstraintBlock]
    ) -> "CompiledConstraints":
        """Rebind RHS data from a structurally identical block list.

        Reuses the stacked matrix ``a`` (the expensive part) and re-reads
        only the right-hand sides, bounds and nonlinear blocks.  The caller
        guarantees the linear rows of `blocks` are numerically equal to the
        compiled ones — true across a Phase-1 sweep, where the response
        matrix depends only on the platform, never on the design point.

        Raises:
            SolverError: when the structure differs (block kinds or row
                counts); callers should fall back to :meth:`compile`.
        """
        if blocks_signature(blocks) != self.signature:
            raise SolverError(
                "block list is not structure-compatible with compiled stack"
            )
        b_parts = [
            block.b for block in blocks if isinstance(block, LinearInequality)
        ]
        boxes = [block for block in blocks if isinstance(block, BoxConstraint)]
        if boxes and not np.array_equal(
            np.concatenate([box.indices for box in boxes]), self.box_indices
        ):
            raise SolverError(
                "box-constraint indices differ from the compiled stack"
            )
        nonlinear = tuple(
            block
            for block in blocks
            if not isinstance(block, (LinearInequality, BoxConstraint))
        )
        b = np.concatenate(b_parts) if b_parts else np.zeros(0)
        return CompiledConstraints(
            a=self.a,
            b=b,
            box_indices=self.box_indices,
            box_lower=(
                np.concatenate([box.lower for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            box_upper=(
                np.concatenate([box.upper for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            nonlinear=nonlinear,
            n_vars=self.n_vars,
            signature=self.signature,
            box_unique=self.box_unique,
            structure=self.structure,
            structure_rhs=(
                self.structure.bind_rhs(b)
                if self.structure is not None
                else None
            ),
        )

    def with_structure(
        self, structure: CompiledStructure | None
    ) -> "CompiledConstraints":
        """This stack with a (possibly absent) structure plan attached.

        Snapshots the structure-partitioned right-hand sides
        (:class:`StructureRHS`), so any in-place tightening of ``b`` must
        happen *before* this call.
        """
        from dataclasses import replace

        return replace(
            self,
            structure=structure,
            structure_rhs=(
                structure.bind_rhs(self.b) if structure is not None else None
            ),
        )

    def prune_linear_rows(self, keep: np.ndarray) -> "CompiledConstraints":
        """Stack with only the linear rows selected by boolean mask `keep`.

        Box and nonlinear blocks are preserved untouched.  The pruned stack
        describes a *relaxation* of the original program: a solution found
        against it is optimal for the full program only if it also
        satisfies the dropped rows — callers must re-check with the full
        stack's :meth:`max_violation` and fall back on violation.

        Args:
            keep: boolean mask over the ``a`` rows, shape (m_lin,).

        Returns:
            A new :class:`CompiledConstraints` whose signature reflects the
            reduced row count (it is *not* `with_blocks`-compatible with
            the full stack).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.a.shape[0],):
            raise SolverError(
                f"prune mask has shape {keep.shape}, expected "
                f"({self.a.shape[0]},)"
            )
        signature = (("linear", int(keep.sum())),) + tuple(
            s for s in self.signature if s[0] != "linear"
        )
        return CompiledConstraints(
            a=np.ascontiguousarray(self.a[keep]),
            b=self.b[keep],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            nonlinear=self.nonlinear,
            n_vars=self.n_vars,
            signature=signature,
            box_unique=self.box_unique,
        )

    # -- evaluation ---------------------------------------------------------

    def linear_slacks(self, x: np.ndarray) -> np.ndarray:
        """Slacks ``b - A x`` of the stacked linear rows (> 0 inside)."""
        return self.b - self.a @ x

    def _structured_linear(
        self, x: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray] | None:
        """Linear-row barrier terms through the structure plan.

        Returns ``(value, grad, hess)`` contributions of the stacked
        linear rows, or None when any (tail-approximated) slack hits the
        floor.  Pure algebraic reorganization for the fold and rest parts;
        the tail's slack/value/gradient carry its certified error bound
        while its Hessian uses the exact rows.
        """
        st = self.structure
        n = self.n_vars
        rhs = (
            self.structure_rhs
            if self.structure_rhs is not None
            else st.bind_rhs(self.b)
        )
        value = 0.0
        grad = np.zeros(n)
        hess = np.zeros((n, n))

        fold = st.fold
        if fold is not None:
            u = fold.d @ x
            v = float(fold.c @ x)
            sp = rhs.plus - u - v
            sm = rhs.minus + u - v
            if min(sp.min(), sm.min()) <= SLACK_FLOOR:
                return None
            ip = 1.0 / sp
            im = 1.0 / sm
            value -= float(np.log(sp * sm).sum())
            grad += fold.d.T @ (ip - im)
            grad += fold.c * float((ip + im).sum())
            ip2 = ip * ip
            im2 = im * im
            w2 = ip2 + im2
            hess += (fold.d * w2[:, None]).T @ fold.d
            wd = fold.d.T @ (ip2 - im2)
            hess += np.outer(wd, fold.c) + np.outer(fold.c, wd)
            hess += float(w2.sum()) * np.outer(fold.c, fold.c)

        tail = st.tail
        if tail is not None:
            bt = rhs.tail.reshape(tail.n_steps, tail.n_groups)
            base_x = tail.base @ x  # (G,)
            dir_x = (tail.dirs_flat @ x).reshape(-1, tail.n_groups)
            sx = bt - base_x[None, :] - tail.coeffs @ dir_x  # (T, G)
            if sx.min() <= SLACK_FLOOR:
                return None
            it = 1.0 / sx
            value -= float(np.log(sx).sum())
            grad += tail.base.T @ it.sum(axis=0)
            weights = (tail.coeffs.T @ it).reshape(-1)  # (r * G,)
            grad += tail.dirs_flat.T @ weights
            it2 = (it * it).reshape(-1)
            hess += (tail.tail_a * it2[:, None]).T @ tail.tail_a

        if st.rest.size:
            sr = rhs.rest - st.rest_a @ x
            if sr.min() <= SLACK_FLOOR:
                return None
            ir = 1.0 / sr
            value -= float(np.log(sr).sum())
            grad += st.rest_a.T @ ir
            hess += (st.rest_a * (ir * ir)[:, None]).T @ st.rest_a
        return value, grad, hess

    def _structured_linear_value(self, x: np.ndarray) -> float:
        """Value-only counterpart of :meth:`_structured_linear` (no GEMM)."""
        st = self.structure
        rhs = (
            self.structure_rhs
            if self.structure_rhs is not None
            else st.bind_rhs(self.b)
        )
        value = 0.0
        fold = st.fold
        if fold is not None:
            u = fold.d @ x
            v = float(fold.c @ x)
            sp = rhs.plus - u - v
            sm = rhs.minus + u - v
            if min(sp.min(), sm.min()) <= SLACK_FLOOR:
                return np.inf
            value -= float(np.log(sp * sm).sum())
        tail = st.tail
        if tail is not None:
            bt = rhs.tail.reshape(tail.n_steps, tail.n_groups)
            base_x = tail.base @ x
            dir_x = (tail.dirs_flat @ x).reshape(-1, tail.n_groups)
            sx = bt - base_x[None, :] - tail.coeffs @ dir_x
            if sx.min() <= SLACK_FLOOR:
                return np.inf
            value -= float(np.log(sx).sum())
        if st.rest.size:
            sr = rhs.rest - st.rest_a @ x
            if sr.min() <= SLACK_FLOOR:
                return np.inf
            value -= float(np.log(sr).sum())
        return value

    def barrier_value(self, x: np.ndarray) -> float:
        """Barrier value alone — the line-search fast path.

        Identical arithmetic to ``barrier(x)[0]`` (bit-for-bit), skipping
        every gradient/Hessian product.  Newton line searches only need
        values at trial points, and for this problem family the Hessian
        GEMM dominates a full evaluation.
        """
        value = 0.0
        if self.a.shape[0]:
            if self.structure is not None:
                lin = self._structured_linear_value(x)
                if not np.isfinite(lin):
                    return np.inf
                value += lin
            else:
                slack = self.b - self.a @ x
                if np.any(slack <= SLACK_FLOOR):
                    return np.inf
                value -= float(np.log(slack).sum())
        if self.box_indices.size:
            vals = x[self.box_indices]
            lo_slack = vals - self.box_lower
            hi_slack = self.box_upper - vals
            if np.any(lo_slack <= SLACK_FLOOR) or np.any(
                hi_slack <= SLACK_FLOOR
            ):
                return np.inf
            value -= float(
                np.log(lo_slack).sum() + np.log(hi_slack).sum()
            )
        for block in self.nonlinear:
            b_val = block.barrier(x)[0]
            if not np.isfinite(b_val):
                return np.inf
            value += b_val
        return value

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        """Value, gradient and Hessian of the total log barrier at `x`.

        Equivalent to summing ``block.barrier(x)`` over the original block
        list, but the linear and box parts are evaluated in stacked
        vectorized form.  Returns ``(inf, garbage, garbage)`` outside the
        domain, matching the `ConstraintBlock` protocol.
        """
        n = self.n_vars
        value = 0.0
        grad = np.zeros(n)
        hess = np.zeros((n, n))

        if self.a.shape[0] and self.structure is not None:
            lin = self._structured_linear(x)
            if lin is None:
                return np.inf, grad, hess
            value += lin[0]
            grad += lin[1]
            hess += lin[2]
        elif self.a.shape[0]:
            slack = self.b - self.a @ x
            if np.any(slack <= SLACK_FLOOR):
                return np.inf, grad, hess
            inv = 1.0 / slack
            value -= float(np.log(slack).sum())
            grad += self.a.T @ inv
            hess += (self.a * (inv * inv)[:, None]).T @ self.a

        if self.box_indices.size:
            vals = x[self.box_indices]
            lo_slack = vals - self.box_lower
            hi_slack = self.box_upper - vals
            if np.any(lo_slack <= SLACK_FLOOR) or np.any(
                hi_slack <= SLACK_FLOOR
            ):
                return np.inf, grad, hess
            value -= float(
                np.log(lo_slack).sum() + np.log(hi_slack).sum()
            )
            inv_lo = 1.0 / lo_slack
            inv_hi = 1.0 / hi_slack
            if self.box_unique:
                grad[self.box_indices] += -inv_lo + inv_hi
                hess[self.box_indices, self.box_indices] += (
                    inv_lo * inv_lo + inv_hi * inv_hi
                )
            else:
                # np.add.at tolerates repeated indices across stacked boxes.
                np.add.at(grad, self.box_indices, -inv_lo + inv_hi)
                diag = np.zeros(n)
                np.add.at(
                    diag, self.box_indices, inv_lo * inv_lo + inv_hi * inv_hi
                )
                hess[np.diag_indices(n)] += diag

        for block in self.nonlinear:
            b_val, b_grad, b_hess = block.barrier(x)
            if not np.isfinite(b_val):
                return np.inf, grad, hess
            value += b_val
            grad += b_grad
            hess += b_hess
        return value, grad, hess

    def max_violation(self, x: np.ndarray) -> float:
        """Largest constraint residual at `x` (<= 0 means feasible)."""
        worst = -np.inf
        if self.a.shape[0]:
            worst = max(worst, float(np.max(self.a @ x - self.b)))
        if self.box_indices.size:
            vals = x[self.box_indices]
            worst = max(worst, float(np.max(self.box_lower - vals)))
            worst = max(worst, float(np.max(vals - self.box_upper)))
        for block in self.nonlinear:
            worst = max(worst, float(np.max(block.residuals(x))))
        if worst == -np.inf:
            return 0.0
        return worst

    def count(self) -> int:
        """Total number of scalar constraints."""
        return (
            int(self.a.shape[0])
            + 2 * int(self.box_indices.size)
            + sum(block.count() for block in self.nonlinear)
        )


@dataclass(frozen=True)
class BatchedCompiledConstraints:
    """One shared constraint matrix bound to several cells' RHS vectors.

    The Pro-Temp sweep solves many structurally identical programs that
    differ only in right-hand sides: thermal/gradient offsets vary with the
    starting temperature and the sqrt target with the frequency column.
    This class evaluates the log barrier of *all* cells at once — slack,
    value and gradient of every cell come out of single ``(m, B)``-shaped
    matrix products instead of one Python round-trip per cell — which is
    what `repro.solver.barrier.solve_barrier_batch` iterates over.

    Only the block family used by the Pro-Temp program is supported:
    stacked linear rows (shared matrix, per-cell ``b``), shared box bounds
    with unique indices, and at most one sqrt-sum constraint with shared
    weights and per-cell targets.

    Attributes:
        a: shared linear rows, shape (m_lin, n_vars).
        b: per-cell right-hand sides, shape (m_lin, batch).
        box_indices: shared box variable indices (must be unique).
        box_lower: shared lower bounds.
        box_upper: shared upper bounds.
        sqrt_weights: sqrt-sum weights shared by all cells (or None).
        sqrt_indices: sqrt-sum variable indices (or None).
        sqrt_targets: per-cell sqrt-sum targets, shape (batch,) (or None).
        n_vars: dimensionality of each cell's variable vector.
        structure: optional shared :class:`CompiledStructure` plan (the
            matrix is shared, so one plan serves every cell); same
            semantics as on :class:`CompiledConstraints`.
    """

    a: np.ndarray
    b: np.ndarray
    box_indices: np.ndarray
    box_lower: np.ndarray
    box_upper: np.ndarray
    sqrt_weights: np.ndarray | None
    sqrt_indices: np.ndarray | None
    sqrt_targets: np.ndarray | None
    n_vars: int
    structure: CompiledStructure | None = None
    structure_rhs: StructureRHS | None = None

    @classmethod
    def from_cells(
        cls, cells: list[CompiledConstraints]
    ) -> "BatchedCompiledConstraints":
        """Bind the shared matrix of per-cell compiled stacks to a batch.

        Args:
            cells: per-cell stacks produced by `with_blocks` rebinds of one
                compiled template (identical matrix part and signature).

        Raises:
            SolverError: when the cells do not share structure, a box index
                repeats, or a nonlinear block is not a lone sqrt-sum with
                shared weights.
        """
        from repro.solver.problem import SqrtSumConstraint  # avoid cycle

        if not cells:
            raise SolverError("batched stack needs at least one cell")
        first = cells[0]
        for cell in cells[1:]:
            if cell.signature != first.signature or cell.a.shape != first.a.shape:
                raise SolverError("batched cells must share structure")
            if cell.a is not first.a and not np.array_equal(cell.a, first.a):
                raise SolverError("batched cells must share the matrix part")
            if not np.array_equal(cell.box_indices, first.box_indices):
                raise SolverError("batched cells must share box indices")
            if not np.array_equal(
                cell.box_lower, first.box_lower
            ) or not np.array_equal(cell.box_upper, first.box_upper):
                raise SolverError("batched cells must share box bounds")
        if not first.box_unique:
            raise SolverError("batched stack needs unique box indices")
        sqrt_weights = sqrt_indices = sqrt_targets = None
        if first.nonlinear:
            if len(first.nonlinear) != 1 or not isinstance(
                first.nonlinear[0], SqrtSumConstraint
            ):
                raise SolverError(
                    "batched stack supports at most one sqrt-sum block"
                )
            blocks = [cell.nonlinear[0] for cell in cells]
            sqrt_weights = np.asarray(blocks[0].weights, dtype=float)
            sqrt_indices = np.asarray(blocks[0].indices, dtype=int)
            for block in blocks[1:]:
                if not np.array_equal(block.weights, sqrt_weights):
                    raise SolverError(
                        "batched cells must share sqrt weights"
                    )
            sqrt_targets = np.array(
                [float(block.target) for block in blocks]
            )
        b = np.column_stack([cell.b for cell in cells])
        structure = (
            first.structure
            if all(cell.structure is first.structure for cell in cells)
            else None
        )
        return cls(
            a=first.a,
            b=b,
            box_indices=first.box_indices,
            box_lower=first.box_lower,
            box_upper=first.box_upper,
            sqrt_weights=sqrt_weights,
            sqrt_indices=sqrt_indices,
            sqrt_targets=sqrt_targets,
            n_vars=first.n_vars,
            structure=structure,
            structure_rhs=(
                structure.bind_rhs(b) if structure is not None else None
            ),
        )

    def with_structure(
        self, structure: CompiledStructure | None
    ) -> "BatchedCompiledConstraints":
        """This stack with a (possibly absent) structure plan attached.

        Snapshots the structure-partitioned right-hand sides
        (:class:`StructureRHS`), so any in-place tightening of ``b`` must
        happen *before* this call.
        """
        from dataclasses import replace

        return replace(
            self,
            structure=structure,
            structure_rhs=(
                structure.bind_rhs(self.b) if structure is not None else None
            ),
        )

    @property
    def batch(self) -> int:
        """Number of cells bound to the shared matrix."""
        return int(self.b.shape[1]) if self.b.ndim == 2 else 0

    def count(self) -> int:
        """Scalar constraints per cell (identical across the batch)."""
        return (
            int(self.a.shape[0])
            + 2 * int(self.box_indices.size)
            + (1 if self.sqrt_targets is not None else 0)
        )

    def select(self, cols: np.ndarray) -> "BatchedCompiledConstraints":
        """Stack bound to only the cells selected by index array `cols`."""
        cols = np.asarray(cols, dtype=int)
        return BatchedCompiledConstraints(
            a=self.a,
            b=self.b[:, cols],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            sqrt_weights=self.sqrt_weights,
            sqrt_indices=self.sqrt_indices,
            sqrt_targets=(
                self.sqrt_targets[cols]
                if self.sqrt_targets is not None
                else None
            ),
            n_vars=self.n_vars,
            structure=self.structure,
            structure_rhs=(
                self.structure_rhs.select(cols)
                if self.structure_rhs is not None
                else None
            ),
        )

    def prune_linear_rows(
        self, keep: np.ndarray
    ) -> "BatchedCompiledConstraints":
        """Batched analogue of `CompiledConstraints.prune_linear_rows`."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.a.shape[0],):
            raise SolverError(
                f"prune mask has shape {keep.shape}, expected "
                f"({self.a.shape[0]},)"
            )
        return BatchedCompiledConstraints(
            a=np.ascontiguousarray(self.a[keep]),
            b=self.b[keep],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            sqrt_weights=self.sqrt_weights,
            sqrt_indices=self.sqrt_indices,
            sqrt_targets=self.sqrt_targets,
            n_vars=self.n_vars,
        )

    def _rhs_for(self, cols: np.ndarray) -> StructureRHS:
        """Structure-partitioned RHS columns for the cells in `cols`.

        Uses the :class:`StructureRHS` snapshot (building it on the fly if
        the stack was assembled without one) and skips the column slice
        entirely for the common whole-batch evaluation.
        """
        rhs = (
            self.structure_rhs
            if self.structure_rhs is not None
            else self.structure.bind_rhs(self.b)
        )
        k = self.b.shape[1] if self.b.ndim == 2 else 0
        if cols.size == k and np.array_equal(cols, np.arange(k)):
            return rhs
        return rhs.select(cols)

    def _structured_linear_batch(
        self, x: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Structured linear-row terms for a batch of columns.

        Returns ``(alive, values, grads, hessians)`` contributions of the
        stacked linear rows; cells whose (tail-approximated) slacks hit
        the floor come back with ``alive`` False and garbage derivatives,
        matching the serial protocol.  Every cell is evaluated densely on
        floor-clamped slacks — the clamp is the identity for alive cells
        (bit-identical values) and merely keeps dead cells' arithmetic
        finite, which avoids the per-call column gathers and masked
        scatters that used to dominate at this problem size.
        """
        st = self.structure
        n = self.n_vars
        k = x.shape[1]
        rhs = self._rhs_for(cols)
        values = np.zeros(k)
        grads = np.zeros((k, n))
        hessians = np.zeros((k, n, n))
        alive = np.ones(k, dtype=bool)

        fold = st.fold
        if fold is not None:
            u = fold.d @ x  # (P, k)
            v = fold.c @ x  # (k,)
            sp = rhs.plus - u - v[None, :]
            sm = rhs.minus + u - v[None, :]
            alive &= np.minimum(sp.min(axis=0), sm.min(axis=0)) > SLACK_FLOOR
            np.maximum(sp, SLACK_FLOOR, out=sp)
            np.maximum(sm, SLACK_FLOOR, out=sm)
            values -= np.log(sp * sm).sum(axis=0)
            ip = 1.0 / sp
            im = 1.0 / sm
            grads += (fold.d.T @ (ip - im)).T
            grads += (ip + im).sum(axis=0)[:, None] * fold.c[None, :]
            ip2 = ip * ip
            im2 = im * im
            w2 = ip2 + im2  # (P, k)
            hessians += np.matmul(
                fold.d.T[None, :, :] * w2.T[:, None, :],
                fold.d[None, :, :],
            )
            wd = (fold.d.T @ (ip2 - im2)).T  # (k, n)
            hessians += (
                wd[:, :, None] * fold.c[None, None, :]
                + fold.c[None, :, None] * wd[:, None, :]
            )
            hessians += w2.sum(axis=0)[:, None, None] * np.outer(
                fold.c, fold.c
            )[None, :, :]

        tail = st.tail
        if tail is not None:
            t_steps, groups = tail.n_steps, tail.n_groups
            bt = rhs.tail.reshape(t_steps, groups, k)
            base_x = tail.base @ x  # (G, k)
            dir_x = (tail.dirs_flat @ x).reshape(-1, groups, k)
            sx = bt - base_x[None, :, :] - np.einsum(
                "tr,rgk->tgk", tail.coeffs, dir_x
            )  # (T, G, k)
            flat = sx.reshape(-1, k)
            alive &= flat.min(axis=0) > SLACK_FLOOR
            np.maximum(flat, SLACK_FLOOR, out=flat)  # sx shares the buffer
            values -= np.log(flat).sum(axis=0)
            it = 1.0 / sx
            grads += (tail.base.T @ it.sum(axis=0)).T
            weights = np.einsum("tr,tgk->rgk", tail.coeffs, it)
            grads += (tail.dirs_flat.T @ weights.reshape(-1, k)).T
            it2 = (it * it).reshape(-1, k)
            hessians += np.matmul(
                tail.tail_a.T[None, :, :] * it2.T[:, None, :],
                tail.tail_a[None, :, :],
            )

        if st.rest.size:
            sr = rhs.rest - st.rest_a @ x
            alive &= sr.min(axis=0) > SLACK_FLOOR
            np.maximum(sr, SLACK_FLOOR, out=sr)
            values -= np.log(sr).sum(axis=0)
            ir = 1.0 / sr
            grads += (st.rest_a.T @ ir).T
            ir2 = ir * ir
            hessians += np.matmul(
                st.rest_a.T[None, :, :] * ir2.T[:, None, :],
                st.rest_a[None, :, :],
            )
        return alive, values, grads, hessians

    def _structured_linear_value_batch(
        self, x: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(alive, values)`` of the structured linear rows (no GEMM)."""
        st = self.structure
        k = x.shape[1]
        rhs = self._rhs_for(cols)
        values = np.zeros(k)
        alive = np.ones(k, dtype=bool)
        fold = st.fold
        if fold is not None:
            u = fold.d @ x
            v = fold.c @ x
            sp = rhs.plus - u - v[None, :]
            sm = rhs.minus + u - v[None, :]
            alive &= np.minimum(sp.min(axis=0), sm.min(axis=0)) > SLACK_FLOOR
            np.maximum(sp, SLACK_FLOOR, out=sp)
            np.maximum(sm, SLACK_FLOOR, out=sm)
            values -= np.log(sp * sm).sum(axis=0)
        tail = st.tail
        if tail is not None:
            t_steps, groups = tail.n_steps, tail.n_groups
            bt = rhs.tail.reshape(t_steps, groups, k)
            base_x = tail.base @ x
            dir_x = (tail.dirs_flat @ x).reshape(-1, groups, k)
            sx = (
                bt
                - base_x[None, :, :]
                - np.einsum("tr,rgk->tgk", tail.coeffs, dir_x)
            ).reshape(-1, k)
            alive &= sx.min(axis=0) > SLACK_FLOOR
            np.maximum(sx, SLACK_FLOOR, out=sx)
            values -= np.log(sx).sum(axis=0)
        if st.rest.size:
            sr = rhs.rest - st.rest_a @ x
            alive &= sr.min(axis=0) > SLACK_FLOOR
            np.maximum(sr, SLACK_FLOOR, out=sr)
            values -= np.log(sr).sum(axis=0)
        return alive, values

    def _b_for(self, cols: np.ndarray) -> np.ndarray:
        """Per-cell RHS columns, skipping the gather for whole-batch calls."""
        k = self.b.shape[1] if self.b.ndim == 2 else 0
        if cols.size == k and np.array_equal(cols, np.arange(k)):
            return self.b
        return self.b[:, cols]

    def barrier_value(
        self, x: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Barrier values alone for selected cells (line-search fast path).

        Identical arithmetic to ``barrier(x, cols)[0]``, skipping every
        gradient/Hessian product.  Dead cells (any slack at the floor) are
        evaluated densely on floor-clamped slacks — the clamp is the
        identity for alive cells — and reported as ``inf``.
        """
        k = x.shape[1]
        values = np.zeros(k)
        alive = np.ones(k, dtype=bool)

        if self.a.shape[0] and self.structure is not None:
            lin_alive, lin_values = self._structured_linear_value_batch(
                x, cols
            )
            alive &= lin_alive
            values += lin_values
        elif self.a.shape[0]:
            slack = self._b_for(cols) - self.a @ x
            alive &= slack.min(axis=0) > SLACK_FLOOR
            np.maximum(slack, SLACK_FLOOR, out=slack)
            values -= np.log(slack).sum(axis=0)

        if self.box_indices.size:
            vals = x[self.box_indices, :]
            lo_slack = vals - self.box_lower[:, None]
            hi_slack = self.box_upper[:, None] - vals
            alive &= (
                np.minimum(lo_slack.min(axis=0), hi_slack.min(axis=0))
                > SLACK_FLOOR
            )
            np.maximum(lo_slack, SLACK_FLOOR, out=lo_slack)
            np.maximum(hi_slack, SLACK_FLOOR, out=hi_slack)
            values -= np.log(lo_slack).sum(axis=0) + np.log(hi_slack).sum(
                axis=0
            )

        if self.sqrt_targets is not None:
            vals = x[self.sqrt_indices, :]
            alive &= vals.min(axis=0) > 0
            roots = np.sqrt(np.where(vals > 0, vals, 1.0))
            slack = self.sqrt_weights @ roots - self.sqrt_targets[cols]
            alive &= slack > SLACK_FLOOR
            np.maximum(slack, SLACK_FLOOR, out=slack)
            values -= np.log(slack)

        values[~alive] = np.inf
        return values

    def barrier(
        self, x: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Barrier value, gradient and Hessian of selected cells.

        Args:
            x: variable columns, shape (n_vars, len(cols)).
            cols: batch indices selecting which cells' RHS each column of
                `x` is evaluated against.

        Returns:
            ``(values, grads, hessians)`` with shapes ``(k,)``, ``(k, n)``
            and ``(k, n, n)``; a cell outside its domain gets ``inf`` value
            and garbage derivatives, matching the serial protocol.
        """
        n = self.n_vars
        k = x.shape[1]
        values = np.zeros(k)
        grads = np.zeros((k, n))
        hessians = np.zeros((k, n, n))
        alive = np.ones(k, dtype=bool)

        if self.a.shape[0] and self.structure is not None:
            lin_alive, lin_values, lin_grads, lin_hessians = (
                self._structured_linear_batch(x, cols)
            )
            alive &= lin_alive
            values += lin_values
            grads += lin_grads
            hessians += lin_hessians
        elif self.a.shape[0]:
            slack = self._b_for(cols) - self.a @ x  # (m, k)
            alive &= slack.min(axis=0) > SLACK_FLOOR
            # Floor-clamp instead of masking: the clamp is the identity for
            # alive cells (their slacks already exceed the floor), keeps the
            # dead cells' arithmetic finite, and lets every product below
            # run densely over the whole batch — no boolean gathers, no
            # masked scatters, one GEMM for all Hessians.
            np.maximum(slack, SLACK_FLOOR, out=slack)
            inv = 1.0 / slack
            values -= np.log(slack).sum(axis=0)
            grads += (self.a.T @ inv).T
            inv2 = inv * inv
            hessians += np.matmul(
                self.a.T[None, :, :] * inv2.T[:, None, :],
                self.a[None, :, :],
            )

        if self.box_indices.size:
            vals = x[self.box_indices, :]  # (n_box, k)
            lo_slack = vals - self.box_lower[:, None]
            hi_slack = self.box_upper[:, None] - vals
            alive &= (
                np.minimum(lo_slack.min(axis=0), hi_slack.min(axis=0))
                > SLACK_FLOOR
            )
            np.maximum(lo_slack, SLACK_FLOOR, out=lo_slack)
            np.maximum(hi_slack, SLACK_FLOOR, out=hi_slack)
            values -= np.log(lo_slack).sum(axis=0) + np.log(hi_slack).sum(
                axis=0
            )
            grads[:, self.box_indices] += (
                -1.0 / lo_slack + 1.0 / hi_slack
            ).T
            hessians[:, self.box_indices, self.box_indices] += (
                1.0 / lo_slack**2 + 1.0 / hi_slack**2
            ).T

        if self.sqrt_targets is not None:
            vals = x[self.sqrt_indices, :]  # (n_sqrt, k)
            alive &= vals.min(axis=0) > 0
            roots = np.sqrt(np.where(vals > 0, vals, 1.0))
            slack = (
                self.sqrt_weights @ roots - self.sqrt_targets[cols]
            )  # (k,)
            alive &= slack > SLACK_FLOOR
            np.maximum(slack, SLACK_FLOOR, out=slack)
            dg = -self.sqrt_weights[:, None] / (2.0 * roots)  # (n_sqrt, k)
            d2g = self.sqrt_weights[:, None] / (4.0 * roots**3)
            values -= np.log(slack)
            g = (dg / slack).T  # (k, n_sqrt)
            grads[:, self.sqrt_indices] += g
            hessians[
                :, self.sqrt_indices[:, None], self.sqrt_indices[None, :]
            ] += g[:, :, None] * g[:, None, :]
            hessians[:, self.sqrt_indices, self.sqrt_indices] += (
                d2g / slack
            ).T

        values[~alive] = np.inf
        return values, grads, hessians

    def max_violation(self, x: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Largest residual per selected cell (<= 0 means feasible)."""
        k = x.shape[1]
        worst = np.full(k, -np.inf)
        if self.a.shape[0]:
            worst = np.maximum(
                worst, (self.a @ x - self.b[:, cols]).max(axis=0)
            )
        if self.box_indices.size:
            vals = x[self.box_indices, :]
            worst = np.maximum(
                worst, (self.box_lower[:, None] - vals).max(axis=0)
            )
            worst = np.maximum(
                worst, (vals - self.box_upper[:, None]).max(axis=0)
            )
        if self.sqrt_targets is not None:
            vals = np.clip(x[self.sqrt_indices, :], 0.0, None)
            worst = np.maximum(
                worst,
                self.sqrt_targets[cols] - self.sqrt_weights @ np.sqrt(vals),
            )
        return np.where(np.isfinite(worst), worst, 0.0)
