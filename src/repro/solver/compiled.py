"""Precompiled constraint stacks for fast repeated barrier evaluation.

The barrier solver's inner loop evaluates the log-barrier of every
constraint block at every Newton step.  The generic path walks the block
list in Python, paying one set of allocations and one small GEMM per block
per evaluation.  For the Pro-Temp program family that loop is pure
overhead: all but one block are linear (`LinearInequality`) or separable
(`BoxConstraint`), so their barrier terms can be evaluated in a handful of
vectorized operations over one stacked matrix.

:class:`CompiledConstraints` performs that stacking **once**:

* all ``LinearInequality`` rows are concatenated into a single matrix
  ``A`` / vector ``b`` whose barrier is evaluated as ``A.T @ w`` and
  ``(A * w).T @ A`` (one GEMV + one GEMM per evaluation, regardless of how
  many linear blocks the problem was assembled from);
* all ``BoxConstraint`` bounds are concatenated into flat index/bound
  arrays whose barrier contribution is diagonal and fully vectorized;
* any other block (in practice the single `SqrtSumConstraint`) is kept as
  an opaque fallback evaluated through the generic
  ``ConstraintBlock.barrier`` protocol.

Because the stacked matrix depends only on the problem *structure* — not
on right-hand sides — a compiled stack can be cheaply rebound to a new
block list with identical shape via :meth:`CompiledConstraints.with_blocks`.
This is what makes Phase-1 table sweeps fast: across a
(temperature x frequency) grid only the RHS offsets and the sqrt target
change, so the matrix stack is compiled once per sweep and shared by every
cell (see `repro.core.protemp.ProTempOptimizer`).

Two further sweep fast paths build on the stacked form:

* **Sparse row pruning** — :meth:`CompiledConstraints.prune_linear_rows`
  keeps only a caller-chosen subset of the stacked linear rows (the rows
  observed near-active at previous optima; most thermal step rows never
  are).  The pruned program is a relaxation, so its solution must be
  re-checked against the full stack (`max_violation`) — see
  `repro.core.protemp.ProTempOptimizer` for the fallback protocol that
  makes this sound.
* **Batched multi-cell evaluation** — :class:`BatchedCompiledConstraints`
  binds one shared matrix to *several* cells' right-hand sides and
  evaluates every cell's barrier in one set of matrix products
  (``A @ X`` over a column per cell), which removes the per-cell Python
  dispatch overhead that dominates small-platform sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.solver.problem import (
    SLACK_FLOOR,
    BoxConstraint,
    ConstraintBlock,
    LinearInequality,
)


def stack_flat_rows(
    blocks: list[ConstraintBlock], n_vars: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack linear and box blocks into one ``A x <= b`` system.

    Box bounds are expanded to ``+/- e_i`` rows (per block: all lower
    rows, then all upper rows), matching the residual convention of
    `BoxConstraint`.  Used by phase I, which needs a uniform row-wise
    view of the flat constraints.

    Raises:
        SolverError: on a block type with non-constant Jacobian.
    """
    a_parts: list[np.ndarray] = []
    b_parts: list[np.ndarray] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            a_parts.append(block.a)
            b_parts.append(block.b)
        elif isinstance(block, BoxConstraint):
            k = len(block.indices)
            rows = np.zeros((2 * k, n_vars))
            arange = np.arange(k)
            rows[arange, block.indices] = -1.0  # lower - x <= 0
            rows[k + arange, block.indices] = 1.0  # x - upper <= 0
            a_parts.append(rows)
            b_parts.append(np.concatenate([-block.lower, block.upper]))
        else:
            raise SolverError(
                f"cannot stack non-flat block {type(block).__name__}"
            )
    if not a_parts:
        return np.zeros((0, n_vars)), np.zeros(0)
    return (
        np.ascontiguousarray(np.vstack(a_parts)),
        np.concatenate(b_parts),
    )


def blocks_signature(
    blocks: list[ConstraintBlock],
) -> tuple[tuple[str, int], ...]:
    """Structural fingerprint of a block list: per-block ``(kind, rows)``.

    Two block lists with equal signatures can share one compiled matrix
    stack (see :meth:`CompiledConstraints.with_blocks`).
    """
    signature: list[tuple[str, int]] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            signature.append(("linear", block.a.shape[0]))
        elif isinstance(block, BoxConstraint):
            signature.append(("box", len(block.indices)))
        else:
            signature.append((type(block).__name__, block.count()))
    return tuple(signature)


@dataclass(frozen=True)
class CompiledConstraints:
    """A constraint-block list compiled to stacked arrays.

    Build with :meth:`compile`; rebind right-hand sides with
    :meth:`with_blocks`.

    Attributes:
        a: stacked ``LinearInequality`` rows, shape (m_lin, n_vars).
        b: stacked right-hand sides, shape (m_lin,).
        box_indices: concatenated box-constraint variable indices.
        box_lower: concatenated lower bounds (aligned with `box_indices`).
        box_upper: concatenated upper bounds (aligned with `box_indices`).
        nonlinear: blocks evaluated through the generic barrier protocol.
        n_vars: dimensionality of the variable vector.
        signature: per-block structural fingerprint ``(kind, rows)`` used to
            decide whether a block list is shape-compatible with this stack.
    """

    a: np.ndarray
    b: np.ndarray
    box_indices: np.ndarray
    box_lower: np.ndarray
    box_upper: np.ndarray
    nonlinear: tuple[ConstraintBlock, ...]
    n_vars: int
    signature: tuple[tuple[str, int], ...]
    box_unique: bool = True

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(
        cls, blocks: list[ConstraintBlock], n_vars: int
    ) -> "CompiledConstraints":
        """Stack `blocks` into vectorized form.

        Args:
            blocks: constraint blocks (any mix of types; unknown types fall
                back to their own ``barrier``/``residuals`` methods).
            n_vars: dimensionality of the variable vector.

        Returns:
            The compiled stack.
        """
        a_parts: list[np.ndarray] = []
        b_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        lo_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        nonlinear: list[ConstraintBlock] = []
        for block in blocks:
            if isinstance(block, LinearInequality):
                if block.a.shape[1] != n_vars:
                    raise SolverError(
                        f"linear block has {block.a.shape[1]} columns, "
                        f"expected {n_vars}"
                    )
                a_parts.append(block.a)
                b_parts.append(block.b)
            elif isinstance(block, BoxConstraint):
                idx_parts.append(block.indices)
                lo_parts.append(block.lower)
                hi_parts.append(block.upper)
            else:
                nonlinear.append(block)
        a = (
            np.ascontiguousarray(np.vstack(a_parts))
            if a_parts
            else np.zeros((0, n_vars))
        )
        b = np.concatenate(b_parts) if b_parts else np.zeros(0)
        box_indices = (
            np.concatenate(idx_parts) if idx_parts else np.zeros(0, dtype=int)
        )
        return cls(
            a=a,
            b=b,
            box_indices=box_indices,
            box_lower=np.concatenate(lo_parts) if lo_parts else np.zeros(0),
            box_upper=np.concatenate(hi_parts) if hi_parts else np.zeros(0),
            nonlinear=tuple(nonlinear),
            n_vars=int(n_vars),
            signature=blocks_signature(blocks),
            box_unique=bool(
                len(np.unique(box_indices)) == len(box_indices)
            ),
        )

    def with_blocks(
        self, blocks: list[ConstraintBlock]
    ) -> "CompiledConstraints":
        """Rebind RHS data from a structurally identical block list.

        Reuses the stacked matrix ``a`` (the expensive part) and re-reads
        only the right-hand sides, bounds and nonlinear blocks.  The caller
        guarantees the linear rows of `blocks` are numerically equal to the
        compiled ones — true across a Phase-1 sweep, where the response
        matrix depends only on the platform, never on the design point.

        Raises:
            SolverError: when the structure differs (block kinds or row
                counts); callers should fall back to :meth:`compile`.
        """
        if blocks_signature(blocks) != self.signature:
            raise SolverError(
                "block list is not structure-compatible with compiled stack"
            )
        b_parts = [
            block.b for block in blocks if isinstance(block, LinearInequality)
        ]
        boxes = [block for block in blocks if isinstance(block, BoxConstraint)]
        if boxes and not np.array_equal(
            np.concatenate([box.indices for box in boxes]), self.box_indices
        ):
            raise SolverError(
                "box-constraint indices differ from the compiled stack"
            )
        nonlinear = tuple(
            block
            for block in blocks
            if not isinstance(block, (LinearInequality, BoxConstraint))
        )
        return CompiledConstraints(
            a=self.a,
            b=np.concatenate(b_parts) if b_parts else np.zeros(0),
            box_indices=self.box_indices,
            box_lower=(
                np.concatenate([box.lower for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            box_upper=(
                np.concatenate([box.upper for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            nonlinear=nonlinear,
            n_vars=self.n_vars,
            signature=self.signature,
            box_unique=self.box_unique,
        )

    def prune_linear_rows(self, keep: np.ndarray) -> "CompiledConstraints":
        """Stack with only the linear rows selected by boolean mask `keep`.

        Box and nonlinear blocks are preserved untouched.  The pruned stack
        describes a *relaxation* of the original program: a solution found
        against it is optimal for the full program only if it also
        satisfies the dropped rows — callers must re-check with the full
        stack's :meth:`max_violation` and fall back on violation.

        Args:
            keep: boolean mask over the ``a`` rows, shape (m_lin,).

        Returns:
            A new :class:`CompiledConstraints` whose signature reflects the
            reduced row count (it is *not* `with_blocks`-compatible with
            the full stack).
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.a.shape[0],):
            raise SolverError(
                f"prune mask has shape {keep.shape}, expected "
                f"({self.a.shape[0]},)"
            )
        signature = (("linear", int(keep.sum())),) + tuple(
            s for s in self.signature if s[0] != "linear"
        )
        return CompiledConstraints(
            a=np.ascontiguousarray(self.a[keep]),
            b=self.b[keep],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            nonlinear=self.nonlinear,
            n_vars=self.n_vars,
            signature=signature,
            box_unique=self.box_unique,
        )

    # -- evaluation ---------------------------------------------------------

    def linear_slacks(self, x: np.ndarray) -> np.ndarray:
        """Slacks ``b - A x`` of the stacked linear rows (> 0 inside)."""
        return self.b - self.a @ x

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        """Value, gradient and Hessian of the total log barrier at `x`.

        Equivalent to summing ``block.barrier(x)`` over the original block
        list, but the linear and box parts are evaluated in stacked
        vectorized form.  Returns ``(inf, garbage, garbage)`` outside the
        domain, matching the `ConstraintBlock` protocol.
        """
        n = self.n_vars
        value = 0.0
        grad = np.zeros(n)
        hess = np.zeros((n, n))

        if self.a.shape[0]:
            slack = self.b - self.a @ x
            if np.any(slack <= SLACK_FLOOR):
                return np.inf, grad, hess
            inv = 1.0 / slack
            value -= float(np.log(slack).sum())
            grad += self.a.T @ inv
            hess += (self.a * (inv * inv)[:, None]).T @ self.a

        if self.box_indices.size:
            vals = x[self.box_indices]
            lo_slack = vals - self.box_lower
            hi_slack = self.box_upper - vals
            if np.any(lo_slack <= SLACK_FLOOR) or np.any(
                hi_slack <= SLACK_FLOOR
            ):
                return np.inf, grad, hess
            value -= float(
                np.log(lo_slack).sum() + np.log(hi_slack).sum()
            )
            inv_lo = 1.0 / lo_slack
            inv_hi = 1.0 / hi_slack
            if self.box_unique:
                grad[self.box_indices] += -inv_lo + inv_hi
                hess[self.box_indices, self.box_indices] += (
                    inv_lo * inv_lo + inv_hi * inv_hi
                )
            else:
                # np.add.at tolerates repeated indices across stacked boxes.
                np.add.at(grad, self.box_indices, -inv_lo + inv_hi)
                diag = np.zeros(n)
                np.add.at(
                    diag, self.box_indices, inv_lo * inv_lo + inv_hi * inv_hi
                )
                hess[np.diag_indices(n)] += diag

        for block in self.nonlinear:
            b_val, b_grad, b_hess = block.barrier(x)
            if not np.isfinite(b_val):
                return np.inf, grad, hess
            value += b_val
            grad += b_grad
            hess += b_hess
        return value, grad, hess

    def max_violation(self, x: np.ndarray) -> float:
        """Largest constraint residual at `x` (<= 0 means feasible)."""
        worst = -np.inf
        if self.a.shape[0]:
            worst = max(worst, float(np.max(self.a @ x - self.b)))
        if self.box_indices.size:
            vals = x[self.box_indices]
            worst = max(worst, float(np.max(self.box_lower - vals)))
            worst = max(worst, float(np.max(vals - self.box_upper)))
        for block in self.nonlinear:
            worst = max(worst, float(np.max(block.residuals(x))))
        if worst == -np.inf:
            return 0.0
        return worst

    def count(self) -> int:
        """Total number of scalar constraints."""
        return (
            int(self.a.shape[0])
            + 2 * int(self.box_indices.size)
            + sum(block.count() for block in self.nonlinear)
        )


@dataclass(frozen=True)
class BatchedCompiledConstraints:
    """One shared constraint matrix bound to several cells' RHS vectors.

    The Pro-Temp sweep solves many structurally identical programs that
    differ only in right-hand sides: thermal/gradient offsets vary with the
    starting temperature and the sqrt target with the frequency column.
    This class evaluates the log barrier of *all* cells at once — slack,
    value and gradient of every cell come out of single ``(m, B)``-shaped
    matrix products instead of one Python round-trip per cell — which is
    what `repro.solver.barrier.solve_barrier_batch` iterates over.

    Only the block family used by the Pro-Temp program is supported:
    stacked linear rows (shared matrix, per-cell ``b``), shared box bounds
    with unique indices, and at most one sqrt-sum constraint with shared
    weights and per-cell targets.

    Attributes:
        a: shared linear rows, shape (m_lin, n_vars).
        b: per-cell right-hand sides, shape (m_lin, batch).
        box_indices: shared box variable indices (must be unique).
        box_lower: shared lower bounds.
        box_upper: shared upper bounds.
        sqrt_weights: sqrt-sum weights shared by all cells (or None).
        sqrt_indices: sqrt-sum variable indices (or None).
        sqrt_targets: per-cell sqrt-sum targets, shape (batch,) (or None).
        n_vars: dimensionality of each cell's variable vector.
    """

    a: np.ndarray
    b: np.ndarray
    box_indices: np.ndarray
    box_lower: np.ndarray
    box_upper: np.ndarray
    sqrt_weights: np.ndarray | None
    sqrt_indices: np.ndarray | None
    sqrt_targets: np.ndarray | None
    n_vars: int

    @classmethod
    def from_cells(
        cls, cells: list[CompiledConstraints]
    ) -> "BatchedCompiledConstraints":
        """Bind the shared matrix of per-cell compiled stacks to a batch.

        Args:
            cells: per-cell stacks produced by `with_blocks` rebinds of one
                compiled template (identical matrix part and signature).

        Raises:
            SolverError: when the cells do not share structure, a box index
                repeats, or a nonlinear block is not a lone sqrt-sum with
                shared weights.
        """
        from repro.solver.problem import SqrtSumConstraint  # avoid cycle

        if not cells:
            raise SolverError("batched stack needs at least one cell")
        first = cells[0]
        for cell in cells[1:]:
            if cell.signature != first.signature or cell.a.shape != first.a.shape:
                raise SolverError("batched cells must share structure")
            if cell.a is not first.a and not np.array_equal(cell.a, first.a):
                raise SolverError("batched cells must share the matrix part")
            if not np.array_equal(cell.box_indices, first.box_indices):
                raise SolverError("batched cells must share box indices")
            if not np.array_equal(
                cell.box_lower, first.box_lower
            ) or not np.array_equal(cell.box_upper, first.box_upper):
                raise SolverError("batched cells must share box bounds")
        if not first.box_unique:
            raise SolverError("batched stack needs unique box indices")
        sqrt_weights = sqrt_indices = sqrt_targets = None
        if first.nonlinear:
            if len(first.nonlinear) != 1 or not isinstance(
                first.nonlinear[0], SqrtSumConstraint
            ):
                raise SolverError(
                    "batched stack supports at most one sqrt-sum block"
                )
            blocks = [cell.nonlinear[0] for cell in cells]
            sqrt_weights = np.asarray(blocks[0].weights, dtype=float)
            sqrt_indices = np.asarray(blocks[0].indices, dtype=int)
            for block in blocks[1:]:
                if not np.array_equal(block.weights, sqrt_weights):
                    raise SolverError(
                        "batched cells must share sqrt weights"
                    )
            sqrt_targets = np.array(
                [float(block.target) for block in blocks]
            )
        return cls(
            a=first.a,
            b=np.column_stack([cell.b for cell in cells]),
            box_indices=first.box_indices,
            box_lower=first.box_lower,
            box_upper=first.box_upper,
            sqrt_weights=sqrt_weights,
            sqrt_indices=sqrt_indices,
            sqrt_targets=sqrt_targets,
            n_vars=first.n_vars,
        )

    @property
    def batch(self) -> int:
        """Number of cells bound to the shared matrix."""
        return int(self.b.shape[1]) if self.b.ndim == 2 else 0

    def count(self) -> int:
        """Scalar constraints per cell (identical across the batch)."""
        return (
            int(self.a.shape[0])
            + 2 * int(self.box_indices.size)
            + (1 if self.sqrt_targets is not None else 0)
        )

    def select(self, cols: np.ndarray) -> "BatchedCompiledConstraints":
        """Stack bound to only the cells selected by index array `cols`."""
        cols = np.asarray(cols, dtype=int)
        return BatchedCompiledConstraints(
            a=self.a,
            b=self.b[:, cols],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            sqrt_weights=self.sqrt_weights,
            sqrt_indices=self.sqrt_indices,
            sqrt_targets=(
                self.sqrt_targets[cols]
                if self.sqrt_targets is not None
                else None
            ),
            n_vars=self.n_vars,
        )

    def prune_linear_rows(
        self, keep: np.ndarray
    ) -> "BatchedCompiledConstraints":
        """Batched analogue of `CompiledConstraints.prune_linear_rows`."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.a.shape[0],):
            raise SolverError(
                f"prune mask has shape {keep.shape}, expected "
                f"({self.a.shape[0]},)"
            )
        return BatchedCompiledConstraints(
            a=np.ascontiguousarray(self.a[keep]),
            b=self.b[keep],
            box_indices=self.box_indices,
            box_lower=self.box_lower,
            box_upper=self.box_upper,
            sqrt_weights=self.sqrt_weights,
            sqrt_indices=self.sqrt_indices,
            sqrt_targets=self.sqrt_targets,
            n_vars=self.n_vars,
        )

    def barrier(
        self, x: np.ndarray, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Barrier value, gradient and Hessian of selected cells.

        Args:
            x: variable columns, shape (n_vars, len(cols)).
            cols: batch indices selecting which cells' RHS each column of
                `x` is evaluated against.

        Returns:
            ``(values, grads, hessians)`` with shapes ``(k,)``, ``(k, n)``
            and ``(k, n, n)``; a cell outside its domain gets ``inf`` value
            and garbage derivatives, matching the serial protocol.
        """
        n = self.n_vars
        k = x.shape[1]
        values = np.zeros(k)
        grads = np.zeros((k, n))
        hessians = np.zeros((k, n, n))
        alive = np.ones(k, dtype=bool)

        if self.a.shape[0]:
            slack = self.b[:, cols] - self.a @ x  # (m, k)
            bad = np.any(slack <= SLACK_FLOOR, axis=0)
            alive &= ~bad
            if np.any(alive):
                inv = np.where(slack > SLACK_FLOOR, 1.0 / slack, 0.0)
                values[alive] -= np.log(slack[:, alive]).sum(axis=0)
                grads[alive] += (self.a.T @ inv[:, alive]).T
                inv2 = inv * inv
                for k_idx in np.nonzero(alive)[0]:
                    # One GEMM per alive cell; the batch savings come from
                    # the shared slack/log/gradient products above.
                    hessians[k_idx] += (
                        self.a * inv2[:, k_idx : k_idx + 1]
                    ).T @ self.a

        if self.box_indices.size and np.any(alive):
            vals = x[self.box_indices, :]  # (n_box, k)
            lo_slack = vals - self.box_lower[:, None]
            hi_slack = self.box_upper[:, None] - vals
            bad = np.any(lo_slack <= SLACK_FLOOR, axis=0) | np.any(
                hi_slack <= SLACK_FLOOR, axis=0
            )
            alive &= ~bad
            if np.any(alive):
                lo = lo_slack[:, alive]
                hi = hi_slack[:, alive]
                values[alive] -= np.log(lo).sum(axis=0) + np.log(hi).sum(
                    axis=0
                )
                grad_rows = (-1.0 / lo + 1.0 / hi).T  # (k_alive, n_box)
                diag_rows = (1.0 / lo**2 + 1.0 / hi**2).T
                alive_idx = np.nonzero(alive)[0]
                grads[np.ix_(alive_idx, self.box_indices)] += grad_rows
                hessians[
                    alive_idx[:, None],
                    self.box_indices[None, :],
                    self.box_indices[None, :],
                ] += diag_rows

        if self.sqrt_targets is not None and np.any(alive):
            vals = x[self.sqrt_indices, :]  # (n_sqrt, k)
            bad = np.any(vals <= 0, axis=0)
            alive &= ~bad
            if np.any(alive):
                roots = np.sqrt(np.where(vals > 0, vals, 1.0))
                slack = (
                    self.sqrt_weights @ roots - self.sqrt_targets[cols]
                )  # (k,)
                bad = slack <= SLACK_FLOOR
                alive &= ~bad
            if np.any(alive):
                alive_idx = np.nonzero(alive)[0]
                r = roots[:, alive]
                s = slack[alive]
                dg = -self.sqrt_weights[:, None] / (2.0 * r)  # (n_sqrt, ka)
                d2g = self.sqrt_weights[:, None] / (4.0 * r**3)
                values[alive] += -np.log(s)
                grads[np.ix_(alive_idx, self.sqrt_indices)] += (dg / s).T
                hessians[
                    np.ix_(alive_idx, self.sqrt_indices, self.sqrt_indices)
                ] += (dg / s).T[:, :, None] * (dg / s).T[:, None, :]
                hessians[
                    alive_idx[:, None],
                    self.sqrt_indices[None, :],
                    self.sqrt_indices[None, :],
                ] += (d2g / s).T

        values[~alive] = np.inf
        return values, grads, hessians

    def max_violation(self, x: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Largest residual per selected cell (<= 0 means feasible)."""
        k = x.shape[1]
        worst = np.full(k, -np.inf)
        if self.a.shape[0]:
            worst = np.maximum(
                worst, (self.a @ x - self.b[:, cols]).max(axis=0)
            )
        if self.box_indices.size:
            vals = x[self.box_indices, :]
            worst = np.maximum(
                worst, (self.box_lower[:, None] - vals).max(axis=0)
            )
            worst = np.maximum(
                worst, (vals - self.box_upper[:, None]).max(axis=0)
            )
        if self.sqrt_targets is not None:
            vals = np.clip(x[self.sqrt_indices, :], 0.0, None)
            worst = np.maximum(
                worst,
                self.sqrt_targets[cols] - self.sqrt_weights @ np.sqrt(vals),
            )
        return np.where(np.isfinite(worst), worst, 0.0)
