"""Precompiled constraint stacks for fast repeated barrier evaluation.

The barrier solver's inner loop evaluates the log-barrier of every
constraint block at every Newton step.  The generic path walks the block
list in Python, paying one set of allocations and one small GEMM per block
per evaluation.  For the Pro-Temp program family that loop is pure
overhead: all but one block are linear (`LinearInequality`) or separable
(`BoxConstraint`), so their barrier terms can be evaluated in a handful of
vectorized operations over one stacked matrix.

:class:`CompiledConstraints` performs that stacking **once**:

* all ``LinearInequality`` rows are concatenated into a single matrix
  ``A`` / vector ``b`` whose barrier is evaluated as ``A.T @ w`` and
  ``(A * w).T @ A`` (one GEMV + one GEMM per evaluation, regardless of how
  many linear blocks the problem was assembled from);
* all ``BoxConstraint`` bounds are concatenated into flat index/bound
  arrays whose barrier contribution is diagonal and fully vectorized;
* any other block (in practice the single `SqrtSumConstraint`) is kept as
  an opaque fallback evaluated through the generic
  ``ConstraintBlock.barrier`` protocol.

Because the stacked matrix depends only on the problem *structure* — not
on right-hand sides — a compiled stack can be cheaply rebound to a new
block list with identical shape via :meth:`CompiledConstraints.with_blocks`.
This is what makes Phase-1 table sweeps fast: across a
(temperature x frequency) grid only the RHS offsets and the sqrt target
change, so the matrix stack is compiled once per sweep and shared by every
cell (see `repro.core.protemp.ProTempOptimizer`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.solver.problem import (
    SLACK_FLOOR,
    BoxConstraint,
    ConstraintBlock,
    LinearInequality,
)


def stack_flat_rows(
    blocks: list[ConstraintBlock], n_vars: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack linear and box blocks into one ``A x <= b`` system.

    Box bounds are expanded to ``+/- e_i`` rows (per block: all lower
    rows, then all upper rows), matching the residual convention of
    `BoxConstraint`.  Used by phase I, which needs a uniform row-wise
    view of the flat constraints.

    Raises:
        SolverError: on a block type with non-constant Jacobian.
    """
    a_parts: list[np.ndarray] = []
    b_parts: list[np.ndarray] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            a_parts.append(block.a)
            b_parts.append(block.b)
        elif isinstance(block, BoxConstraint):
            k = len(block.indices)
            rows = np.zeros((2 * k, n_vars))
            arange = np.arange(k)
            rows[arange, block.indices] = -1.0  # lower - x <= 0
            rows[k + arange, block.indices] = 1.0  # x - upper <= 0
            a_parts.append(rows)
            b_parts.append(np.concatenate([-block.lower, block.upper]))
        else:
            raise SolverError(
                f"cannot stack non-flat block {type(block).__name__}"
            )
    if not a_parts:
        return np.zeros((0, n_vars)), np.zeros(0)
    return (
        np.ascontiguousarray(np.vstack(a_parts)),
        np.concatenate(b_parts),
    )


def blocks_signature(
    blocks: list[ConstraintBlock],
) -> tuple[tuple[str, int], ...]:
    """Structural fingerprint of a block list: per-block ``(kind, rows)``.

    Two block lists with equal signatures can share one compiled matrix
    stack (see :meth:`CompiledConstraints.with_blocks`).
    """
    signature: list[tuple[str, int]] = []
    for block in blocks:
        if isinstance(block, LinearInequality):
            signature.append(("linear", block.a.shape[0]))
        elif isinstance(block, BoxConstraint):
            signature.append(("box", len(block.indices)))
        else:
            signature.append((type(block).__name__, block.count()))
    return tuple(signature)


@dataclass(frozen=True)
class CompiledConstraints:
    """A constraint-block list compiled to stacked arrays.

    Build with :meth:`compile`; rebind right-hand sides with
    :meth:`with_blocks`.

    Attributes:
        a: stacked ``LinearInequality`` rows, shape (m_lin, n_vars).
        b: stacked right-hand sides, shape (m_lin,).
        box_indices: concatenated box-constraint variable indices.
        box_lower: concatenated lower bounds (aligned with `box_indices`).
        box_upper: concatenated upper bounds (aligned with `box_indices`).
        nonlinear: blocks evaluated through the generic barrier protocol.
        n_vars: dimensionality of the variable vector.
        signature: per-block structural fingerprint ``(kind, rows)`` used to
            decide whether a block list is shape-compatible with this stack.
    """

    a: np.ndarray
    b: np.ndarray
    box_indices: np.ndarray
    box_lower: np.ndarray
    box_upper: np.ndarray
    nonlinear: tuple[ConstraintBlock, ...]
    n_vars: int
    signature: tuple[tuple[str, int], ...]
    box_unique: bool = True

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(
        cls, blocks: list[ConstraintBlock], n_vars: int
    ) -> "CompiledConstraints":
        """Stack `blocks` into vectorized form.

        Args:
            blocks: constraint blocks (any mix of types; unknown types fall
                back to their own ``barrier``/``residuals`` methods).
            n_vars: dimensionality of the variable vector.

        Returns:
            The compiled stack.
        """
        a_parts: list[np.ndarray] = []
        b_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        lo_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        nonlinear: list[ConstraintBlock] = []
        for block in blocks:
            if isinstance(block, LinearInequality):
                if block.a.shape[1] != n_vars:
                    raise SolverError(
                        f"linear block has {block.a.shape[1]} columns, "
                        f"expected {n_vars}"
                    )
                a_parts.append(block.a)
                b_parts.append(block.b)
            elif isinstance(block, BoxConstraint):
                idx_parts.append(block.indices)
                lo_parts.append(block.lower)
                hi_parts.append(block.upper)
            else:
                nonlinear.append(block)
        a = (
            np.ascontiguousarray(np.vstack(a_parts))
            if a_parts
            else np.zeros((0, n_vars))
        )
        b = np.concatenate(b_parts) if b_parts else np.zeros(0)
        box_indices = (
            np.concatenate(idx_parts) if idx_parts else np.zeros(0, dtype=int)
        )
        return cls(
            a=a,
            b=b,
            box_indices=box_indices,
            box_lower=np.concatenate(lo_parts) if lo_parts else np.zeros(0),
            box_upper=np.concatenate(hi_parts) if hi_parts else np.zeros(0),
            nonlinear=tuple(nonlinear),
            n_vars=int(n_vars),
            signature=blocks_signature(blocks),
            box_unique=bool(
                len(np.unique(box_indices)) == len(box_indices)
            ),
        )

    def with_blocks(
        self, blocks: list[ConstraintBlock]
    ) -> "CompiledConstraints":
        """Rebind RHS data from a structurally identical block list.

        Reuses the stacked matrix ``a`` (the expensive part) and re-reads
        only the right-hand sides, bounds and nonlinear blocks.  The caller
        guarantees the linear rows of `blocks` are numerically equal to the
        compiled ones — true across a Phase-1 sweep, where the response
        matrix depends only on the platform, never on the design point.

        Raises:
            SolverError: when the structure differs (block kinds or row
                counts); callers should fall back to :meth:`compile`.
        """
        if blocks_signature(blocks) != self.signature:
            raise SolverError(
                "block list is not structure-compatible with compiled stack"
            )
        b_parts = [
            block.b for block in blocks if isinstance(block, LinearInequality)
        ]
        boxes = [block for block in blocks if isinstance(block, BoxConstraint)]
        if boxes and not np.array_equal(
            np.concatenate([box.indices for box in boxes]), self.box_indices
        ):
            raise SolverError(
                "box-constraint indices differ from the compiled stack"
            )
        nonlinear = tuple(
            block
            for block in blocks
            if not isinstance(block, (LinearInequality, BoxConstraint))
        )
        return CompiledConstraints(
            a=self.a,
            b=np.concatenate(b_parts) if b_parts else np.zeros(0),
            box_indices=self.box_indices,
            box_lower=(
                np.concatenate([box.lower for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            box_upper=(
                np.concatenate([box.upper for box in boxes])
                if boxes
                else np.zeros(0)
            ),
            nonlinear=nonlinear,
            n_vars=self.n_vars,
            signature=self.signature,
            box_unique=self.box_unique,
        )

    # -- evaluation ---------------------------------------------------------

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        """Value, gradient and Hessian of the total log barrier at `x`.

        Equivalent to summing ``block.barrier(x)`` over the original block
        list, but the linear and box parts are evaluated in stacked
        vectorized form.  Returns ``(inf, garbage, garbage)`` outside the
        domain, matching the `ConstraintBlock` protocol.
        """
        n = self.n_vars
        value = 0.0
        grad = np.zeros(n)
        hess = np.zeros((n, n))

        if self.a.shape[0]:
            slack = self.b - self.a @ x
            if np.any(slack <= SLACK_FLOOR):
                return np.inf, grad, hess
            inv = 1.0 / slack
            value -= float(np.log(slack).sum())
            grad += self.a.T @ inv
            hess += (self.a * (inv * inv)[:, None]).T @ self.a

        if self.box_indices.size:
            vals = x[self.box_indices]
            lo_slack = vals - self.box_lower
            hi_slack = self.box_upper - vals
            if np.any(lo_slack <= SLACK_FLOOR) or np.any(
                hi_slack <= SLACK_FLOOR
            ):
                return np.inf, grad, hess
            value -= float(
                np.log(lo_slack).sum() + np.log(hi_slack).sum()
            )
            inv_lo = 1.0 / lo_slack
            inv_hi = 1.0 / hi_slack
            if self.box_unique:
                grad[self.box_indices] += -inv_lo + inv_hi
                hess[self.box_indices, self.box_indices] += (
                    inv_lo * inv_lo + inv_hi * inv_hi
                )
            else:
                # np.add.at tolerates repeated indices across stacked boxes.
                np.add.at(grad, self.box_indices, -inv_lo + inv_hi)
                diag = np.zeros(n)
                np.add.at(
                    diag, self.box_indices, inv_lo * inv_lo + inv_hi * inv_hi
                )
                hess[np.diag_indices(n)] += diag

        for block in self.nonlinear:
            b_val, b_grad, b_hess = block.barrier(x)
            if not np.isfinite(b_val):
                return np.inf, grad, hess
            value += b_val
            grad += b_grad
            hess += b_hess
        return value, grad, hess

    def max_violation(self, x: np.ndarray) -> float:
        """Largest constraint residual at `x` (<= 0 means feasible)."""
        worst = -np.inf
        if self.a.shape[0]:
            worst = max(worst, float(np.max(self.a @ x - self.b)))
        if self.box_indices.size:
            vals = x[self.box_indices]
            worst = max(worst, float(np.max(self.box_lower - vals)))
            worst = max(worst, float(np.max(vals - self.box_upper)))
        for block in self.nonlinear:
            worst = max(worst, float(np.max(block.residuals(x))))
        if worst == -np.inf:
            return 0.0
        return worst

    def count(self) -> int:
        """Total number of scalar constraints."""
        return (
            int(self.a.shape[0])
            + 2 * int(self.box_indices.size)
            + sum(block.count() for block in self.nonlinear)
        )
