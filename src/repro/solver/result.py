"""Solver result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Termination status of a convex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    MAX_ITERATIONS = "max_iterations"

    @property
    def ok(self) -> bool:
        """True when the solve produced a usable optimal point."""
        return self is SolveStatus.OPTIMAL


@dataclass
class SolveResult:
    """Outcome of a convex optimization solve.

    Attributes:
        status: termination status.
        x: primal solution (meaningful when `status.ok`; for INFEASIBLE it
            holds the least-infeasible point found by phase I).
        objective: objective value at `x`.
        iterations: total Newton iterations across all barrier stages.
        duality_gap: final barrier duality-gap bound ``m / t`` (0 when not
            applicable).
        dual_variables: barrier estimates of the inequality multipliers,
            one per scalar constraint, in constraint-block order.
        max_violation: largest constraint violation at `x` (<= 0 means
            feasible; for INFEASIBLE this is the certified positive minimum
            infeasibility).
    """

    status: SolveStatus
    x: np.ndarray
    objective: float
    iterations: int = 0
    duality_gap: float = 0.0
    dual_variables: np.ndarray = field(default_factory=lambda: np.zeros(0))
    max_violation: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the solve produced a usable optimal point."""
        return self.status.ok
