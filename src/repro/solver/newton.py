"""Damped Newton method with backtracking line search.

This is the inner loop of the barrier method: minimize a smooth strictly
convex function whose value may be ``+inf`` outside its (open) domain — the
line search simply backtracks until it is back inside.  Implementation
follows Boyd & Vandenberghe, *Convex Optimization* (the paper's reference
[25]), algorithm 9.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SolverError

#: Function returning (value, gradient, hessian) at x.
ValueGradHess = Callable[[np.ndarray], tuple[float, np.ndarray, np.ndarray]]


@dataclass
class NewtonOptions:
    """Tuning knobs for the damped Newton loop.

    Attributes:
        tol: stop when the Newton decrement squared over two drops below it.
        max_iterations: Newton step budget.
        alpha: line-search sufficient-decrease fraction (0, 0.5).
        beta: line-search backtracking factor (0, 1).
        regularization: multiple of identity added to the Hessian when the
            factorization fails (handles semidefinite corner cases).
    """

    tol: float = 1e-9
    max_iterations: int = 100
    alpha: float = 0.2
    beta: float = 0.6
    regularization: float = 1e-10


@dataclass
class NewtonOutcome:
    """Result of a Newton minimization.

    Attributes:
        x: final iterate.
        value: objective value at `x`.
        iterations: Newton steps taken.
        converged: True when the decrement criterion was met.
    """

    x: np.ndarray
    value: float
    iterations: int
    converged: bool


def minimize_newton(
    func: ValueGradHess,
    x0: np.ndarray,
    options: NewtonOptions | None = None,
) -> NewtonOutcome:
    """Minimize a smooth convex `func` from a feasible start `x0`.

    Args:
        func: returns ``(value, gradient, hessian)``; must be finite at
            `x0`.
        x0: strictly feasible starting point.
        options: see :class:`NewtonOptions`.

    Returns:
        A :class:`NewtonOutcome`.

    Raises:
        SolverError: if `x0` is outside the function's domain.
    """
    opts = options or NewtonOptions()
    x = np.asarray(x0, dtype=float).copy()
    value, grad, hess = func(x)
    if not np.isfinite(value):
        raise SolverError("Newton start point is outside the domain")

    for iteration in range(opts.max_iterations):
        step = _newton_step(hess, grad, opts.regularization)
        decrement_sq = float(-grad @ step)
        if decrement_sq < 0:
            # Numerical asymmetry; re-solve with extra regularization.
            step = _newton_step(
                hess, grad, max(opts.regularization * 1e4, 1e-8)
            )
            decrement_sq = max(float(-grad @ step), 0.0)
        if decrement_sq / 2.0 <= opts.tol:
            return NewtonOutcome(x, value, iteration, converged=True)

        # Backtracking line search on value (+inf outside the domain).
        t = 1.0
        while True:
            candidate = x + t * step
            cand_value, cand_grad, cand_hess = func(candidate)
            if np.isfinite(cand_value) and (
                cand_value <= value - opts.alpha * t * decrement_sq
            ):
                break
            t *= opts.beta
            if t < 1e-14:
                # No progress possible: treat as converged at x.
                return NewtonOutcome(x, value, iteration, converged=True)
        x, value, grad, hess = candidate, cand_value, cand_grad, cand_hess

    return NewtonOutcome(x, value, opts.max_iterations, converged=False)


def _newton_step(
    hess: np.ndarray, grad: np.ndarray, regularization: float
) -> np.ndarray:
    """Solve ``H step = -grad`` robustly."""
    n = len(grad)
    reg = regularization
    for _ in range(6):
        try:
            return np.linalg.solve(hess + reg * np.eye(n), -grad)
        except np.linalg.LinAlgError:
            reg = max(reg * 100.0, 1e-12)
    raise SolverError("Newton step solve failed even with regularization")
