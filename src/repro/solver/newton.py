"""Damped Newton method with backtracking line search.

This is the inner loop of the barrier method: minimize a smooth strictly
convex function whose value may be ``+inf`` outside its (open) domain — the
line search simply backtracks until it is back inside.  Implementation
follows Boyd & Vandenberghe, *Convex Optimization* (the paper's reference
[25]), algorithm 9.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SolverError

#: Function returning (value, gradient, hessian) at x.
ValueGradHess = Callable[[np.ndarray], tuple[float, np.ndarray, np.ndarray]]


@dataclass
class NewtonOptions:
    """Tuning knobs for the damped Newton loop.

    Attributes:
        tol: stop when the Newton decrement squared over two drops below it.
        max_iterations: Newton step budget.
        alpha: line-search sufficient-decrease fraction (0, 0.5).
        beta: line-search backtracking factor (0, 1).
        regularization: multiple of identity added to the Hessian when the
            factorization fails (handles semidefinite corner cases).
        stall_tolerance: relative objective decrease below which an
            iteration counts as stalled.  Near a barrier stage's center
            the decrement is computed through Hessians conditioned like
            ``1/slack^2`` and may never numerically reach `tol` even
            though the iterate has stopped moving; without this exit such
            stages grind through the whole iteration budget making no
            progress.
        stall_iterations: consecutive stalled iterations after which the
            minimization stops and reports convergence.
    """

    tol: float = 1e-9
    max_iterations: int = 100
    alpha: float = 0.2
    beta: float = 0.6
    regularization: float = 1e-10
    stall_tolerance: float = 1e-13
    stall_iterations: int = 3


@dataclass
class NewtonOutcome:
    """Result of a Newton minimization.

    Attributes:
        x: final iterate.
        value: objective value at `x`.
        iterations: Newton steps taken.
        converged: True when the decrement criterion was met.
    """

    x: np.ndarray
    value: float
    iterations: int
    converged: bool


def minimize_newton(
    func: ValueGradHess,
    x0: np.ndarray,
    options: NewtonOptions | None = None,
    value_func: Callable[[np.ndarray], float] | None = None,
) -> NewtonOutcome:
    """Minimize a smooth convex `func` from a feasible start `x0`.

    Args:
        func: returns ``(value, gradient, hessian)``; must be finite at
            `x0`.
        x0: strictly feasible starting point.
        options: see :class:`NewtonOptions`.
        value_func: optional value-only evaluator, arithmetically
            identical to ``func(x)[0]``.  When given, line-search trial
            points are evaluated value-only (the accepted point gets one
            full evaluation) — same iterates bit-for-bit, but the
            rejected trials skip every gradient/Hessian product.

    Returns:
        A :class:`NewtonOutcome`.

    Raises:
        SolverError: if `x0` is outside the function's domain.
    """
    opts = options or NewtonOptions()
    x = np.asarray(x0, dtype=float).copy()
    value, grad, hess = func(x)
    if not np.isfinite(value):
        raise SolverError("Newton start point is outside the domain")

    stalled = 0
    for iteration in range(opts.max_iterations):
        step = _newton_step(hess, grad, opts.regularization)
        decrement_sq = float(-grad @ step)
        if decrement_sq < 0:
            # Numerical asymmetry; re-solve with extra regularization.
            step = _newton_step(
                hess, grad, max(opts.regularization * 1e4, 1e-8)
            )
            decrement_sq = max(float(-grad @ step), 0.0)
        if decrement_sq / 2.0 <= opts.tol:
            return NewtonOutcome(x, value, iteration, converged=True)

        # Backtracking line search on value (+inf outside the domain).
        t = 1.0
        while True:
            candidate = x + t * step
            if value_func is None:
                cand_value, cand_grad, cand_hess = func(candidate)
            else:
                cand_value = value_func(candidate)
            if np.isfinite(cand_value) and (
                cand_value <= value - opts.alpha * t * decrement_sq
            ):
                break
            t *= opts.beta
            if t < 1e-14:
                # No progress possible: treat as converged at x.
                return NewtonOutcome(x, value, iteration, converged=True)
        if value_func is not None:
            _full_value, cand_grad, cand_hess = func(candidate)
        if value - cand_value <= opts.stall_tolerance * max(1.0, abs(value)):
            stalled += 1
        else:
            stalled = 0
        x, value, grad, hess = candidate, cand_value, cand_grad, cand_hess
        if stalled >= opts.stall_iterations:
            # The iterate has numerically stopped moving; the decrement is
            # below float resolution of this Hessian's conditioning.
            return NewtonOutcome(x, value, iteration + 1, converged=True)

    return NewtonOutcome(x, value, opts.max_iterations, converged=False)


@dataclass
class BatchNewtonOutcome:
    """Result of a lockstep batched Newton minimization.

    Attributes:
        x: final iterates, shape (n, batch).
        values: objective values per cell.
        iterations: Newton steps taken per cell.
        converged: per-cell convergence flags.
    """

    x: np.ndarray
    values: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


#: Batched evaluation: maps columns (n, k) plus their batch indices (k,) to
#: per-cell (values (k,), gradients (k, n), Hessians (k, n, n)).
BatchValueGradHess = Callable[
    [np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]
]


def minimize_newton_batch(
    func: BatchValueGradHess,
    x0: np.ndarray,
    options: NewtonOptions | None = None,
    value_func: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> BatchNewtonOutcome:
    """Minimize several independent smooth convex cells in lockstep.

    Each column of `x0` is an independent minimization sharing the same
    evaluation machinery (one batched `func` call advances every still-
    active cell — see `repro.solver.compiled.BatchedCompiledConstraints`).
    The iteration matches :func:`minimize_newton` cell-wise: damped Newton
    with per-cell backtracking line search; cells drop out of the batch as
    their decrement criterion is met.

    Args:
        func: batched ``(columns, batch_indices) -> (values, grads,
            hessians)`` evaluator; must be finite at every start column.
        x0: starting columns, shape (n, batch); each strictly feasible.
        options: see :class:`NewtonOptions`.
        value_func: optional value-only evaluator ``(columns, batch
            indices) -> values``, arithmetically identical to
            ``func(...)[0]``.  When given, line-search rounds evaluate
            values only; cells that accepted a step get one shared full
            evaluation per iteration to refresh their derivatives.

    Returns:
        A :class:`BatchNewtonOutcome`.

    Raises:
        SolverError: if any start column is outside the domain.
    """
    opts = options or NewtonOptions()
    x = np.asarray(x0, dtype=float).copy()
    n, batch = x.shape
    all_cols = np.arange(batch)
    values, grads, hessians = func(x, all_cols)
    if not np.all(np.isfinite(values)):
        raise SolverError("batched Newton start point outside the domain")

    iterations = np.zeros(batch, dtype=int)
    converged = np.zeros(batch, dtype=bool)
    active = np.ones(batch, dtype=bool)
    stalled = np.zeros(batch, dtype=int)
    eye = np.eye(n)

    for _ in range(opts.max_iterations):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        g = grads[idx]
        h = hessians[idx]
        steps = _newton_step_batch(h, g, opts.regularization, eye)
        decrement_sq = -np.einsum("ki,ki->k", g, steps)
        redo = decrement_sq < 0
        if np.any(redo):
            steps[redo] = _newton_step_batch(
                h[redo],
                g[redo],
                max(opts.regularization * 1e4, 1e-8),
                eye,
            )
            decrement_sq[redo] = np.maximum(
                -np.einsum("ki,ki->k", g[redo], steps[redo]), 0.0
            )
        done = decrement_sq / 2.0 <= opts.tol
        converged[idx[done]] = True
        active[idx[done]] = False
        idx = idx[~done]
        if idx.size == 0:
            break
        steps = steps[~done]
        decrement_sq = decrement_sq[~done]
        iterations[idx] += 1

        # Per-cell backtracking line search, evaluated on the shrinking
        # set of cells that have not yet accepted a step.
        t = np.ones(idx.size)
        pending = np.arange(idx.size)
        refresh: list[np.ndarray] = []
        while pending.size:
            cols = idx[pending]
            candidates = x[:, cols] + t[pending] * steps[pending].T
            if value_func is None:
                c_vals, c_grads, c_hess = func(candidates, cols)
            else:
                c_vals = value_func(candidates, cols)
            accept = np.isfinite(c_vals) & (
                c_vals
                <= values[cols]
                - opts.alpha * t[pending] * decrement_sq[pending]
            )
            if np.any(accept):
                acc_cols = cols[accept]
                progress = values[acc_cols] - c_vals[accept]
                small = progress <= opts.stall_tolerance * np.maximum(
                    1.0, np.abs(values[acc_cols])
                )
                stalled[acc_cols] = np.where(small, stalled[acc_cols] + 1, 0)
                x[:, acc_cols] = candidates[:, accept]
                values[acc_cols] = c_vals[accept]
                if value_func is None:
                    grads[acc_cols] = c_grads[accept]
                    hessians[acc_cols] = c_hess[accept]
                else:
                    refresh.append(acc_cols)
                frozen = acc_cols[
                    stalled[acc_cols] >= opts.stall_iterations
                ]
                if frozen.size:
                    # Numerically stopped moving: report converged.
                    converged[frozen] = True
                    active[frozen] = False
            rejected = pending[~accept]
            t[rejected] *= opts.beta
            exhausted = t[rejected] < 1e-14
            if np.any(exhausted):
                # No progress possible: freeze those cells as converged,
                # matching the serial line-search fallback.
                frozen = idx[rejected[exhausted]]
                converged[frozen] = True
                active[frozen] = False
                rejected = rejected[~exhausted]
            pending = rejected
        if value_func is not None and refresh:
            # One shared full evaluation refreshes the derivatives of every
            # cell that accepted a step and is still iterating.
            ref = np.concatenate(refresh)
            ref = ref[active[ref]]
            if ref.size:
                _vals, r_grads, r_hess = func(x[:, ref], ref)
                grads[ref] = r_grads
                hessians[ref] = r_hess

    return BatchNewtonOutcome(
        x=x, values=values, iterations=iterations, converged=converged
    )


def _newton_step_batch(
    hess: np.ndarray, grad: np.ndarray, regularization: float, eye: np.ndarray
) -> np.ndarray:
    """Batched ``H step = -grad`` solve with escalating regularization."""
    reg = regularization
    for _ in range(6):
        try:
            return np.linalg.solve(hess + reg * eye, -grad[..., None])[
                ..., 0
            ]
        except np.linalg.LinAlgError:
            reg = max(reg * 100.0, 1e-12)
    raise SolverError("batched Newton step solve failed with regularization")


def _newton_step(
    hess: np.ndarray, grad: np.ndarray, regularization: float
) -> np.ndarray:
    """Solve ``H step = -grad`` robustly."""
    n = len(grad)
    reg = regularization
    for _ in range(6):
        try:
            return np.linalg.solve(hess + reg * np.eye(n), -grad)
        except np.linalg.LinAlgError:
            reg = max(reg * 100.0, 1e-12)
    raise SolverError("Newton step solve failed even with regularization")
