"""Cross-check backend: solve the same convex programs with scipy.

The barrier solver in this package is hand-written; to guard against subtle
bugs, this module solves the identical problem with
``scipy.optimize.minimize`` (SLSQP), and the test suite asserts both
backends agree on objective values and solutions.  SLSQP is a local SQP
method, but on convex problems a local optimum is global, so agreement is a
meaningful check.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.errors import SolverError
from repro.solver.problem import (
    BoxConstraint,
    ConstraintBlock,
    LinearInequality,
    Objective,
    SqrtSumConstraint,
    max_violation,
)
from repro.solver.result import SolveResult, SolveStatus


def solve_scipy(
    objective: Objective,
    blocks: list[ConstraintBlock],
    x0: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iterations: int = 500,
) -> SolveResult:
    """Solve with scipy SLSQP; same problem interface as `solve_barrier`.

    Args:
        objective: smooth convex objective.
        blocks: constraint blocks (the types from `repro.solver.problem`).
        x0: starting point.
        tol: SLSQP tolerance.
        max_iterations: SLSQP iteration cap.

    Returns:
        A :class:`SolveResult` (status OPTIMAL on SLSQP success with a
        feasible point, INFEASIBLE when SLSQP reports incompatibility or
        the final point violates constraints badly).
    """
    x0 = np.asarray(x0, dtype=float)
    constraints = []
    bounds = [(None, None)] * len(x0)
    for block in blocks:
        if isinstance(block, LinearInequality):
            a, b = block.a, block.b
            constraints.append(
                {
                    "type": "ineq",
                    "fun": lambda x, a=a, b=b: b - a @ x,
                    "jac": lambda x, a=a: -a,
                }
            )
        elif isinstance(block, BoxConstraint):
            for idx, lo, hi in zip(block.indices, block.lower, block.upper):
                bounds[idx] = (lo, hi)
        elif isinstance(block, SqrtSumConstraint):
            w, idxs, target = block.weights, block.indices, block.target

            def fun(x, w=w, idxs=idxs, target=target):
                return float(w @ np.sqrt(np.clip(x[idxs], 0, None))) - target

            def jac(x, w=w, idxs=idxs):
                g = np.zeros(len(x))
                roots = np.sqrt(np.clip(x[idxs], 1e-12, None))
                g[idxs] = w / (2.0 * roots)
                return g

            constraints.append({"type": "ineq", "fun": fun, "jac": jac})
        else:
            raise SolverError(
                f"scipy backend does not support {type(block).__name__}"
            )

    result = minimize(
        fun=lambda x: objective.value(x),
        x0=x0,
        jac=lambda x: objective.gradient(x),
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": tol},
    )

    violation = max_violation(blocks, result.x)
    feasible = violation <= 1e-6
    if result.success and feasible:
        status = SolveStatus.OPTIMAL
    elif not feasible:
        status = SolveStatus.INFEASIBLE
    else:
        status = SolveStatus.MAX_ITERATIONS
    return SolveResult(
        status=status,
        x=np.asarray(result.x, dtype=float),
        objective=float(result.fun),
        iterations=int(result.nit),
        max_violation=violation,
    )
