"""KKT residual checks for verified optimality.

For a convex program ``min f0(x) s.t. f_i(x) <= 0`` a point is optimal iff
there exist multipliers ``lambda_i >= 0`` with

* stationarity:       ``grad f0(x) + sum_i lambda_i grad f_i(x) = 0``
* complementarity:    ``lambda_i f_i(x) = 0``
* primal feasibility: ``f_i(x) <= 0``

The barrier method produces multiplier estimates ``lambda_i = 1/(t (-f_i))``;
this module evaluates the three residuals so tests can assert optimality
independently of the solver's own convergence claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.barrier import _residual_derivatives
from repro.solver.problem import ConstraintBlock, Objective


@dataclass(frozen=True)
class KKTResiduals:
    """Residuals of the KKT conditions at a candidate optimum.

    Attributes:
        stationarity: infinity norm of the Lagrangian gradient.
        complementarity: max of ``|lambda_i * f_i(x)|``.
        primal: max constraint violation (<= 0 means feasible).
        dual: most negative multiplier (>= 0 means dual feasible).
    """

    stationarity: float
    complementarity: float
    primal: float
    dual: float

    def satisfied(
        self,
        *,
        stationarity_tol: float = 1e-4,
        complementarity_tol: float = 1e-4,
        feasibility_tol: float = 1e-7,
    ) -> bool:
        """True when all four conditions hold within tolerances."""
        return (
            self.stationarity <= stationarity_tol
            and self.complementarity <= complementarity_tol
            and self.primal <= feasibility_tol
            and self.dual >= -feasibility_tol
        )


def kkt_residuals(
    objective: Objective,
    blocks: list[ConstraintBlock],
    x: np.ndarray,
    dual_variables: np.ndarray,
) -> KKTResiduals:
    """Evaluate KKT residuals at `x` with the given multipliers.

    Args:
        objective: the objective.
        blocks: constraint blocks, same order as used in the solve.
        x: candidate primal point.
        dual_variables: multipliers, concatenated across blocks in order.

    Returns:
        A :class:`KKTResiduals`.
    """
    x = np.asarray(x, dtype=float)
    lagrangian_grad = objective.gradient(x).astype(float).copy()
    comp = 0.0
    primal = -np.inf
    offset = 0
    for block in blocks:
        res, jac, _hess = _residual_derivatives(block, x)
        k = len(res)
        lam = np.asarray(dual_variables[offset : offset + k], dtype=float)
        offset += k
        lagrangian_grad += jac.T @ lam
        comp = max(comp, float(np.max(np.abs(lam * res))) if k else 0.0)
        primal = max(primal, float(np.max(res)) if k else -np.inf)
    dual_min = float(np.min(dual_variables)) if len(dual_variables) else 0.0
    return KKTResiduals(
        stationarity=float(np.max(np.abs(lagrangian_grad))),
        complementarity=comp,
        primal=primal,
        dual=dual_min,
    )
