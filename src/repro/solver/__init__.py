"""Convex optimization: barrier interior-point solver and scipy cross-check.

For repeated solves of structurally identical programs (the Phase-1 table
sweep), `repro.solver.compiled.CompiledConstraints` stacks the linear and
box constraint blocks into one matrix once and evaluates the log barrier
fully vectorized; `solve_barrier` accepts such a stack via ``compiled=``
and additionally skips phase I whenever the supplied start is already
strictly feasible (warm starting).
"""

from repro.solver.barrier import (
    BarrierOptions,
    find_strictly_feasible,
    solve_barrier,
)
from repro.solver.compiled import CompiledConstraints
from repro.solver.kkt import KKTResiduals, kkt_residuals
from repro.solver.newton import NewtonOptions, NewtonOutcome, minimize_newton
from repro.solver.problem import (
    BoxConstraint,
    LinearInequality,
    LinearObjective,
    QuadraticObjective,
    SqrtSumConstraint,
    max_violation,
    total_constraints,
)
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.scipy_backend import solve_scipy

__all__ = [
    "BarrierOptions",
    "BoxConstraint",
    "CompiledConstraints",
    "KKTResiduals",
    "LinearInequality",
    "LinearObjective",
    "NewtonOptions",
    "NewtonOutcome",
    "QuadraticObjective",
    "SolveResult",
    "SolveStatus",
    "SqrtSumConstraint",
    "find_strictly_feasible",
    "kkt_residuals",
    "max_violation",
    "minimize_newton",
    "solve_barrier",
    "solve_scipy",
    "total_constraints",
]
