"""Convex optimization: barrier interior-point solver and scipy cross-check."""

from repro.solver.barrier import (
    BarrierOptions,
    find_strictly_feasible,
    solve_barrier,
)
from repro.solver.kkt import KKTResiduals, kkt_residuals
from repro.solver.newton import NewtonOptions, NewtonOutcome, minimize_newton
from repro.solver.problem import (
    BoxConstraint,
    LinearInequality,
    LinearObjective,
    QuadraticObjective,
    SqrtSumConstraint,
    max_violation,
    total_constraints,
)
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.scipy_backend import solve_scipy

__all__ = [
    "BarrierOptions",
    "BoxConstraint",
    "KKTResiduals",
    "LinearInequality",
    "LinearObjective",
    "NewtonOptions",
    "NewtonOutcome",
    "QuadraticObjective",
    "SolveResult",
    "SolveStatus",
    "SqrtSumConstraint",
    "find_strictly_feasible",
    "kkt_residuals",
    "max_violation",
    "minimize_newton",
    "solve_barrier",
    "solve_scipy",
    "total_constraints",
]
