"""Convex problem building blocks: objectives and constraint blocks.

The barrier solver (`repro.solver.barrier`) consumes:

* an **objective** exposing ``value(x)``, ``gradient(x)`` and ``hessian(x)``;
* a list of **constraint blocks**, each representing a batch of scalar
  convex inequalities ``f_i(x) <= 0`` and exposing residuals plus the
  log-barrier contribution ``-sum_i log(-f_i(x))`` with its gradient and
  Hessian.

Only the pieces needed by the Pro-Temp program family are implemented —
linear objectives, linear inequalities and the concave square-root
frequency constraint (Eq. 3's ``sum_i f_i >= n f_target`` expressed in power
variables) — but each is written against the generic interface so the solver
itself stays problem-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import SolverError

#: Slacks below this are treated as domain violations.  1/slack^2 would
#: overflow to inf near 1e-154 and poison Newton's linear solve; the line
#: search backtracks instead.
SLACK_FLOOR = 1e-120


@runtime_checkable
class Objective(Protocol):
    """Smooth convex objective."""

    def value(self, x: np.ndarray) -> float:
        """Objective value at `x`."""
        ...

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Gradient at `x`, shape (n,)."""
        ...

    def hessian(self, x: np.ndarray) -> np.ndarray:
        """Hessian at `x`, shape (n, n)."""
        ...


@runtime_checkable
class ConstraintBlock(Protocol):
    """A batch of scalar convex inequality constraints ``f_i(x) <= 0``."""

    def residuals(self, x: np.ndarray) -> np.ndarray:
        """Constraint values ``f_i(x)`` (feasible iff all <= 0)."""
        ...

    def barrier(
        self, x: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Value, gradient and Hessian of ``-sum_i log(-f_i(x))``.

        Returns ``(inf, garbage, garbage)`` outside the domain
        (any ``f_i(x) >= 0``); the Newton line search backtracks out of it.
        """
        ...

    def count(self) -> int:
        """Number of scalar constraints in the block."""
        ...


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinearObjective:
    """``c^T x``."""

    c: np.ndarray

    def value(self, x: np.ndarray) -> float:
        return float(self.c @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.c, dtype=float)

    def hessian(self, x: np.ndarray) -> np.ndarray:
        n = len(self.c)
        return np.zeros((n, n))


@dataclass(frozen=True)
class QuadraticObjective:
    """``(1/2) x^T Q x + c^T x`` with PSD ``Q``."""

    q: np.ndarray
    c: np.ndarray

    def value(self, x: np.ndarray) -> float:
        return float(0.5 * x @ self.q @ x + self.c @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.q @ x + self.c

    def hessian(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.q, dtype=float)


# ---------------------------------------------------------------------------
# Constraint blocks
# ---------------------------------------------------------------------------


@dataclass
class NegativeSqrtObjective:
    """``-sum_i w_i sqrt(x_i)`` over selected components (convex).

    Minimizing it *maximizes* the weighted sqrt-sum — used to compute the
    maximum feasible average frequency in one solve (Figure 9) and to drive
    phase I for sqrt-sum constraints.  ``+inf`` outside ``x_i > 0`` keeps
    Newton's line search inside the domain.

    Attributes:
        weights: positive coefficients, shape (k,).
        indices: components entering the sum, shape (k,).
        n_vars: dimensionality of the full variable vector.
    """

    weights: np.ndarray
    indices: np.ndarray
    n_vars: int

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.indices = np.asarray(self.indices, dtype=int)
        if self.weights.shape != self.indices.shape:
            raise SolverError("weights and indices must have the same shape")
        if np.any(self.weights <= 0):
            raise SolverError("sqrt objective weights must be positive")

    def value(self, x: np.ndarray) -> float:
        vals = x[self.indices]
        if np.any(vals <= 0):
            return np.inf
        return -float(self.weights @ np.sqrt(vals))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        grad = np.zeros(self.n_vars)
        # Clip keeps derivatives finite: roots**3 underflows to zero below
        # ~1e-103, which would divide-by-zero in the Hessian.
        roots = np.sqrt(np.clip(x[self.indices], 1e-18, None))
        grad[self.indices] = -self.weights / (2.0 * roots)
        return grad

    def hessian(self, x: np.ndarray) -> np.ndarray:
        diag = np.zeros(self.n_vars)
        roots = np.sqrt(np.clip(x[self.indices], 1e-18, None))
        diag[self.indices] = self.weights / (4.0 * roots**3)
        return np.diag(diag)


@dataclass
class LinearInequality:
    """``A x <= b`` as one block of ``len(b)`` scalar constraints."""

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self) -> None:
        self.a = np.atleast_2d(np.asarray(self.a, dtype=float))
        self.b = np.asarray(self.b, dtype=float)
        if self.a.shape[0] != self.b.shape[0]:
            raise SolverError(
                f"A has {self.a.shape[0]} rows but b has {self.b.shape[0]}"
            )

    def residuals(self, x: np.ndarray) -> np.ndarray:
        return self.a @ x - self.b

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        slack = self.b - self.a @ x
        if np.any(slack <= SLACK_FLOOR):
            n = len(x)
            return np.inf, np.zeros(n), np.zeros((n, n))
        inv = 1.0 / slack
        value = -float(np.log(slack).sum())
        grad = self.a.T @ inv
        hess = (self.a * (inv**2)[:, None]).T @ self.a
        return value, grad, hess

    def count(self) -> int:
        return len(self.b)


@dataclass
class SqrtSumConstraint:
    """``target - sum_i w_i sqrt(x_i) <= 0`` over selected components.

    This encodes the paper's average-frequency requirement (Eq. 3) in power
    space: with ``f_i = f_max sqrt(p_i / p_max)``, the constraint
    ``sum f_i >= n f_target`` becomes ``sum_i (f_max / sqrt(p_max)) sqrt(p_i)
    >= n f_target``, whose left side is concave — so the set is convex.

    Attributes:
        weights: positive coefficients ``w_i``, shape (k,).
        indices: which components of x enter the sum, shape (k,).
        target: required lower bound on the weighted sqrt-sum.
    """

    weights: np.ndarray
    indices: np.ndarray
    target: float

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        self.indices = np.asarray(self.indices, dtype=int)
        if self.weights.shape != self.indices.shape:
            raise SolverError("weights and indices must have the same shape")
        if np.any(self.weights <= 0):
            raise SolverError("sqrt-sum weights must be positive")

    def _sqrt_terms(self, x: np.ndarray) -> np.ndarray | None:
        vals = x[self.indices]
        if np.any(vals <= 0):
            return None
        return np.sqrt(vals)

    def residuals(self, x: np.ndarray) -> np.ndarray:
        vals = np.clip(x[self.indices], 0.0, None)
        return np.array([self.target - float(self.weights @ np.sqrt(vals))])

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        n = len(x)
        roots = self._sqrt_terms(x)
        if roots is None:
            return np.inf, np.zeros(n), np.zeros((n, n))
        slack = float(self.weights @ roots) - self.target
        if slack <= SLACK_FLOOR:
            return np.inf, np.zeros(n), np.zeros((n, n))
        # g(x) = target - sum w sqrt(x); barrier = -log(-g) = -log(slack)
        # dg/dx_i = -w_i / (2 sqrt(x_i));  d2g/dx_i2 = w_i / (4 x_i^(3/2))
        dg = np.zeros(n)
        dg[self.indices] = -self.weights / (2.0 * roots)
        d2g_diag = np.zeros(n)
        d2g_diag[self.indices] = self.weights / (4.0 * roots**3)
        # barrier = -log(-g) = -log(slack); d/dx = dg/slack;
        # d2/dx2 = (dg dg^T)/slack^2 + (d2g)/slack.
        value = -np.log(slack)
        grad = dg / slack
        hess = np.outer(dg, dg) / slack**2 + np.diag(d2g_diag) / slack
        return value, grad, hess

    def count(self) -> int:
        return 1


@dataclass
class BoxConstraint:
    """``lower <= x_i <= upper`` for selected components.

    Implemented as a dedicated block (rather than two LinearInequality
    blocks) because the barrier terms are diagonal and cheap.
    """

    lower: np.ndarray
    upper: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        self.indices = np.asarray(self.indices, dtype=int)
        if not (
            self.lower.shape == self.upper.shape == self.indices.shape
        ):
            raise SolverError("lower, upper, indices must share a shape")
        if np.any(self.lower >= self.upper):
            raise SolverError("box constraints need lower < upper")

    def residuals(self, x: np.ndarray) -> np.ndarray:
        vals = x[self.indices]
        return np.concatenate([self.lower - vals, vals - self.upper])

    def barrier(self, x: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        n = len(x)
        vals = x[self.indices]
        lo_slack = vals - self.lower
        hi_slack = self.upper - vals
        if np.any(lo_slack <= SLACK_FLOOR) or np.any(hi_slack <= SLACK_FLOOR):
            return np.inf, np.zeros(n), np.zeros((n, n))
        value = -float(np.log(lo_slack).sum() + np.log(hi_slack).sum())
        grad = np.zeros(n)
        grad[self.indices] = -1.0 / lo_slack + 1.0 / hi_slack
        hess_diag = np.zeros(n)
        hess_diag[self.indices] = 1.0 / lo_slack**2 + 1.0 / hi_slack**2
        return value, grad, np.diag(hess_diag)

    def count(self) -> int:
        return 2 * len(self.indices)


def total_constraints(blocks: list[ConstraintBlock]) -> int:
    """Total number of scalar constraints across blocks."""
    return sum(block.count() for block in blocks)


def max_violation(blocks: list[ConstraintBlock], x: np.ndarray) -> float:
    """Largest residual across all blocks (<= 0 means feasible)."""
    if not blocks:
        return 0.0
    return max(float(np.max(block.residuals(x))) for block in blocks)
