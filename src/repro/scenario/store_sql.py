"""SQLite outcome-store backend: one file, indexed lookups, WAL writers.

:class:`SqliteOutcomeStore` implements the
:class:`~repro.scenario.store.OutcomeStore` interface on a single SQLite
file.  It exists because the directory backend pays one file per record:
fine for a few hundred grid cells, hostile to the scenario breadth the
roadmap heads toward (heterogeneous platforms and tech-node axes multiply
the grid by orders of magnitude).  Here every record is a row in one
B-tree indexed by ``spec_hash``, so a million-record store is still one
file and one page read per lookup.

Semantics are *identical* to the other backends (the test suite asserts
observational equivalence): ``put`` of a same-content record is a no-op,
a conflicting record (same key, different spec or summary) raises
:class:`~repro.errors.OutcomeStoreError`, and records round-trip their
summary rows bit-identically (canonical JSON, ``allow_nan=False``).

Concurrency: within one process a mutex serializes access to the shared
connection; across processes SQLite's WAL mode lets concurrent shards
append while readers replay (writers briefly serialize on the database
write lock; ``busy_timeout`` absorbs the contention).  The put-time
conflict check re-reads after ``INSERT OR IGNORE``, so two processes
racing the same key converge exactly like two shards racing an atomic
``os.replace`` in the directory backend: benign for same-content records,
a loud :class:`OutcomeStoreError` otherwise.

Schema evolution: the file carries ``schema_version`` in its ``meta``
table.  Opening a store whose version is behind :data:`SCHEMA_VERSION`
applies the registered :data:`MIGRATIONS` in order; a version *ahead* of
this code refuses to open (never silently read a future layout).  The
SQL sticks to the portable subset (TEXT columns, one primary key), so a
Postgres backend is the same schema with a different connection factory.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import OutcomeStoreError
from repro.scenario.store import OutcomeStore, StoredOutcome

#: Current on-disk schema version (see MIGRATIONS for the history).
SCHEMA_VERSION = 1

#: Cross-process write-lock patience (milliseconds).
BUSY_TIMEOUT_MS = 10_000

#: Ordered schema migrations: ``MIGRATIONS[v]`` upgrades a version-``v``
#: database to version ``v + 1``.  Version 0 is the empty database, so
#: the initial schema is itself migration 0 — a store created today and a
#: store upgraded from any older version go through the same code path.
MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {}


def _migration(version: int) -> Callable[
    [Callable[[sqlite3.Connection], None]],
    Callable[[sqlite3.Connection], None],
]:
    """Register the upgrade step from `version` to ``version + 1``."""

    def register(
        func: Callable[[sqlite3.Connection], None],
    ) -> Callable[[sqlite3.Connection], None]:
        if version in MIGRATIONS:
            raise OutcomeStoreError(
                f"duplicate sqlite schema migration for version {version}"
            )
        MIGRATIONS[version] = func
        return func

    return register


@_migration(0)
def _initial_schema(connection: sqlite3.Connection) -> None:
    """Version 0 -> 1: the outcomes table and its metadata."""
    connection.execute(
        "CREATE TABLE IF NOT EXISTS outcomes ("
        " spec_hash TEXT PRIMARY KEY,"
        " spec TEXT NOT NULL,"
        " summary TEXT NOT NULL,"
        " provenance TEXT NOT NULL)"
    )


def _dump(payload: dict[str, Any]) -> str:
    """Canonical JSON for a record column (stable, NaN-rejecting)."""
    return json.dumps(
        payload, sort_keys=True, allow_nan=False, separators=(",", ":")
    )


class SqliteOutcomeStore(OutcomeStore):
    """A single-file SQLite outcome store (WAL mode, indexed by spec hash).

    Args:
        path: the database file; created (with parents) on first open.
            ``open_outcome_store`` routes ``sqlite:PATH`` URLs and
            ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` paths here.

    Example::

        store = SqliteOutcomeStore("outcomes.sqlite")
        runner = ScenarioRunner(outcome_store=store)

    The store is thread-safe (one shared connection behind a mutex) and
    multi-process-safe (WAL + busy timeout + re-check-after-insert); see
    the module docstring for the exact guarantees.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._mutex = threading.RLock()
        self._connection: sqlite3.Connection | None = None

    # -- connection / schema lifecycle -------------------------------------

    def _connect_locked(self) -> sqlite3.Connection:
        if self._connection is not None:
            return self._connection
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(
                self.path, check_same_thread=False, isolation_level=None
            )
        except (OSError, sqlite3.Error) as exc:
            raise OutcomeStoreError(
                f"cannot open sqlite outcome store {self.path}: {exc}"
            ) from exc
        try:
            connection.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS:d}")
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            self._ensure_schema_locked(connection)
        except BaseException:
            connection.close()
            raise
        self._connection = connection
        return connection

    def _ensure_schema_locked(self, connection: sqlite3.Connection) -> None:
        """Create or upgrade the schema under one cross-process lock.

        ``BEGIN IMMEDIATE`` takes the database write lock up front so two
        processes opening a fresh store do not interleave migrations; the
        version is re-read inside the transaction for the same reason.

        Raises:
            OutcomeStoreError: when the file's schema version is *newer*
                than this code (reading a future layout would be silent
                corruption) or a migration step is missing.
        """
        try:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row[0]) if row is not None else 0
            if version > SCHEMA_VERSION:
                raise OutcomeStoreError(
                    f"sqlite outcome store {self.path} has schema version "
                    f"{version}, newer than this build's {SCHEMA_VERSION}; "
                    "upgrade the package (or migrate the store) instead of "
                    "reading a future layout"
                )
            while version < SCHEMA_VERSION:
                migrate = MIGRATIONS.get(version)
                if migrate is None:
                    raise OutcomeStoreError(
                        f"no sqlite schema migration from version {version} "
                        f"(store {self.path})"
                    )
                migrate(connection)
                version += 1
            connection.execute(
                "INSERT INTO meta(key, value) VALUES('schema_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(version),),
            )
            connection.execute("COMMIT")
        except sqlite3.Error as exc:
            connection.execute("ROLLBACK")
            raise OutcomeStoreError(
                f"cannot initialize sqlite outcome store {self.path}: {exc}"
            ) from exc
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def schema_version(self) -> int:
        """The store file's current schema version (tests, tooling)."""
        with self._mutex:
            connection = self._connect_locked()
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            return int(row[0]) if row is not None else 0

    def close(self) -> None:
        """Close the underlying connection (idempotent).

        A closed store reopens transparently on the next operation; this
        exists so tests and short-lived CLI commands (``protemp migrate``)
        release the file promptly.
        """
        with self._mutex:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "SqliteOutcomeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- record (de)serialization ------------------------------------------

    def _load(self, row: "tuple[str, str, str, str]") -> StoredOutcome:
        """Decode and validate one ``outcomes`` row (spec must hash to key)."""
        spec_hash = row[0]
        try:
            payload = {
                "spec_hash": spec_hash,
                "spec": json.loads(row[1]),
                "summary": json.loads(row[2]),
                "provenance": json.loads(row[3]),
            }
        except json.JSONDecodeError as exc:
            raise OutcomeStoreError(
                f"unreadable outcome record {self.path}:{spec_hash}: {exc}"
            ) from exc
        return StoredOutcome.from_dict(
            payload, source=f"{self.path}:{spec_hash}"
        )

    # -- OutcomeStore interface --------------------------------------------

    def get(self, spec_hash: str) -> StoredOutcome | None:
        """The record stored under `spec_hash`, or None.

        Raises:
            OutcomeStoreError: when the stored row is corrupt (its spec no
                longer hashes to the key) or the file is unreadable.
        """
        with self._observe("get"):
            with self._mutex:
                connection = self._connect_locked()
                try:
                    row = connection.execute(
                        "SELECT spec_hash, spec, summary, provenance "
                        "FROM outcomes WHERE spec_hash = ?",
                        (spec_hash,),
                    ).fetchone()
                except sqlite3.Error as exc:
                    raise OutcomeStoreError(
                        f"cannot read sqlite outcome store {self.path}: {exc}"
                    ) from exc
            if row is None:
                return None
            return self._load(row)

    def put(self, record: StoredOutcome) -> None:
        """Persist `record` (idempotent; conflicts raise).

        ``INSERT OR IGNORE`` plus a re-read makes the cross-process race
        safe: whichever writer loses the insert compares content with the
        row that won, exactly like the directory backend's atomic-replace
        race — a same-content duplicate is benign, anything else raises.

        Raises:
            OutcomeStoreError: when a different record already holds the
                key (spec-hash collision or conflicting duplicate).
        """
        with self._observe("put"):
            with self._mutex:
                connection = self._connect_locked()
                if self._check_put(record) is not None:
                    return
                try:
                    cursor = connection.execute(
                        "INSERT OR IGNORE INTO outcomes"
                        " (spec_hash, spec, summary, provenance)"
                        " VALUES (?, ?, ?, ?)",
                        (
                            record.spec_hash,
                            _dump(record.spec),
                            _dump(record.summary),
                            _dump(record.provenance),
                        ),
                    )
                except (sqlite3.Error, ValueError) as exc:
                    raise OutcomeStoreError(
                        f"cannot write to sqlite outcome store {self.path}: "
                        f"{exc}"
                    ) from exc
                if cursor.rowcount == 0:
                    # Lost a cross-process race since _check_put: re-read and
                    # apply the same benign-duplicate / conflict semantics.
                    self._check_put(record)

    def records(self) -> Iterator[StoredOutcome]:
        """Iterate every record, ordered by spec hash (deterministic)."""
        with self._mutex:
            connection = self._connect_locked()
            try:
                rows = connection.execute(
                    "SELECT spec_hash, spec, summary, provenance "
                    "FROM outcomes ORDER BY spec_hash"
                ).fetchall()
            except sqlite3.Error as exc:
                raise OutcomeStoreError(
                    f"cannot read sqlite outcome store {self.path}: {exc}"
                ) from exc
        for row in rows:
            yield self._load(row)

    def __len__(self) -> int:
        with self._mutex:
            connection = self._connect_locked()
            row = connection.execute(
                "SELECT COUNT(*) FROM outcomes"
            ).fetchone()
            return int(row[0])
