"""ScenarioRunner: materialize, deduplicate, and execute scenario grids.

The runner is the execution substrate behind every figure-level experiment
and the ``protemp run`` CLI:

* **artifact caches** — one :class:`~repro.platform.Platform` per distinct
  :class:`PlatformSpec`, one :class:`~repro.core.protemp.ProTempOptimizer`
  per (platform, mode, step_subsample), and — the expensive one — one
  Phase-1 :class:`~repro.core.table.FrequencyTable` per distinct
  (platform spec, table config) key, built with the gen2 sweep and
  optionally persisted to a JSON cache directory with provenance
  (platform spec hash, strategy, build timestamp);
* **grid execution** — :meth:`run_many` resolves every distinct table
  exactly once up front, then fans the scenarios out over a process pool
  (``n_workers``) or runs them serially; parallel and serial runs produce
  bit-identical :class:`ScenarioOutcome` lists because every stochastic
  component is seeded from the spec (see `repro.scenario.specs`);
* **outcome store** — with ``outcome_store=`` the same dedup is lifted to
  whole scenarios: a cell whose spec hash is already in the store
  (this session, an earlier one, another shard's host) is *replayed* —
  ``outcome_cache_hit=True``, no simulation, no table resolve — and fresh
  cells are written back atomically (see `repro.scenario.store`).

Pre-built artifacts can be *primed* into the caches
(:meth:`prime_platform` / :meth:`prime_table`), which is how tests and
experiments reuse session-scoped fixtures instead of rebuilding tables.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.control.manager import ThermalManagementUnit
from repro.core.protemp import ProTempOptimizer
from repro.core.table import FrequencyTable, build_frequency_table
from repro.observability import MetricsRegistry
from repro.errors import OutcomeStoreError, ScenarioError, TableError
from repro.platform import Platform
from repro.scenario.registry import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
)
from repro.scenario.specs import (
    PlatformSpec,
    PolicySpec,
    ScenarioSpec,
    _spec_hash,
)
from repro.scenario.store import (
    OutcomeStore,
    StoredOutcome,
    open_outcome_store,
)
from repro.sim.engine import (
    MulticoreSimulator,
    SimulationConfig,
    SimulationResult,
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's outcome plus provenance — executed or replayed.

    **Cache-provenance semantics** (each flag describes *this* call, never
    an earlier run):

    * ``outcome_cache_hit`` — True when the whole scenario was answered
      from an outcome store (no simulation ran); False when this call
      executed the simulation.
    * ``table_cache_hit`` — True/False when this call consulted/built the
      policy's Phase-1 table, None when *no table was touched this call*:
      either the policy needs none, or the scenario was replayed from the
      store (a replay never resolves a table).  The original run's table
      provenance survives in ``stored.provenance``.

    **Wall-time semantics**: ``wall_time_s`` is always this call's cost —
    the simulation for an executed scenario, the (near-zero) store lookup
    for a replay.  ``solve_wall_time_s`` is always the cost of the
    simulation that produced the summary, wherever it ran: equal to
    ``wall_time_s`` for executed scenarios, copied from the store record
    for replays.  A replay therefore never reports the original solve's
    wall time as its own.

    Attributes:
        spec: the scenario.
        spec_hash: :attr:`ScenarioSpec.spec_hash` (stable across processes).
        result: the full :class:`SimulationResult`, or None for a replay
            (stores persist summary rows, not timeseries); use
            :meth:`require_result` when timeseries are mandatory.
        wall_time_s: wall-clock seconds this call spent (see above).
        table_cache_hit: Phase-1 table provenance of this call (see above).
        table_key: cache key of the table used (None when no table; for
            replays, the original run's key from the store record).
        outcome_cache_hit: True when replayed from an outcome store.
        solve_wall_time_s: wall time of the simulation that produced the
            summary (see above); None only on legacy records lacking it.
        stored: the :class:`~repro.scenario.store.StoredOutcome` a replay
            came from (None for executed scenarios).
    """

    spec: ScenarioSpec
    spec_hash: str
    result: SimulationResult | None
    wall_time_s: float
    table_cache_hit: bool | None
    table_key: str | None = None
    outcome_cache_hit: bool = False
    solve_wall_time_s: float | None = None
    stored: "StoredOutcome | None" = None

    def require_result(self) -> SimulationResult:
        """The full :class:`SimulationResult`, or a clear error for replays.

        Raises:
            ScenarioError: when this outcome was replayed from an outcome
                store (only summary rows persist; re-run without the store
                hit — e.g. a fresh store — to regain timeseries).
        """
        if self.result is None:
            raise ScenarioError(
                f"scenario {self.spec.label!r} was replayed from the outcome "
                "store, which persists summary rows only; timeseries-level "
                "reducers need an executed run"
            )
        return self.result

    # -- summary access (works for executed and replayed outcomes) ---------

    def data_row(self) -> dict:
        """The deterministic summary row — pure simulation results.

        This is the row the outcome store persists and ``protemp merge``
        compares: it contains no wall times and no cache flags, so the row
        for a given spec is bit-identical whether the cell was computed
        here, on another shard, or in an earlier session.  All values are
        plain JSON scalars/lists (floats round-trip exactly).
        """
        if self.result is None:
            assert self.stored is not None
            return dict(self.stored.summary)
        metrics = self.result.metrics
        return {
            "scenario": self.spec.label,
            "spec_hash": self.spec_hash,
            "policy": self.result.policy_name,
            "workload": self.result.trace_name,
            "platform": self.spec.platform.name,
            "seed": self.spec.seed,
            "peak_c": float(metrics.peak_temperature),
            "violation_fraction": float(metrics.violation_fraction),
            "mean_wait_s": float(metrics.waiting.mean),
            "completed_tasks": int(metrics.completed_tasks),
            "arrived_tasks": int(metrics.arrived_tasks),
            "band_fractions": [float(f) for f in self.result.band_fractions],
            "gradient_mean_c": float(metrics.gradient.mean),
            "gradient_max_c": float(metrics.gradient.max),
        }

    def summary_row(self) -> dict:
        """Flat JSON-compatible summary (the ``protemp run --json`` row).

        :meth:`data_row` plus this call's provenance: ``wall_time_s``,
        ``solve_wall_time_s``, ``table_cache_hit``, ``outcome_cache_hit``.
        """
        row = self.data_row()
        row["wall_time_s"] = self.wall_time_s
        row["solve_wall_time_s"] = self.solve_wall_time_s
        row["table_cache_hit"] = self.table_cache_hit
        row["outcome_cache_hit"] = self.outcome_cache_hit
        return row

    # Summary-level metric accessors: reducers that only need figure-level
    # aggregates (bands, waits, violations, gradients) use these so they
    # work identically on executed and store-replayed outcomes.

    @property
    def policy_label(self) -> str:
        """Display name of the policy that ran (e.g. ``"Pro-Temp"``)."""
        return self.data_row()["policy"]

    @property
    def workload_label(self) -> str:
        """Display name of the workload trace."""
        return self.data_row()["workload"]

    @property
    def peak_c(self) -> float:
        """Hottest core temperature observed (Celsius)."""
        return self.data_row()["peak_c"]

    @property
    def violation_fraction(self) -> float:
        """Fraction of (core, step) samples above t_max."""
        return self.data_row()["violation_fraction"]

    @property
    def mean_wait_s(self) -> float:
        """Mean task waiting time (s) — the Figure 7 metric."""
        return self.data_row()["mean_wait_s"]

    @property
    def band_fractions(self) -> np.ndarray:
        """Mean per-band time fractions (the Figure 6 bars)."""
        if self.result is not None:
            return self.result.band_fractions
        return np.asarray(self.data_row()["band_fractions"], dtype=float)

    @property
    def gradient_mean_c(self) -> float:
        """Mean spatial gradient, max - min core temperature (Celsius)."""
        return self.data_row()["gradient_mean_c"]

    @property
    def gradient_max_c(self) -> float:
        """Peak spatial gradient (Celsius)."""
        return self.data_row()["gradient_max_c"]


def table_key(platform_spec: PlatformSpec, policy_spec: PolicySpec) -> str:
    """Cache key of the Phase-1 table a (platform, policy) pair needs.

    Two specs share a table exactly when they agree on the platform spec
    and the policy's table configuration (mode, grids, subsampling,
    strategy, backend) — the remaining policy params do not influence the
    table.
    """
    config = policy_spec.table_config()
    payload = {
        "platform": platform_spec.to_dict(),
        "mode": config["mode"],
        "t_grid": list(config["t_grid"]),
        "f_grid": list(config["f_grid"]),
        "step_subsample": config["step_subsample"],
        "strategy": config["strategy"],
    }
    # The default backend is omitted so pre-backend cache keys (and the
    # table caches stored under them) stay valid.
    if config["backend"] != "barrier":
        payload["backend"] = config["backend"]
    return _spec_hash(payload)


def build_trace(spec: ScenarioSpec, n_cores: int):
    """Materialize the scenario's task trace (seeded from the spec).

    Args:
        spec: the scenario whose workload sub-spec to resolve.
        n_cores: number of cores the trace targets.

    Returns:
        A ``TaskTrace`` from the registered workload factory.

    Raises:
        ScenarioError: for unknown workload names.
    """
    entry = WORKLOADS.get(spec.workload.name)
    return entry.factory(
        spec.workload.duration,
        n_cores,
        seed=spec.trace_seed,
        **spec.workload.kwargs,
    )


def build_policy(
    spec: ScenarioSpec,
    table: FrequencyTable | None,
    platform: Platform | None = None,
):
    """Materialize the scenario's DFS policy (table/platform injected).

    Args:
        spec: the scenario whose policy sub-spec to resolve.
        table: the Phase-1 table for table-driven policies (None otherwise).
        platform: the materialized platform for model-based policies
            (``needs_platform`` registrations — the factory receives it
            first, plus ``window=`` with the scenario's DFS period unless
            the spec pins one).

    Returns:
        A ``DFSPolicy`` from the registered factory.

    Raises:
        ScenarioError: for unknown policy names, when a table-driven
            policy is given no table, or a model-based one no platform.
    """
    entry = POLICIES.get(spec.policy.name)
    kwargs = spec.policy.factory_kwargs()
    if entry.needs_table:
        if table is None:
            raise ScenarioError(
                f"policy {spec.policy.name!r} needs a frequency table"
            )
        return entry.factory(table, **kwargs)
    if entry.needs_platform:
        if platform is None:
            raise ScenarioError(
                f"policy {spec.policy.name!r} needs a materialized platform"
            )
        kwargs.setdefault("window", spec.window)
        return entry.factory(platform, **kwargs)
    return entry.factory(**kwargs)


def build_sensor(spec: ScenarioSpec):
    """Materialize the scenario's sensor model (seeded from the spec)."""
    entry = SENSORS.get(spec.sensor.name)
    kwargs = dict(spec.sensor.kwargs)
    if entry.needs_seed:
        kwargs.setdefault("seed", spec.sensor_seed)
    return entry.factory(**kwargs)


def build_assignment(spec: ScenarioSpec):
    """Materialize the scenario's task-assignment policy."""
    entry = ASSIGNMENTS.get(spec.assignment)
    kwargs: dict = {}
    if entry.needs_seed:
        kwargs["seed"] = spec.assignment_seed
    return entry.factory(**kwargs)


def execute_scenario(
    spec: ScenarioSpec,
    platform: Platform,
    table: FrequencyTable | None,
) -> SimulationResult:
    """Run one scenario against pre-resolved artifacts (pure, seeded).

    Args:
        spec: the scenario to simulate.
        platform: the materialized platform for ``spec.platform``.
        table: the Phase-1 table for table-driven policies (None otherwise).

    Returns:
        The full :class:`SimulationResult`; identical specs and artifacts
        produce bit-identical results (every stochastic component is
        seeded from the spec).
    """
    policy = build_policy(spec, table, platform)
    tmu = ThermalManagementUnit(
        policy=policy,
        f_max=platform.f_max,
        t_max=platform.t_max,
        window=spec.window,
        sensor=build_sensor(spec),
    )
    sim = MulticoreSimulator(
        platform,
        tmu,
        assignment=build_assignment(spec),
        config=SimulationConfig(
            window=spec.window,
            max_time=spec.horizon,
            t_initial=spec.t_initial,
        ),
    )
    return sim.run(build_trace(spec, platform.n_cores))


def _run_in_worker(
    spec: ScenarioSpec,
    platform: Platform,
    table: FrequencyTable | None,
) -> tuple[SimulationResult, float]:
    """Process-pool entry point: execute and time one scenario."""
    started = time.perf_counter()
    result = execute_scenario(spec, platform, table)
    return result, time.perf_counter() - started


class ScenarioRunner:
    """Execute scenario specs with artifact dedup/caching and parallelism.

    Example:

        >>> runner = ScenarioRunner(outcome_store="outcomes/")  # doctest: +SKIP
        >>> outcomes = runner.run_many(ScenarioSpec.grid(
        ...     policy=["basic-dfs", "protemp"], seed=range(4),
        ... ))  # doctest: +SKIP
        >>> runner.scenarios_executed, runner.outcomes_replayed  # doctest: +SKIP
        (8, 0)

    The runner is **thread-safe**: the long-lived scenario service
    (`repro.serving`) shares one runner across concurrent HTTP requests,
    whose worker threads call :meth:`run` simultaneously.  Artifact
    caches and counters are guarded by an internal lock, and Phase-1
    table builds stay exactly-once per key under concurrency (a per-key
    build lock serializes same-key requests while distinct keys build in
    parallel).

    Args:
        n_workers: process-pool size for :meth:`run_many`; None or 1 runs
            serially.  Parallel and serial runs are bit-identical.
        table_strategy: sweep strategy (preset name or
            :class:`~repro.core.table.SweepStrategy`) used when a policy's
            spec does not pin one; default ``"gen2"``, the fastest serial
            sweep (agrees with the cold solver to <= 1e-13).
        table_cache_dir: optional directory of JSON table caches shared
            across processes/sessions; tables are loaded when the key
            matches and written after fresh builds.
        outcome_store: optional scenario-level result cache — an
            :class:`~repro.scenario.store.OutcomeStore` or a directory
            path (opened as a
            :class:`~repro.scenario.store.DirectoryOutcomeStore`).  Before
            solving a scenario the runner consults the store by spec hash:
            a hit is returned as a replayed outcome
            (``outcome_cache_hit=True``, no simulation, no table resolve),
            a miss is executed and written back atomically, so concurrent
            shards can share one store directory.
        metrics: optional :class:`~repro.observability.MetricsRegistry` to
            instrument into (the serving layer passes its service-wide
            registry so ``/metrics`` covers the runner); by default the
            runner creates a private one.  The runner's legacy integer
            counters (``tables_built`` etc.) stay authoritative and are
            mirrored 1:1 into registry counters
            (``tables_built_total``, ``scenarios_executed_total``,
            ``outcomes_replayed_total``) — reconciliation tests pin the
            mirror down.  The outcome store, when configured, is bound to
            the same registry.
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        table_strategy: str = "gen2",
        table_cache_dir: str | Path | None = None,
        outcome_store: "OutcomeStore | str | Path | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ScenarioError("n_workers must be >= 1 when given")
        self.n_workers = n_workers
        self.table_strategy = table_strategy
        self.table_cache_dir = (
            Path(table_cache_dir) if table_cache_dir is not None else None
        )
        self.outcome_store = open_outcome_store(outcome_store)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if self.outcome_store is not None:
            self.outcome_store.bind_metrics(self.metrics)
        #: Guards the artifact caches and counters.  The runner is shared
        #: process-wide by the serving layer, whose worker threads call
        #: :meth:`run` concurrently; an RLock (not a plain Lock) because
        #: cache fills nest (resolving a table materializes the platform).
        self._lock = threading.RLock()
        #: Per-table-key build locks: concurrent requests for the *same*
        #: key serialize (exactly-once builds), different keys build in
        #: parallel without holding the main lock through a sweep.
        self._table_build_locks: dict[str, threading.Lock] = {}
        self._platforms: dict[PlatformSpec, Platform] = {}
        self._optimizers: dict[tuple, ProTempOptimizer] = {}
        self._tables: dict[str, FrequencyTable] = {}
        self._table_factories: dict[str, "Callable[[], FrequencyTable]"] = {}
        #: Number of tables this runner built from scratch (exposed so
        #: tests can assert the exactly-once-per-distinct-spec behavior).
        self.tables_built = 0
        #: Number of scenarios this runner actually simulated (store
        #: replays do not count — a fully warm outcome store must leave
        #: this at 0, which tests assert).
        self.scenarios_executed = 0
        #: Number of scenarios answered from the outcome store.
        self.outcomes_replayed = 0

    # -- artifact caches ---------------------------------------------------

    def platform(self, spec: PlatformSpec) -> Platform:
        """The (cached) platform for `spec`."""
        with self._lock:
            if spec not in self._platforms:
                entry = PLATFORMS.get(spec.name)
                self._platforms[spec] = entry.factory(**spec.kwargs)
            return self._platforms[spec]

    def prime_platform(self, spec: PlatformSpec, platform: Platform) -> None:
        """Seed the platform cache with a pre-built object for `spec`."""
        with self._lock:
            self._platforms[spec] = platform

    def optimizer(
        self,
        platform_spec: PlatformSpec,
        *,
        mode: str = "variable",
        step_subsample: int | None = None,
    ) -> ProTempOptimizer:
        """A (cached) Phase-1 optimizer on the platform.

        Non-simulation experiments (feasibility sweeps, per-core frequency
        probes) share optimizers through this cache instead of wiring their
        own.
        """
        from repro.scenario.specs import DEFAULT_STEP_SUBSAMPLE

        subsample = (
            DEFAULT_STEP_SUBSAMPLE if step_subsample is None else step_subsample
        )
        key = (platform_spec, mode, subsample)
        with self._lock:
            if key not in self._optimizers:
                self._optimizers[key] = ProTempOptimizer(
                    self.platform(platform_spec),
                    mode=mode,  # type: ignore[arg-type]
                    step_subsample=subsample,
                )
            return self._optimizers[key]

    def prime_table(
        self,
        platform_spec: PlatformSpec,
        policy_spec: PolicySpec,
        table: FrequencyTable,
    ) -> None:
        """Seed the table cache for the (platform, policy) pair's key."""
        with self._lock:
            self._tables[table_key(platform_spec, policy_spec)] = table

    def prime_table_lazy(
        self,
        platform_spec: PlatformSpec,
        policy_spec: PolicySpec,
        factory: "Callable[[], FrequencyTable]",
    ) -> None:
        """Seed the table cache with a deferred builder for the pair's key.

        `factory` is only invoked if some scenario actually needs the
        table — so a figure run whose every cell replays from a warm
        outcome store never pays the Phase-1 build at all.  The built
        table is cached under the key like a primed one (it counts as a
        cache hit, not a build of this runner's own sweep).
        """
        with self._lock:
            self._table_factories[
                table_key(platform_spec, policy_spec)
            ] = factory

    def table(
        self,
        platform_spec: PlatformSpec,
        policy_spec: PolicySpec,
    ) -> tuple[FrequencyTable, bool]:
        """The Phase-1 table the pair needs, building it at most once.

        Exactly-once holds under concurrent callers too: threads asking
        for the same key serialize on a per-key build lock (the first
        builds, the rest find the cached table when they acquire it),
        while distinct keys build in parallel.

        Returns:
            ``(table, cache_hit)`` — `cache_hit` is False only when this
            call built the table from scratch.
        """
        key = table_key(platform_spec, policy_spec)
        with self._lock:
            if key in self._tables:
                return self._tables[key], True
            build_lock = self._table_build_locks.setdefault(
                key, threading.Lock()
            )
        with build_lock:
            with self._lock:
                if key in self._tables:
                    return self._tables[key], True
                factory = self._table_factories.pop(key, None)
            if factory is not None:
                table = factory()
                with self._lock:
                    self._tables[key] = table
                return table, True
            config = policy_spec.table_config()
            platform = self.platform(platform_spec)
            cache_path = (
                self.table_cache_dir / f"table_{key}.json"
                if self.table_cache_dir is not None
                else None
            )
            if cache_path is not None and cache_path.exists():
                try:
                    table = FrequencyTable.load_json(
                        cache_path,
                        expected_platform_hash=platform_spec.spec_hash,
                    )
                except TableError as exc:
                    warnings.warn(
                        f"ignoring unreadable table cache {cache_path}: {exc}",
                        stacklevel=2,
                    )
                else:
                    if (
                        tuple(table.t_grid) == config["t_grid"]
                        and tuple(table.f_grid) == config["f_grid"]
                    ):
                        with self._lock:
                            self._tables[key] = table
                        return table, True
            optimizer = ProTempOptimizer(
                platform,
                mode=config["mode"],  # type: ignore[arg-type]
                step_subsample=config["step_subsample"],
                backend=config["backend"],  # type: ignore[arg-type]
            )
            cells = self.metrics.counter(
                "table_build_cells_total",
                "Phase-1 sweep cells solved across all table builds",
            )
            progress_seen = {"done": 0}

            def _tick(done: int, total: int) -> None:
                # The sweep reports cumulative progress (per cell when
                # serial, per row when parallel); mirror the deltas so the
                # counter stays monotone either way.
                delta = done - progress_seen["done"]
                progress_seen["done"] = done
                if delta > 0:
                    cells.inc(delta)

            with self.metrics.span("table_build"):
                with self.metrics.time(
                    "table_build_seconds", "Phase-1 table build wall time"
                ):
                    table = build_frequency_table(
                        optimizer,
                        list(config["t_grid"]),
                        list(config["f_grid"]),
                        strategy=config["strategy"] or self.table_strategy,
                        progress=_tick,
                        provenance={
                            "platform_spec_hash": platform_spec.spec_hash,
                            "platform_spec": platform_spec.to_dict(),
                            # protemp: allow[PT001] -- provenance timestamp only; excluded from record equality and replay
                            "built_at": datetime.now(timezone.utc).isoformat(
                                timespec="seconds"
                            ),
                        },
                    )
            self.metrics.counter(
                "tables_built_total", "Phase-1 tables built from scratch"
            ).inc()
            with self._lock:
                self.tables_built += 1
                self._tables[key] = table
            if cache_path is not None:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                table.save_json(cache_path)
            return table, False

    def _resolve_table(
        self, spec: ScenarioSpec
    ) -> tuple[FrequencyTable | None, bool | None, str | None]:
        """(table, cache_hit, key) for a scenario; (None, None, None) when
        the policy needs no table."""
        if not POLICIES.get(spec.policy.name).needs_table:
            return None, None, None
        key = table_key(spec.platform, spec.policy)
        with self.metrics.span("table_resolve"):
            table, hit = self.table(spec.platform, spec.policy)
        return table, hit, key

    # -- outcome store -----------------------------------------------------

    def _store_lookup(self, spec: ScenarioSpec) -> ScenarioOutcome | None:
        """A replayed outcome for `spec`, or None on a store miss.

        A hit is only accepted when the stored spec is *hash-equivalent*
        to the requested one (equal :meth:`ScenarioSpec.hash_dict`
        payloads — identical up to hash-excluded location params such as a
        trace file's path) — a record whose 12-hex key matches but whose
        canonical payload differs is a hash collision and raises rather
        than silently answering with another scenario's results.

        Raises:
            OutcomeStoreError: on a spec-hash collision or corrupt record.
        """
        if self.outcome_store is None:
            return None
        started = time.perf_counter()
        record = self.outcome_store.get(spec.spec_hash)
        if record is None:
            return None
        if ScenarioSpec.from_dict(record.spec).hash_dict() != spec.hash_dict():
            raise OutcomeStoreError(
                f"spec-hash collision on {spec.spec_hash}: the store holds a "
                f"different spec under this key (requested {spec.label!r})"
            )
        with self._lock:
            self.outcomes_replayed += 1
        self.metrics.counter(
            "outcomes_replayed_total", "scenarios answered from the store"
        ).inc()
        self.metrics.labelled_counter(
            "outcomes_replayed_by_policy",
            "scenarios answered from the store, by policy",
            policy=spec.policy.name,
        ).inc()
        return ScenarioOutcome(
            spec=spec,
            spec_hash=spec.spec_hash,
            result=None,
            wall_time_s=time.perf_counter() - started,
            table_cache_hit=None,
            table_key=record.provenance.get("table_key"),
            outcome_cache_hit=True,
            solve_wall_time_s=record.provenance.get("solve_wall_time_s"),
            stored=record,
        )

    def _store_put(self, outcome: ScenarioOutcome) -> None:
        """Persist an executed outcome (no-op without a store)."""
        if self.outcome_store is not None and outcome.result is not None:
            self.outcome_store.put(StoredOutcome.from_outcome(outcome))

    def lookup(self, spec: ScenarioSpec) -> ScenarioOutcome | None:
        """Probe the outcome store without executing anything.

        The serving layer streams store hits the moment a job is accepted
        — ahead of misses still solving — by probing each cell through
        this method first.

        Returns:
            A replayed outcome (``outcome_cache_hit=True``), or None when
            the scenario is not in the store (or no store is configured).

        Raises:
            OutcomeStoreError: on a spec-hash collision or corrupt record.
        """
        return self._store_lookup(spec)

    # -- execution ---------------------------------------------------------

    def _count_executed(self, wall: float, spec: ScenarioSpec) -> None:
        """Record one freshly simulated scenario in both counter systems."""
        with self._lock:
            self.scenarios_executed += 1
        self.metrics.counter(
            "scenarios_executed_total", "scenarios actually simulated"
        ).inc()
        self.metrics.labelled_counter(
            "scenarios_executed_by_policy",
            "scenarios actually simulated, by policy",
            policy=spec.policy.name,
        ).inc()
        self.metrics.histogram(
            "scenario_execute_seconds", "per-scenario simulation wall time"
        ).observe(wall)

    def run(self, spec: ScenarioSpec) -> ScenarioOutcome:
        """Execute one scenario serially (store consulted first)."""
        with self.metrics.span("scenario"):
            return self._run_instrumented(spec)

    def _run_instrumented(self, spec: ScenarioSpec) -> ScenarioOutcome:
        replayed = self._store_lookup(spec)
        if replayed is not None:
            return replayed
        table, hit, key = self._resolve_table(spec)
        platform = self.platform(spec.platform)
        started = time.perf_counter()
        with self.metrics.span("execute"):
            result = execute_scenario(spec, platform, table)
        wall = time.perf_counter() - started
        self._count_executed(wall, spec)
        outcome = ScenarioOutcome(
            spec=spec,
            spec_hash=spec.spec_hash,
            result=result,
            wall_time_s=wall,
            table_cache_hit=hit,
            table_key=key,
            solve_wall_time_s=wall,
        )
        self._store_put(outcome)
        return outcome

    def run_many(
        self, specs: Sequence[ScenarioSpec]
    ) -> list[ScenarioOutcome]:
        """Execute a scenario grid, reusing artifacts across scenarios.

        The outcome store (when configured) is consulted first: replayed
        scenarios skip table resolution entirely, so a fully warm store
        performs zero scenario solves *and* zero table builds.  For the
        misses, distinct frequency tables are resolved exactly once up
        front (in spec order), then scenarios run serially or over a
        process pool depending on ``n_workers``.  Output order matches
        input order, and parallel results are bit-identical to serial
        ones.  Freshly executed outcomes are written back to the store.
        """
        specs = list(specs)
        if not specs:
            return []
        with self.metrics.span("replay_pass"):
            replayed: list[ScenarioOutcome | None] = [
                self._store_lookup(spec) for spec in specs
            ]
        pending = [
            (i, spec)
            for i, (spec, hit) in enumerate(zip(specs, replayed))
            if hit is None
        ]
        resolved: list[tuple[FrequencyTable | None, bool | None, str | None]] = [
            self._resolve_table(spec) for _, spec in pending
        ]
        platforms = [self.platform(spec.platform) for _, spec in pending]
        outcomes: list[ScenarioOutcome | None] = list(replayed)

        def _finish(slot: int, result: SimulationResult, wall: float) -> None:
            # Record and persist one finished scenario immediately, so an
            # interrupted grid run keeps (and can later replay) every cell
            # that completed before the interruption.
            i, spec = pending[slot]
            _, hit, key = resolved[slot]
            self._count_executed(wall, spec)
            outcome = ScenarioOutcome(
                spec=spec,
                spec_hash=spec.spec_hash,
                result=result,
                wall_time_s=wall,
                table_cache_hit=hit,
                table_key=key,
                solve_wall_time_s=wall,
            )
            self._store_put(outcome)
            outcomes[i] = outcome

        workers = self.n_workers or 1
        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_run_in_worker, spec, platform, table): slot
                    for slot, ((_, spec), platform, (table, _, _)) in enumerate(
                        zip(pending, platforms, resolved)
                    )
                }
                for future in as_completed(futures):
                    result, wall = future.result()
                    _finish(futures[future], result, wall)
        else:
            for slot, ((_, spec), platform, (table, _, _)) in enumerate(
                zip(pending, platforms, resolved)
            ):
                with self.metrics.span("execute"):
                    result, wall = _run_in_worker(spec, platform, table)
                _finish(slot, result, wall)
        return [outcome for outcome in outcomes if outcome is not None]

    def run_config(
        self,
        config: dict | str | Path,
        *,
        shard_index: int | None = None,
        shard_count: int | None = None,
    ) -> list[ScenarioOutcome]:
        """Expand a JSON config (path, text, or dict) and run the grid.

        Args:
            config: a config dict, a path to a config JSON file, or inline
                JSON text.
            shard_index: with `shard_count`, run only one deterministic
                shard of the expanded grid (see
                :func:`~repro.scenario.specs.shard_specs`).
            shard_count: total number of shards.

        Returns:
            The outcomes of this shard's scenarios, in grid order.
        """
        from repro.scenario.specs import scenario_grid_from_config

        if isinstance(config, (str, Path)):
            path = Path(config)
            if path.exists():
                config = json.loads(path.read_text())
            elif isinstance(config, str) and config.lstrip().startswith("{"):
                config = json.loads(config)  # inline JSON text
            else:
                raise ScenarioError(f"no such scenario config: {config}")
        return self.run_many(
            scenario_grid_from_config(
                config, shard_index=shard_index, shard_count=shard_count
            )
        )
