"""ScenarioRunner: materialize, deduplicate, and execute scenario grids.

The runner is the execution substrate behind every figure-level experiment
and the ``protemp run`` CLI:

* **artifact caches** — one :class:`~repro.platform.Platform` per distinct
  :class:`PlatformSpec`, one :class:`~repro.core.protemp.ProTempOptimizer`
  per (platform, mode, step_subsample), and — the expensive one — one
  Phase-1 :class:`~repro.core.table.FrequencyTable` per distinct
  (platform spec, table config) key, built with the gen2 sweep and
  optionally persisted to a JSON cache directory with provenance
  (platform spec hash, strategy, build timestamp);
* **grid execution** — :meth:`run_many` resolves every distinct table
  exactly once up front, then fans the scenarios out over a process pool
  (``n_workers``) or runs them serially; parallel and serial runs produce
  bit-identical :class:`ScenarioOutcome` lists because every stochastic
  component is seeded from the spec (see `repro.scenario.specs`).

Pre-built artifacts can be *primed* into the caches
(:meth:`prime_platform` / :meth:`prime_table`), which is how tests and
experiments reuse session-scoped fixtures instead of rebuilding tables.
"""

from __future__ import annotations

import json
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

from repro.control.manager import ThermalManagementUnit
from repro.core.protemp import ProTempOptimizer
from repro.core.table import FrequencyTable, build_frequency_table
from repro.errors import ScenarioError, TableError
from repro.platform import Platform
from repro.scenario.registry import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
)
from repro.scenario.specs import (
    PlatformSpec,
    PolicySpec,
    ScenarioSpec,
    _spec_hash,
)
from repro.sim.engine import (
    MulticoreSimulator,
    SimulationConfig,
    SimulationResult,
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed scenario plus provenance.

    Attributes:
        spec: the scenario that ran.
        spec_hash: :attr:`ScenarioSpec.spec_hash` (stable across processes).
        result: the full :class:`SimulationResult`.
        wall_time_s: wall-clock seconds spent in the simulation itself
            (excludes table builds, which are shared across scenarios).
        table_cache_hit: True when the policy's Phase-1 table came from the
            runner's cache (memory or disk), False when this run built it,
            None when the policy needs no table.
        table_key: cache key of the table used (None when no table).
    """

    spec: ScenarioSpec
    spec_hash: str
    result: SimulationResult
    wall_time_s: float
    table_cache_hit: bool | None
    table_key: str | None = None

    def summary_row(self) -> dict:
        """Flat JSON-compatible summary (the ``protemp run --json`` row)."""
        metrics = self.result.metrics
        return {
            "scenario": self.spec.label,
            "spec_hash": self.spec_hash,
            "policy": self.result.policy_name,
            "workload": self.result.trace_name,
            "platform": self.spec.platform.name,
            "seed": self.spec.seed,
            "peak_c": metrics.peak_temperature,
            "violation_fraction": metrics.violation_fraction,
            "mean_wait_s": metrics.waiting.mean,
            "completed_tasks": metrics.completed_tasks,
            "arrived_tasks": metrics.arrived_tasks,
            "wall_time_s": self.wall_time_s,
            "table_cache_hit": self.table_cache_hit,
        }


def table_key(platform_spec: PlatformSpec, policy_spec: PolicySpec) -> str:
    """Cache key of the Phase-1 table a (platform, policy) pair needs.

    Two specs share a table exactly when they agree on the platform spec
    and the policy's table configuration (mode, grids, subsampling,
    strategy) — the remaining policy params do not influence the table.
    """
    config = policy_spec.table_config()
    return _spec_hash(
        {
            "platform": platform_spec.to_dict(),
            "mode": config["mode"],
            "t_grid": list(config["t_grid"]),
            "f_grid": list(config["f_grid"]),
            "step_subsample": config["step_subsample"],
            "strategy": config["strategy"],
        }
    )


def build_trace(spec: ScenarioSpec, n_cores: int):
    """Materialize the scenario's task trace (seeded from the spec)."""
    entry = WORKLOADS.get(spec.workload.name)
    return entry.factory(
        spec.workload.duration,
        n_cores,
        seed=spec.trace_seed,
        **spec.workload.kwargs,
    )


def build_policy(spec: ScenarioSpec, table: FrequencyTable | None):
    """Materialize the scenario's DFS policy (table injected if needed)."""
    entry = POLICIES.get(spec.policy.name)
    kwargs = spec.policy.factory_kwargs()
    if entry.needs_table:
        if table is None:
            raise ScenarioError(
                f"policy {spec.policy.name!r} needs a frequency table"
            )
        return entry.factory(table, **kwargs)
    return entry.factory(**kwargs)


def build_sensor(spec: ScenarioSpec):
    """Materialize the scenario's sensor model (seeded from the spec)."""
    entry = SENSORS.get(spec.sensor.name)
    kwargs = dict(spec.sensor.kwargs)
    if entry.needs_seed:
        kwargs.setdefault("seed", spec.sensor_seed)
    return entry.factory(**kwargs)


def build_assignment(spec: ScenarioSpec):
    """Materialize the scenario's task-assignment policy."""
    entry = ASSIGNMENTS.get(spec.assignment)
    kwargs: dict = {}
    if entry.needs_seed:
        kwargs["seed"] = spec.assignment_seed
    return entry.factory(**kwargs)


def execute_scenario(
    spec: ScenarioSpec,
    platform: Platform,
    table: FrequencyTable | None,
) -> SimulationResult:
    """Run one scenario against pre-resolved artifacts (pure, seeded)."""
    policy = build_policy(spec, table)
    tmu = ThermalManagementUnit(
        policy=policy,
        f_max=platform.f_max,
        t_max=platform.t_max,
        window=spec.window,
        sensor=build_sensor(spec),
    )
    sim = MulticoreSimulator(
        platform,
        tmu,
        assignment=build_assignment(spec),
        config=SimulationConfig(
            window=spec.window,
            max_time=spec.horizon,
            t_initial=spec.t_initial,
        ),
    )
    return sim.run(build_trace(spec, platform.n_cores))


def _run_in_worker(
    spec: ScenarioSpec,
    platform: Platform,
    table: FrequencyTable | None,
) -> tuple[SimulationResult, float]:
    """Process-pool entry point: execute and time one scenario."""
    started = time.perf_counter()
    result = execute_scenario(spec, platform, table)
    return result, time.perf_counter() - started


class ScenarioRunner:
    """Execute scenario specs with artifact dedup/caching and parallelism.

    Args:
        n_workers: process-pool size for :meth:`run_many`; None or 1 runs
            serially.  Parallel and serial runs are bit-identical.
        table_strategy: sweep strategy (preset name or
            :class:`~repro.core.table.SweepStrategy`) used when a policy's
            spec does not pin one; default ``"gen2"``, the fastest serial
            sweep (agrees with the cold solver to <= 1e-13).
        table_cache_dir: optional directory of JSON table caches shared
            across processes/sessions; tables are loaded when the key
            matches and written after fresh builds.
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        table_strategy: str = "gen2",
        table_cache_dir: str | Path | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ScenarioError("n_workers must be >= 1 when given")
        self.n_workers = n_workers
        self.table_strategy = table_strategy
        self.table_cache_dir = (
            Path(table_cache_dir) if table_cache_dir is not None else None
        )
        self._platforms: dict[PlatformSpec, Platform] = {}
        self._optimizers: dict[tuple, ProTempOptimizer] = {}
        self._tables: dict[str, FrequencyTable] = {}
        #: Number of tables this runner built from scratch (exposed so
        #: tests can assert the exactly-once-per-distinct-spec behavior).
        self.tables_built = 0

    # -- artifact caches ---------------------------------------------------

    def platform(self, spec: PlatformSpec) -> Platform:
        """The (cached) platform for `spec`."""
        if spec not in self._platforms:
            entry = PLATFORMS.get(spec.name)
            self._platforms[spec] = entry.factory(**spec.kwargs)
        return self._platforms[spec]

    def prime_platform(self, spec: PlatformSpec, platform: Platform) -> None:
        """Seed the platform cache with a pre-built object for `spec`."""
        self._platforms[spec] = platform

    def optimizer(
        self,
        platform_spec: PlatformSpec,
        *,
        mode: str = "variable",
        step_subsample: int | None = None,
    ) -> ProTempOptimizer:
        """A (cached) Phase-1 optimizer on the platform.

        Non-simulation experiments (feasibility sweeps, per-core frequency
        probes) share optimizers through this cache instead of wiring their
        own.
        """
        from repro.scenario.specs import DEFAULT_STEP_SUBSAMPLE

        subsample = (
            DEFAULT_STEP_SUBSAMPLE if step_subsample is None else step_subsample
        )
        key = (platform_spec, mode, subsample)
        if key not in self._optimizers:
            self._optimizers[key] = ProTempOptimizer(
                self.platform(platform_spec),
                mode=mode,  # type: ignore[arg-type]
                step_subsample=subsample,
            )
        return self._optimizers[key]

    def prime_table(
        self,
        platform_spec: PlatformSpec,
        policy_spec: PolicySpec,
        table: FrequencyTable,
    ) -> None:
        """Seed the table cache for the (platform, policy) pair's key."""
        self._tables[table_key(platform_spec, policy_spec)] = table

    def table(
        self,
        platform_spec: PlatformSpec,
        policy_spec: PolicySpec,
    ) -> tuple[FrequencyTable, bool]:
        """The Phase-1 table the pair needs, building it at most once.

        Returns:
            ``(table, cache_hit)`` — `cache_hit` is False only when this
            call built the table from scratch.
        """
        key = table_key(platform_spec, policy_spec)
        if key in self._tables:
            return self._tables[key], True
        config = policy_spec.table_config()
        platform = self.platform(platform_spec)
        cache_path = (
            self.table_cache_dir / f"table_{key}.json"
            if self.table_cache_dir is not None
            else None
        )
        if cache_path is not None and cache_path.exists():
            try:
                table = FrequencyTable.load_json(
                    cache_path, expected_platform_hash=platform_spec.spec_hash
                )
            except TableError as exc:
                warnings.warn(
                    f"ignoring unreadable table cache {cache_path}: {exc}",
                    stacklevel=2,
                )
            else:
                if (
                    tuple(table.t_grid) == config["t_grid"]
                    and tuple(table.f_grid) == config["f_grid"]
                ):
                    self._tables[key] = table
                    return table, True
        optimizer = ProTempOptimizer(
            platform,
            mode=config["mode"],  # type: ignore[arg-type]
            step_subsample=config["step_subsample"],
        )
        table = build_frequency_table(
            optimizer,
            list(config["t_grid"]),
            list(config["f_grid"]),
            strategy=config["strategy"] or self.table_strategy,
            provenance={
                "platform_spec_hash": platform_spec.spec_hash,
                "platform_spec": platform_spec.to_dict(),
                "built_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
        )
        self.tables_built += 1
        self._tables[key] = table
        if cache_path is not None:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            table.save_json(cache_path)
        return table, False

    def _resolve_table(
        self, spec: ScenarioSpec
    ) -> tuple[FrequencyTable | None, bool | None, str | None]:
        """(table, cache_hit, key) for a scenario; (None, None, None) when
        the policy needs no table."""
        if not POLICIES.get(spec.policy.name).needs_table:
            return None, None, None
        key = table_key(spec.platform, spec.policy)
        table, hit = self.table(spec.platform, spec.policy)
        return table, hit, key

    # -- execution ---------------------------------------------------------

    def run(self, spec: ScenarioSpec) -> ScenarioOutcome:
        """Execute one scenario serially."""
        table, hit, key = self._resolve_table(spec)
        platform = self.platform(spec.platform)
        started = time.perf_counter()
        result = execute_scenario(spec, platform, table)
        return ScenarioOutcome(
            spec=spec,
            spec_hash=spec.spec_hash,
            result=result,
            wall_time_s=time.perf_counter() - started,
            table_cache_hit=hit,
            table_key=key,
        )

    def run_many(
        self, specs: Sequence[ScenarioSpec]
    ) -> list[ScenarioOutcome]:
        """Execute a scenario grid, reusing artifacts across scenarios.

        Distinct frequency tables are resolved exactly once up front (in
        spec order), then scenarios run serially or over a process pool
        depending on ``n_workers``.  Output order matches input order, and
        parallel results are bit-identical to serial ones.
        """
        specs = list(specs)
        if not specs:
            return []
        resolved: list[tuple[FrequencyTable | None, bool | None, str | None]] = [
            self._resolve_table(spec) for spec in specs
        ]
        platforms = [self.platform(spec.platform) for spec in specs]
        workers = self.n_workers or 1
        if workers > 1 and len(specs) > 1:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(specs))
            ) as pool:
                futures = [
                    pool.submit(_run_in_worker, spec, platform, table)
                    for spec, platform, (table, _, _) in zip(
                        specs, platforms, resolved
                    )
                ]
                timed = [future.result() for future in futures]
        else:
            timed = [
                _run_in_worker(spec, platform, table)
                for spec, platform, (table, _, _) in zip(
                    specs, platforms, resolved
                )
            ]
        return [
            ScenarioOutcome(
                spec=spec,
                spec_hash=spec.spec_hash,
                result=result,
                wall_time_s=wall,
                table_cache_hit=hit,
                table_key=key,
            )
            for spec, (result, wall), (_, hit, key) in zip(
                specs, timed, resolved
            )
        ]

    def run_config(self, config: dict | str | Path) -> list[ScenarioOutcome]:
        """Expand a JSON config (path, text, or dict) and run the grid."""
        from repro.scenario.specs import scenario_grid_from_config

        if isinstance(config, (str, Path)):
            path = Path(config)
            if path.exists():
                config = json.loads(path.read_text())
            elif isinstance(config, str) and config.lstrip().startswith("{"):
                config = json.loads(config)  # inline JSON text
            else:
                raise ScenarioError(f"no such scenario config: {config}")
        return self.run_many(scenario_grid_from_config(config))
