"""Declarative scenario specs: frozen, hashable, JSON-round-trippable.

The paper's evaluation is a grid of scenarios — policy x workload x
platform x seed.  A :class:`ScenarioSpec` captures one cell of that grid as
pure data: every component is referenced *by registry name* plus a plain
parameter mapping, so specs serialize losslessly to JSON
(``spec == ScenarioSpec.from_dict(spec.to_dict())``), hash stably across
processes (:attr:`ScenarioSpec.spec_hash`), and deduplicate structurally
(two specs that would build the same frequency table compare equal on the
relevant sub-specs).

Parameter mappings are canonicalized at construction into a sorted-key JSON
string, which is what makes the frozen dataclasses hashable and makes
equality independent of dict insertion order.  Access the decoded mapping
through ``.kwargs``.

One explicit ``seed`` lives on the scenario and is threaded through every
stochastic component (trace generation, the noisy sensor model, the random
assignment policy) via :func:`derive_seed`, so identical specs reproduce
bit-identical results with no reliance on global RNG state.

**The spec-hash stability contract.**  :attr:`ScenarioSpec.spec_hash` is
the first 12 hex digits of the SHA-256 of the canonical (sorted-key,
NaN-free) JSON encoding of :meth:`ScenarioSpec.hash_dict` — which is
:meth:`ScenarioSpec.to_dict` minus the few parameters that name *where*
data lives rather than *what* it is (today: the ``path`` of a
``trace-file`` workload, whose content is pinned by its ``sha256`` param
instead; see :data:`WORKLOAD_HASH_EXCLUDED_PARAMS`).  The hash therefore
depends only on the spec's *data* — never on process identity, dict
insertion order, platform, Python version, or file locations — which is
what lets it key persistent artifacts: Phase-1 table caches, outcome-store records, and the
deterministic shard assignment of :func:`shard_specs` all assume that the
same spec hashes to the same string on every host, today and in future
sessions.  Renaming or re-defaulting a spec *field* changes hashes and
therefore invalidates stores; that is intentional (a different spec is a
different scenario) but means such changes are breaking and must be called
out.  Defaults that are *omitted* from ``to_dict`` (``max_time``,
``name``, sub-spec ``seed``) can gain new behavior without disturbing
existing hashes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Mapping, cast

from repro.errors import ScenarioError, did_you_mean
from repro.thermal.constants import PAPER_DFS_PERIOD
from repro.units import mhz

#: Default Phase-1 grid: start temperatures in Celsius.  Denser near t_max
#: where the feasible frequency changes fastest.  (Shared with
#: `repro.analysis.cache`, which re-exports these for compatibility.)
DEFAULT_T_GRID = (50.0, 60.0, 70.0, 75.0, 80.0, 85.0, 90.0, 92.5, 95.0, 97.5, 100.0)

#: Default Phase-1 grid: average-frequency targets in Hz (50 MHz steps).
DEFAULT_F_GRID = tuple(mhz(f) for f in range(50, 1001, 50))

#: Default optimizer step subsampling shared by experiments and benchmarks.
DEFAULT_STEP_SUBSAMPLE = 5

#: Workload params excluded from the spec hash, per workload name.  These
#: are *location* parameters: the data they point at is pinned by a
#: separate content parameter that stays in the hash (``trace-file``
#: excludes ``path`` because ``sha256`` covers the file's bytes).  This
#: table is static — defined here, not at registration time — so a spec's
#: hash never depends on which plugins happen to be imported.
WORKLOAD_HASH_EXCLUDED_PARAMS: dict[str, tuple[str, ...]] = {
    "trace-file": ("path",),
}


def derive_seed(master: int, stream: str) -> int:
    """A stable per-stream seed derived from the scenario's master seed.

    Distinct streams ("trace", "sensor", "assignment") must not share an
    RNG sequence; hashing ``master:stream`` gives independent, platform-
    stable 32-bit seeds without any global state.

    Args:
        master: the scenario's master seed.
        stream: a short stream label.

    Returns:
        A deterministic 32-bit seed for the (master, stream) pair.

    Example:

        >>> derive_seed(7, "sensor") == derive_seed(7, "sensor")
        True
        >>> derive_seed(7, "sensor") != derive_seed(7, "trace")
        True
    """
    digest = hashlib.blake2b(
        f"{int(master)}:{stream}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


def canonical_params(params: Mapping[str, Any] | str | None) -> str:
    """Normalize a parameter mapping to a canonical JSON object string.

    Accepts a mapping, an already-canonical JSON string, or None (empty).
    Keys are sorted and values must be JSON-representable; NaN/Infinity are
    rejected (they do not round-trip through standard JSON).
    """
    if params is None:
        mapping: Mapping[str, Any] = {}
    elif isinstance(params, str):
        try:
            mapping = json.loads(params)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"malformed params JSON: {exc}") from exc
        if not isinstance(mapping, dict):
            raise ScenarioError("params JSON must encode an object")
    elif isinstance(params, Mapping):
        mapping = params
    else:
        raise ScenarioError(
            f"params must be a mapping or JSON string, got {type(params).__name__}"
        )
    try:
        return json.dumps(
            dict(mapping), sort_keys=True, allow_nan=False, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"params are not JSON-representable: {exc}") from exc


def _spec_hash(payload: dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, allow_nan=False)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _check_keys(
    data: Mapping[str, Any], allowed: tuple[str, ...], what: str
) -> None:
    """Reject unknown keys in a spec dict — a typo'd field name must fail
    loudly, not silently fall back to the default."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"unknown {what} fields {unknown}; valid fields: {list(allowed)}"
        )


@dataclass(frozen=True)
class PlatformSpec:
    """A platform referenced by registry name plus builder parameters.

    Attributes:
        name: key into the platform registry (e.g. ``"niagara8"``).
        params: canonical JSON string of builder keyword arguments (pass a
            plain dict; it is canonicalized in ``__post_init__``).
    """

    name: str = "niagara8"
    params: str = "{}"

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", canonical_params(self.params))

    @property
    def kwargs(self) -> dict[str, Any]:
        """Decoded builder keyword arguments."""
        return cast(dict[str, Any], json.loads(self.params))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation."""
        return {"name": self.name, "params": self.kwargs}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | str) -> "PlatformSpec":
        """Inverse of :meth:`to_dict`; also accepts a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, ("name", "params"), "platform spec")
        return cls(name=data["name"], params=canonical_params(data.get("params")))

    @property
    def spec_hash(self) -> str:
        """Stable 12-hex-digit hash of the spec (provenance key)."""
        return _spec_hash(self.to_dict())


@dataclass(frozen=True)
class WorkloadSpec:
    """A trace generator referenced by registry name.

    Attributes:
        name: key into the workload registry (e.g. ``"mixed"``).
        duration: trace length in simulated seconds.
        params: canonical JSON string of generator keyword arguments.
        seed: explicit trace seed; None inherits the scenario seed.
    """

    name: str = "mixed"
    duration: float = 40.0
    params: str = "{}"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ScenarioError("workload duration must be positive")
        object.__setattr__(self, "duration", float(self.duration))
        object.__setattr__(self, "params", canonical_params(self.params))

    @property
    def kwargs(self) -> dict[str, Any]:
        """Decoded generator keyword arguments."""
        return cast(dict[str, Any], json.loads(self.params))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation."""
        data: dict[str, Any] = {
            "name": self.name,
            "duration": self.duration,
            "params": self.kwargs,
        }
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    def hash_dict(self) -> dict[str, Any]:
        """:meth:`to_dict` minus hash-excluded (location) parameters.

        For every built-in generator this equals :meth:`to_dict`;
        ``trace-file`` drops ``path`` so the spec hash follows the file's
        *content* (its ``sha256`` param), not its location.
        """
        data = self.to_dict()
        excluded = WORKLOAD_HASH_EXCLUDED_PARAMS.get(self.name)
        if excluded:
            data["params"] = {
                k: v for k, v in data["params"].items() if k not in excluded
            }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any] | str) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict`; also accepts a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, ("name", "duration", "params", "seed"), "workload spec")
        return cls(
            name=data["name"],
            duration=data.get("duration", 40.0),
            params=canonical_params(data.get("params")),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class PolicySpec:
    """A DFS policy referenced by registry name.

    For table-driven policies (``"protemp"``) the params may carry the
    Phase-1 table configuration consumed by the runner, not the policy
    factory: ``mode``, ``t_grid``, ``f_grid``, ``step_subsample``,
    ``strategy`` (a sweep preset name) and ``backend`` (``"barrier"`` or
    ``"scipy"``).  Everything else is forwarded to the policy factory.

    ``strategy`` and ``backend`` are validated at construction — an
    unknown name fails at spec-parse time (and therefore at service
    submit time) with a did-you-mean hint, not deep inside a sweep.

    Attributes:
        name: key into the policy registry (e.g. ``"basic-dfs"``).
        params: canonical JSON string of policy/table parameters.
    """

    name: str = "protemp"
    params: str = "{}"

    #: Param keys consumed by the runner's table builder, not the factory.
    TABLE_PARAM_KEYS = (
        "mode",
        "t_grid",
        "f_grid",
        "step_subsample",
        "strategy",
        "backend",
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", canonical_params(self.params))
        params = self.kwargs
        strategy = params.get("strategy")
        backend = params.get("backend")
        if strategy is not None or backend is not None:
            # Lazy: repro.core is heavy and never needed for pure spec
            # plumbing (hashing, sharding, JSON round-trips).
            from repro.core.protemp import BACKENDS
            from repro.core.table import SweepStrategy

            if strategy is not None:
                presets = SweepStrategy._preset_map()
                if strategy not in presets:
                    raise ScenarioError(
                        f"unknown sweep strategy {strategy!r}; "
                        f"choose from {sorted(presets)}"
                        + did_you_mean(strategy, presets)
                    )
            if backend is not None and backend not in BACKENDS:
                raise ScenarioError(
                    f"unknown solver backend {backend!r}; "
                    f"choose from {list(BACKENDS)}"
                    + did_you_mean(backend, BACKENDS)
                )

    @property
    def kwargs(self) -> dict[str, Any]:
        """Decoded parameters (table keys included)."""
        return cast(dict[str, Any], json.loads(self.params))

    def factory_kwargs(self) -> dict[str, Any]:
        """Parameters forwarded to the policy factory (table keys removed)."""
        return {
            k: v
            for k, v in self.kwargs.items()
            if k not in self.TABLE_PARAM_KEYS
        }

    def table_config(self) -> dict[str, Any]:
        """Phase-1 table configuration with defaults filled in."""
        params = self.kwargs
        return {
            "mode": params.get("mode", "variable"),
            "t_grid": tuple(params.get("t_grid", DEFAULT_T_GRID)),
            "f_grid": tuple(params.get("f_grid", DEFAULT_F_GRID)),
            "step_subsample": int(
                params.get("step_subsample", DEFAULT_STEP_SUBSAMPLE)
            ),
            "strategy": params.get("strategy"),
            "backend": params.get("backend", "barrier"),
        }

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation."""
        return {"name": self.name, "params": self.kwargs}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | str) -> "PolicySpec":
        """Inverse of :meth:`to_dict`; also accepts a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, ("name", "params"), "policy spec")
        return cls(name=data["name"], params=canonical_params(data.get("params")))


@dataclass(frozen=True)
class SensorSpec:
    """A thermal sensor model (``"ideal"`` or ``"noisy"``).

    Attributes:
        name: key into the sensor registry.
        params: canonical JSON string of sensor keyword arguments.
        seed: explicit sensor-noise seed; None derives one from the
            scenario seed (stream ``"sensor"``).
    """

    name: str = "ideal"
    params: str = "{}"
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", canonical_params(self.params))

    @property
    def kwargs(self) -> dict[str, Any]:
        """Decoded sensor keyword arguments."""
        return cast(dict[str, Any], json.loads(self.params))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation."""
        data: dict[str, Any] = {"name": self.name, "params": self.kwargs}
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any] | str) -> "SensorSpec":
        """Inverse of :meth:`to_dict`; also accepts a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, ("name", "params", "seed"), "sensor spec")
        return cls(
            name=data["name"],
            params=canonical_params(data.get("params")),
            seed=data.get("seed"),
        )


def _coerce(kind: type[Any], value: Any) -> Any:
    """Coerce a str/dict into the given spec type; pass specs through."""
    if isinstance(value, kind):
        return value
    if isinstance(value, (str, dict)):
        return kind.from_dict(value)  # type: ignore[attr-defined]
    raise ScenarioError(
        f"cannot build a {kind.__name__} from {type(value).__name__}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified closed-loop experiment: the package's unit of work.

    platform x workload x policy x simulation knobs x seed.  Frozen and
    hashable; JSON round-trips losslessly through
    :meth:`to_dict`/:meth:`from_dict`.

    Example:

        >>> spec = ScenarioSpec(policy="basic-dfs", seed=3)
        >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
        True
        >>> len(spec.spec_hash)  # stable content hash, keys caches/stores
        12

    Attributes:
        platform: platform sub-spec (str/dict coerced).
        workload: workload sub-spec (str/dict coerced).
        policy: policy sub-spec (str/dict coerced).
        sensor: sensor sub-spec (ideal by default).
        assignment: task-assignment registry name.
        window: DFS period (s); the paper uses 100 ms.
        t_initial: initial uniform temperature (Celsius).
        max_time: simulation horizon (s); None uses the workload duration.
        seed: master seed threaded through every stochastic component.
        name: optional human-readable label.
    """

    platform: PlatformSpec = field(default_factory=PlatformSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    sensor: SensorSpec = field(default_factory=SensorSpec)
    assignment: str = "first-idle"
    window: float = PAPER_DFS_PERIOD
    t_initial: float = 45.0
    max_time: float | None = None
    seed: int = 0
    name: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "platform", _coerce(PlatformSpec, self.platform))
        object.__setattr__(self, "workload", _coerce(WorkloadSpec, self.workload))
        object.__setattr__(self, "policy", _coerce(PolicySpec, self.policy))
        object.__setattr__(self, "sensor", _coerce(SensorSpec, self.sensor))
        if self.window <= 0:
            raise ScenarioError("window must be positive")
        if self.max_time is not None and self.max_time <= 0:
            raise ScenarioError("max_time must be positive when given")
        object.__setattr__(self, "window", float(self.window))
        object.__setattr__(self, "t_initial", float(self.t_initial))
        object.__setattr__(self, "seed", int(self.seed))

    # -- derived views -----------------------------------------------------

    @property
    def horizon(self) -> float:
        """Effective simulation horizon (s)."""
        return self.max_time if self.max_time is not None else self.workload.duration

    @property
    def trace_seed(self) -> int:
        """Seed for trace generation (explicit workload seed wins)."""
        return self.workload.seed if self.workload.seed is not None else self.seed

    @property
    def sensor_seed(self) -> int:
        """Seed for the sensor noise stream."""
        return (
            self.sensor.seed
            if self.sensor.seed is not None
            else derive_seed(self.seed, "sensor")
        )

    @property
    def assignment_seed(self) -> int:
        """Seed for stochastic assignment policies."""
        return derive_seed(self.seed, "assignment")

    @property
    def label(self) -> str:
        """Display label: explicit name or a compact derived one."""
        if self.name:
            return self.name
        return (
            f"{self.policy.name}/{self.workload.name}"
            f"@{self.platform.name}#s{self.seed}"
        )

    @property
    def spec_hash(self) -> str:
        """Stable 12-hex-digit hash of the full spec (provenance key).

        Computed over :meth:`hash_dict`, so two specs that differ only in
        hash-excluded location parameters (a ``trace-file`` workload's
        ``path``) share a hash — and an outcome-store record computed from
        one location replays for the other.
        """
        return _spec_hash(self.hash_dict())

    # -- serialization -----------------------------------------------------

    def hash_dict(self) -> dict[str, Any]:
        """The canonical payload :attr:`spec_hash` is computed over.

        :meth:`to_dict` with the workload sub-dict replaced by
        :meth:`WorkloadSpec.hash_dict`.  Two specs are *hash-equivalent*
        (same scenario for store/cache purposes) exactly when their
        ``hash_dict`` payloads are equal.
        """
        data = self.to_dict()
        data["workload"] = self.workload.hash_dict()
        return data

    def to_dict(self) -> dict[str, Any]:
        """Plain-data (JSON-compatible) representation."""
        data: dict[str, Any] = {
            "platform": self.platform.to_dict(),
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "sensor": self.sensor.to_dict(),
            "assignment": self.assignment,
            "window": self.window,
            "t_initial": self.t_initial,
            "seed": self.seed,
        }
        if self.max_time is not None:
            data["max_time"] = self.max_time
        if self.name is not None:
            data["name"] = self.name
        return data

    #: Keys accepted by :meth:`from_dict` (the :meth:`to_dict` shape).
    _DICT_KEYS = (
        "platform",
        "workload",
        "policy",
        "sensor",
        "assignment",
        "window",
        "t_initial",
        "max_time",
        "seed",
        "name",
    )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        _check_keys(data, cls._DICT_KEYS, "scenario")
        try:
            return cls(
                platform=PlatformSpec.from_dict(data.get("platform", "niagara8")),
                workload=WorkloadSpec.from_dict(data.get("workload", "mixed")),
                policy=PolicySpec.from_dict(data.get("policy", "protemp")),
                sensor=SensorSpec.from_dict(data.get("sensor", "ideal")),
                assignment=data.get("assignment", "first-idle"),
                window=data.get("window", PAPER_DFS_PERIOD),
                t_initial=data.get("t_initial", 45.0),
                max_time=data.get("max_time"),
                seed=data.get("seed", 0),
                name=data.get("name"),
            )
        except (KeyError, TypeError) as exc:
            raise ScenarioError(f"malformed scenario data: {exc}") from exc

    def to_json(self) -> str:
        """JSON string encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- grids -------------------------------------------------------------

    def with_(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (coercions applied)."""
        return replace(self, **overrides)

    @classmethod
    def grid(
        cls,
        base: "ScenarioSpec | None" = None,
        *,
        shard_index: int | None = None,
        shard_count: int | None = None,
        **axes: Any,
    ) -> list["ScenarioSpec"]:
        """Expand a scenario grid: the cartesian product over the axes.

        Each keyword names a :class:`ScenarioSpec` field; its value is
        either a single value or an iterable of values (strings and dicts
        coerced into sub-specs as usual).  Axes expand in field-declaration
        order, last axis fastest::

            ScenarioSpec.grid(
                policy=["basic-dfs", "protemp"],
                workload=[WorkloadSpec("mixed", 40.0), WorkloadSpec("compute", 40.0)],
                seed=range(8),
            )

        Args:
            base: spec providing the non-axis fields (default: defaults).
            shard_index: with `shard_count`, keep only this shard's cells
                (deterministic spec-hash slicing; see :func:`shard_specs`).
            shard_count: total number of shards.
            **axes: field name -> value or iterable of values.

        Returns:
            The expanded list of specs (len = product of axis lengths,
            then sliced when sharding is requested).

        Raises:
            ScenarioError: on unknown axis names, empty axes, or an
                invalid shard request.
        """
        base = base if base is not None else cls()
        field_names = [f.name for f in fields(cls)]
        unknown = sorted(set(axes) - set(field_names))
        if unknown:
            raise ScenarioError(
                f"unknown grid axes {unknown}; valid fields: {field_names}"
            )
        keys = [name for name in field_names if name in axes]
        value_lists = [_axis_values(axes[k]) for k in keys]
        for key, values in zip(keys, value_lists):
            if not values:
                raise ScenarioError(f"grid axis {key!r} is empty")
        specs = [
            replace(base, **dict(zip(keys, combo)))
            for combo in itertools.product(*value_lists)
        ]
        if shard_index is not None or shard_count is not None:
            specs = shard_specs(specs, shard_index, shard_count)
        return specs


def _axis_values(value: Any) -> list[Any]:
    """Interpret a grid-axis value: scalars wrap, iterables expand."""
    if isinstance(value, (str, bytes, dict, Mapping)) or not isinstance(
        value, Iterable
    ):
        return [value]
    return list(value)


def shard_of(spec: "ScenarioSpec", shard_count: int) -> int:
    """The shard (0-based) a spec belongs to among `shard_count` shards.

    Assignment hashes the spec (``int(spec_hash, 16) % shard_count``), so
    it is a pure function of the spec's data: every host slicing the same
    grid with the same `shard_count` computes the same partition, in any
    process, with no coordination — which is what makes cross-host sharding
    just "run the same config with a different ``--shard i/n``".

    Example:

        >>> spec = ScenarioSpec(seed=3)
        >>> shard_of(spec, 4) == shard_of(spec, 4)  # process-stable
        True
    """
    if shard_count < 1:
        raise ScenarioError(f"shard_count must be >= 1, got {shard_count}")
    return int(spec.spec_hash, 16) % shard_count


def shard_specs(
    specs: Iterable["ScenarioSpec"],
    shard_index: int | None,
    shard_count: int | None,
) -> list["ScenarioSpec"]:
    """Keep only the specs belonging to one shard of a grid.

    The shards partition the grid: every spec lands in exactly one shard,
    and the union over ``shard_index in range(shard_count)`` is the whole
    grid.  Relative order within a shard follows the input order.

    Args:
        specs: the full (unsharded) grid.
        shard_index: 0-based shard to keep.
        shard_count: total number of shards; both must be given together.

    Returns:
        The shard's specs (possibly empty — small grids may leave some
        shards without cells).

    Raises:
        ScenarioError: when only one of the two arguments is given or the
            indices are out of range.
    """
    if shard_index is None or shard_count is None:
        raise ScenarioError(
            "shard_index and shard_count must be given together"
        )
    if shard_count < 1:
        raise ScenarioError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ScenarioError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return [
        spec for spec in specs if shard_of(spec, shard_count) == shard_index
    ]


def scenario_grid_from_config(
    config: dict[str, Any],
    *,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> list["ScenarioSpec"]:
    """Expand a JSON config into a scenario grid.

    The config format used by ``protemp run``::

        {
          "base": { ...ScenarioSpec.to_dict()... },
          "grid": { "policy": ["basic-dfs", "protemp"], "seed": [0, 1] }
        }

    ``base`` holds the shared fields (a full or partial scenario dict);
    ``grid`` maps field names to value lists.  A config that is already a
    single scenario dict (no "base"/"grid" keys) yields one spec.

    Args:
        config: the decoded JSON config.
        shard_index: with `shard_count`, keep only one shard of the
            expanded grid (``protemp run --shard i/n``); the slicing is
            deterministic across hosts (see :func:`shard_specs`).
        shard_count: total number of shards.

    Returns:
        The expanded (and possibly shard-sliced) list of
        :class:`ScenarioSpec`.
    """
    if not isinstance(config, dict):
        raise ScenarioError("scenario config must be a JSON object")
    if "base" not in config and "grid" not in config:
        specs = [ScenarioSpec.from_dict(config)]
        if shard_index is not None or shard_count is not None:
            specs = shard_specs(specs, shard_index, shard_count)
        return specs
    extra = {k: v for k, v in config.items() if k not in ("base", "grid")}
    if "base" in config and extra:
        raise ScenarioError(
            f"config mixes 'base' with top-level scenario fields "
            f"{sorted(extra)}; put them inside 'base'"
        )
    # A config with "grid" but no "base" wrapper: the remaining top-level
    # keys ARE the base scenario (they must not be silently dropped).
    base = ScenarioSpec.from_dict(config["base"] if "base" in config else extra)
    grid = config.get("grid", {})
    if not isinstance(grid, dict):
        raise ScenarioError('"grid" must map field names to value lists')
    axes = {key: _axis_values(value) for key, value in grid.items()}
    specs = ScenarioSpec.grid(base, **axes)
    if shard_index is not None or shard_count is not None:
        specs = shard_specs(specs, shard_index, shard_count)
    return specs
