"""Name-based registries for platforms, workloads, policies, and friends.

A registry maps a short stable name (the string that appears in scenario
specs and JSON configs) to a factory plus metadata.  Third-party components
plug in with one decorator — e.g. a new controller from the literature
(an adjustable-gain integral regulator, a power-temperature state-space
controller) is one registered class::

    from repro.scenario import register_policy

    @register_policy("my-controller", description="...")
    def _build(**params):
        return MyControllerPolicy(**params)

Factory calling conventions (enforced by the runner):

* **platforms** — ``factory(**params) -> Platform``;
* **workloads** — ``factory(duration, n_cores, seed=..., **params) ->
  TaskTrace``;
* **policies** — ``factory(**params) -> DFSPolicy``, or with
  ``needs_table=True``: ``factory(table, **params) -> DFSPolicy`` (the
  runner builds/caches the Phase-1 table and passes it first);
* **assignments** — ``factory(**params) -> AssignmentPolicy``; with
  ``needs_seed=True`` the runner injects ``seed=`` derived from the
  scenario seed;
* **sensors** — ``factory(**params)``; with ``needs_seed=True`` the
  runner injects ``seed=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.control import BasicDFSPolicy, NoTCPolicy, ProTempPolicy
from repro.errors import ScenarioError
from repro.floorplan import core_grid, core_grid_with_cache_ring, core_row
from repro.platform import Platform
from repro.sim.queueing import (
    CoolestFirstAssignment,
    FirstIdleAssignment,
    RandomAssignment,
)
from repro.thermal.sensors import IdealSensor, NoisySensor
from repro.workloads import (
    WorkloadDistribution,
    bursty_trace,
    compute_benchmark,
    mixed_benchmark,
    multimedia_benchmark,
    poisson_trace,
    server_benchmark,
    web_benchmark,
)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component.

    Attributes:
        name: registry key.
        factory: the builder callable (see module docstring conventions).
        description: one-line summary shown by ``protemp list``.
        needs_table: policy factories only — the runner must supply a
            Phase-1 :class:`~repro.core.table.FrequencyTable` as the first
            positional argument.
        needs_seed: the runner injects a derived ``seed=`` keyword.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    needs_table: bool = False
    needs_seed: bool = False


class Registry:
    """A named collection of :class:`RegistryEntry`.

    Args:
        kind: what the registry holds ("platform", "policy", ...); used in
            error messages.

    Example:

        >>> demo = Registry("demo")
        >>> @demo.register("fancy", description="a demo entry")
        ... def _build():
        ...     return object()
        >>> "fancy" in demo and demo.get("fancy").description
        'a demo entry'
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str = "",
        needs_table: bool = False,
        needs_seed: bool = False,
    ) -> Callable[..., Any]:
        """Register a factory under `name`; usable as a decorator.

        Raises:
            ScenarioError: when `name` is already taken (re-registration
                is always a bug — unregister explicitly in tests).
        """
        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise ScenarioError(
                    f"duplicate {self.kind} registration {name!r}"
                )
            self._entries[name] = RegistryEntry(
                name=name,
                factory=fn,
                description=description,
                needs_table=needs_table,
                needs_seed=needs_seed,
            )
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> RegistryEntry:
        """Look up an entry.

        Raises:
            ScenarioError: for unknown names, listing the valid ones.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ScenarioError(
                f"unknown {self.kind} {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, RegistryEntry]]:
        """Sorted (name, entry) pairs."""
        return sorted(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The four registries scenario specs resolve against.
PLATFORMS = Registry("platform")
WORKLOADS = Registry("workload")
POLICIES = Registry("policy")
ASSIGNMENTS = Registry("assignment")
SENSORS = Registry("sensor")

#: Decorator aliases for third-party registrations.
register_platform = PLATFORMS.register
register_workload = WORKLOADS.register
register_policy = POLICIES.register
register_assignment = ASSIGNMENTS.register
register_sensor = SENSORS.register


# -- built-in platforms ----------------------------------------------------


@register_platform(
    "niagara8",
    description="The paper's 8-core Niagara evaluation platform (section 5)",
)
def _niagara8(**params: Any) -> Platform:
    return Platform.niagara8(**params)


@register_platform(
    "core-row",
    description="n cores in a row (fast synthetic platform for testing)",
)
def _core_row(n_cores: int = 3, **params: Any) -> Platform:
    floorplan = core_row(n_cores)
    return Platform.from_floorplan(floorplan, name=f"row{n_cores}", **params)


@register_platform(
    "core-grid",
    description="rows x cols core grid (synthetic many-core platform)",
)
def _core_grid(rows: int = 2, cols: int = 2, **params: Any) -> Platform:
    floorplan = core_grid(rows, cols)
    return Platform.from_floorplan(
        floorplan, name=f"grid{rows}x{cols}", **params
    )


@register_platform(
    "core-grid-cache-ring",
    description="core grid surrounded by a ring of cache blocks",
)
def _core_grid_cache_ring(
    rows: int = 2, cols: int = 2, **params: Any
) -> Platform:
    floorplan = core_grid_with_cache_ring(rows, cols)
    return Platform.from_floorplan(
        floorplan, name=f"grid{rows}x{cols}+ring", **params
    )


# -- built-in workloads ----------------------------------------------------

WORKLOADS.register(
    "web",
    web_benchmark,
    description="bursty short web requests (1-4 ms tasks)",
)
WORKLOADS.register(
    "multimedia",
    multimedia_benchmark,
    description="steady frame-processing tasks (5-10 ms)",
)
WORKLOADS.register(
    "compute",
    compute_benchmark,
    description="sustained heavy computation (Figure 6b regime)",
)
WORKLOADS.register(
    "server",
    server_benchmark,
    description="sparse long thread-level jobs (section 5.4 regime)",
)
WORKLOADS.register(
    "mixed",
    mixed_benchmark,
    description="web + multimedia + background compute (Figures 1/2/6a/8)",
)


@register_workload(
    "poisson",
    description="generic Poisson arrivals (offered_load, min_ms, max_ms)",
)
def _poisson(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    offered_load: float = 0.3,
    min_ms: float = 1.0,
    max_ms: float = 10.0,
) -> object:
    return poisson_trace(
        duration,
        offered_load=offered_load,
        n_cores=n_cores,
        workload=WorkloadDistribution(min_ms * 1e-3, max_ms * 1e-3),
        seed=seed,
    )


@register_workload(
    "bursty",
    description="generic on/off modulated Poisson bursts",
)
def _bursty(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    burst_load: float = 0.7,
    idle_load: float = 0.05,
    burst_length: float = 2.0,
    idle_length: float = 2.0,
    min_ms: float = 1.0,
    max_ms: float = 10.0,
) -> object:
    return bursty_trace(
        duration,
        burst_load=burst_load,
        idle_load=idle_load,
        n_cores=n_cores,
        burst_length=burst_length,
        idle_length=idle_length,
        workload=WorkloadDistribution(min_ms * 1e-3, max_ms * 1e-3),
        seed=seed,
    )


# -- built-in policies -----------------------------------------------------


@register_policy(
    "no-tc",
    description="no temperature control (paper's No-TC reference)",
)
def _no_tc() -> NoTCPolicy:
    return NoTCPolicy()


@register_policy(
    "basic-dfs",
    description="reactive threshold shutdown (paper's Basic-DFS, 90 C)",
)
def _basic_dfs(
    threshold: float = 90.0, resume_threshold: float | None = None
) -> BasicDFSPolicy:
    return BasicDFSPolicy(threshold=threshold, resume_threshold=resume_threshold)


@register_policy(
    "protemp",
    needs_table=True,
    description="proactive convex-optimized table lookup (the paper's Pro-Temp)",
)
def _protemp(table: Any, name: str | None = None) -> ProTempPolicy:
    return ProTempPolicy(table, name=name)


# -- built-in assignments --------------------------------------------------

ASSIGNMENTS.register(
    "first-idle",
    FirstIdleAssignment,
    description="paper default: lowest-index idle core",
)
ASSIGNMENTS.register(
    "coolest-first",
    CoolestFirstAssignment,
    description="temperature-aware (Coskun et al. [26], section 5.4)",
)
ASSIGNMENTS.register(
    "random",
    RandomAssignment,
    needs_seed=True,
    description="uniformly random idle core (seeded; ablation)",
)


# -- built-in sensors ------------------------------------------------------

SENSORS.register(
    "ideal",
    IdealSensor,
    description="pass-through sensing (the paper's assumption)",
)
SENSORS.register(
    "noisy",
    NoisySensor,
    needs_seed=True,
    description="Gaussian noise + quantization + saturation",
)
