"""Name-based registries for platforms, workloads, policies, and friends.

A registry maps a short stable name (the string that appears in scenario
specs and JSON configs) to a factory plus metadata.  Third-party components
plug in with one decorator — e.g. a new controller from the literature
(an adjustable-gain integral regulator, a power-temperature state-space
controller) is one registered class::

    from repro.scenario import register_policy

    @register_policy("my-controller", description="...")
    def _build(**params):
        return MyControllerPolicy(**params)

Factory calling conventions (enforced by the runner):

* **platforms** — ``factory(**params) -> Platform``;
* **workloads** — ``factory(duration, n_cores, seed=..., **params) ->
  TaskTrace``;
* **policies** — ``factory(**params) -> DFSPolicy``, or with
  ``needs_table=True``: ``factory(table, **params) -> DFSPolicy`` (the
  runner builds/caches the Phase-1 table and passes it first); with
  ``needs_platform=True``: ``factory(platform, **params) -> DFSPolicy``
  (the runner passes the materialized platform first and injects
  ``window=`` with the scenario's DFS period unless the spec pins one —
  model-based controllers derive their dynamics from both);
* **assignments** — ``factory(**params) -> AssignmentPolicy``; with
  ``needs_seed=True`` the runner injects ``seed=`` derived from the
  scenario seed;
* **sensors** — ``factory(**params)``; with ``needs_seed=True`` the
  runner injects ``seed=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.control import (
    BasicDFSPolicy,
    IntegralRegulatorPolicy,
    MPCPolicy,
    NoTCPolicy,
    ProTempPolicy,
    StateSpacePolicy,
)
from repro.errors import ScenarioError, WorkloadError
from repro.floorplan import core_grid, core_grid_with_cache_ring, core_row
from repro.platform import Platform
from repro.sim.queueing import (
    CoolestFirstAssignment,
    FirstIdleAssignment,
    RandomAssignment,
)
from repro.thermal.sensors import IdealSensor, NoisySensor
from repro.workloads import (
    WorkloadDistribution,
    bursty_trace,
    compute_benchmark,
    load_trace_file,
    mixed_benchmark,
    multimedia_benchmark,
    poisson_trace,
    server_benchmark,
    web_benchmark,
)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component.

    Attributes:
        name: registry key.
        factory: the builder callable (see module docstring conventions).
        description: one-line summary shown by ``protemp list``.
        needs_table: policy factories only — the runner must supply a
            Phase-1 :class:`~repro.core.table.FrequencyTable` as the first
            positional argument.
        needs_seed: the runner injects a derived ``seed=`` keyword.
        needs_platform: policy factories only — the runner must supply
            the materialized :class:`~repro.platform.Platform` as the
            first positional argument and inject the scenario's DFS
            ``window=`` (model-based controllers build their control law
            from the platform's thermal/power models).
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    needs_table: bool = False
    needs_seed: bool = False
    needs_platform: bool = False


class Registry:
    """A named collection of :class:`RegistryEntry`.

    Args:
        kind: what the registry holds ("platform", "policy", ...); used in
            error messages.

    Example:

        >>> demo = Registry("demo")
        >>> @demo.register("fancy", description="a demo entry")
        ... def _build():
        ...     return object()
        >>> "fancy" in demo and demo.get("fancy").description
        'a demo entry'
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str = "",
        needs_table: bool = False,
        needs_seed: bool = False,
        needs_platform: bool = False,
    ) -> Callable[..., Any]:
        """Register a factory under `name`; usable as a decorator.

        Raises:
            ScenarioError: when `name` is already taken (re-registration
                is always a bug — unregister explicitly in tests).
        """
        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise ScenarioError(
                    f"duplicate {self.kind} registration {name!r}"
                )
            self._entries[name] = RegistryEntry(
                name=name,
                factory=fn,
                description=description,
                needs_table=needs_table,
                needs_seed=needs_seed,
                needs_platform=needs_platform,
            )
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> RegistryEntry:
        """Look up an entry.

        Raises:
            ScenarioError: for unknown names, listing the valid ones.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ScenarioError(
                f"unknown {self.kind} {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, RegistryEntry]]:
        """Sorted (name, entry) pairs."""
        return sorted(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The four registries scenario specs resolve against.
PLATFORMS = Registry("platform")
WORKLOADS = Registry("workload")
POLICIES = Registry("policy")
ASSIGNMENTS = Registry("assignment")
SENSORS = Registry("sensor")

#: Decorator aliases for third-party registrations.
register_platform = PLATFORMS.register
register_workload = WORKLOADS.register
register_policy = POLICIES.register
register_assignment = ASSIGNMENTS.register
register_sensor = SENSORS.register


# -- built-in platforms ----------------------------------------------------


@register_platform(
    "niagara8",
    description="The paper's 8-core Niagara evaluation platform (section 5)",
)
def _niagara8(**params: Any) -> Platform:
    return Platform.niagara8(**params)


@register_platform(
    "core-row",
    description="n cores in a row (fast synthetic platform for testing)",
)
def _core_row(n_cores: int = 3, **params: Any) -> Platform:
    floorplan = core_row(n_cores)
    return Platform.from_floorplan(floorplan, name=f"row{n_cores}", **params)


@register_platform(
    "core-grid",
    description="rows x cols core grid (synthetic many-core platform)",
)
def _core_grid(rows: int = 2, cols: int = 2, **params: Any) -> Platform:
    floorplan = core_grid(rows, cols)
    return Platform.from_floorplan(
        floorplan, name=f"grid{rows}x{cols}", **params
    )


@register_platform(
    "core-grid-cache-ring",
    description="core grid surrounded by a ring of cache blocks",
)
def _core_grid_cache_ring(
    rows: int = 2, cols: int = 2, **params: Any
) -> Platform:
    floorplan = core_grid_with_cache_ring(rows, cols)
    return Platform.from_floorplan(
        floorplan, name=f"grid{rows}x{cols}+ring", **params
    )


# -- built-in workloads ----------------------------------------------------

WORKLOADS.register(
    "web",
    web_benchmark,
    description="bursty short web requests (1-4 ms tasks)",
)
WORKLOADS.register(
    "multimedia",
    multimedia_benchmark,
    description="steady frame-processing tasks (5-10 ms)",
)
WORKLOADS.register(
    "compute",
    compute_benchmark,
    description="sustained heavy computation (Figure 6b regime)",
)
WORKLOADS.register(
    "server",
    server_benchmark,
    description="sparse long thread-level jobs (section 5.4 regime)",
)
WORKLOADS.register(
    "mixed",
    mixed_benchmark,
    description="web + multimedia + background compute (Figures 1/2/6a/8)",
)


@register_workload(
    "poisson",
    description="generic Poisson arrivals (offered_load, min_ms, max_ms)",
)
def _poisson(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    offered_load: float = 0.3,
    min_ms: float = 1.0,
    max_ms: float = 10.0,
) -> object:
    return poisson_trace(
        duration,
        offered_load=offered_load,
        n_cores=n_cores,
        workload=WorkloadDistribution(min_ms * 1e-3, max_ms * 1e-3),
        seed=seed,
    )


@register_workload(
    "bursty",
    description="generic on/off modulated Poisson bursts",
)
def _bursty(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    burst_load: float = 0.7,
    idle_load: float = 0.05,
    burst_length: float = 2.0,
    idle_length: float = 2.0,
    min_ms: float = 1.0,
    max_ms: float = 10.0,
) -> object:
    return bursty_trace(
        duration,
        burst_load=burst_load,
        idle_load=idle_load,
        n_cores=n_cores,
        burst_length=burst_length,
        idle_length=idle_length,
        workload=WorkloadDistribution(min_ms * 1e-3, max_ms * 1e-3),
        seed=seed,
    )


@register_workload(
    "trace-file",
    description="measured trace from a CSV/JSONL file (params: path, sha256)",
)
def _trace_file(
    duration: float,
    n_cores: int,
    *,
    seed: int = 0,
    path: str | None = None,
    sha256: str | None = None,
    name: str | None = None,
) -> object:
    # `seed`/`n_cores` are part of the workload-factory calling convention
    # but a measured trace is fixed data — both are ignored.
    if path is None or sha256 is None:
        raise WorkloadError(
            "trace-file workload needs 'path' and 'sha256' params "
            "(build them with repro.workloads.trace_file_params)"
        )
    if name is None and str(path).lower().endswith(".csv"):
        # A CSV trace's natural name is the file stem — path-derived, so
        # the same content loaded from two locations would produce
        # different summary rows under one spec hash.  Default to a
        # content-derived name instead (JSONL embeds its own name in the
        # hashed bytes, so its default is already deterministic).
        name = f"trace-{sha256[:10]}"
    return load_trace_file(
        path, sha256=sha256, max_duration=duration, name=name
    )


# -- built-in policies -----------------------------------------------------


@register_policy(
    "no-tc",
    description="no temperature control (paper's No-TC reference)",
)
def _no_tc() -> NoTCPolicy:
    return NoTCPolicy()


@register_policy(
    "basic-dfs",
    description="reactive threshold shutdown (paper's Basic-DFS, 90 C)",
)
def _basic_dfs(
    threshold: float = 90.0, resume_threshold: float | None = None
) -> BasicDFSPolicy:
    return BasicDFSPolicy(threshold=threshold, resume_threshold=resume_threshold)


@register_policy(
    "protemp",
    needs_table=True,
    description="proactive convex-optimized table lookup (the paper's Pro-Temp)",
)
def _protemp(table: Any, name: str | None = None) -> ProTempPolicy:
    return ProTempPolicy(table, name=name)


@register_policy(
    "rao-integral",
    description="adjustable-gain integral setpoint regulator (Rao et al.)",
)
def _rao_integral(
    setpoint: float = 95.0, gain: float = 0.05, u_min: float = 0.0
) -> IntegralRegulatorPolicy:
    return IntegralRegulatorPolicy(setpoint=setpoint, gain=gain, u_min=u_min)


@register_policy(
    "bhat-state-space",
    needs_platform=True,
    description="state feedback on the thermal state + observer (Bhat et al.)",
)
def _bhat_state_space(platform: Any, **params: Any) -> StateSpacePolicy:
    return StateSpacePolicy(platform, **params)


@register_policy(
    "mpc",
    needs_platform=True,
    description="receding-horizon re-solve of the convex program each window",
)
def _mpc(platform: Any, **params: Any) -> MPCPolicy:
    return MPCPolicy(platform, **params)


# -- built-in assignments --------------------------------------------------

ASSIGNMENTS.register(
    "first-idle",
    FirstIdleAssignment,
    description="paper default: lowest-index idle core",
)
ASSIGNMENTS.register(
    "coolest-first",
    CoolestFirstAssignment,
    description="temperature-aware (Coskun et al. [26], section 5.4)",
)
ASSIGNMENTS.register(
    "random",
    RandomAssignment,
    needs_seed=True,
    description="uniformly random idle core (seeded; ablation)",
)


# -- built-in sensors ------------------------------------------------------

SENSORS.register(
    "ideal",
    IdealSensor,
    description="pass-through sensing (the paper's assumption)",
)
SENSORS.register(
    "noisy",
    NoisySensor,
    needs_seed=True,
    description="Gaussian noise + quantization + saturation",
)
