"""Declarative scenario API: specs, registries, and the ScenarioRunner.

The public entry point for composing experiments::

    from repro.scenario import PolicySpec, ScenarioRunner, ScenarioSpec, WorkloadSpec

    specs = ScenarioSpec.grid(
        policy=["basic-dfs", "protemp"],
        workload=[WorkloadSpec("mixed", 40.0), WorkloadSpec("compute", 40.0)],
        seed=range(8),
    )
    outcomes = ScenarioRunner(n_workers=4).run_many(specs)

See `repro.scenario.specs` for the data model, `repro.scenario.registry`
for plugging in third-party platforms/workloads/policies, and
`repro.scenario.runner` for execution semantics.
"""

from repro.scenario.registry import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
    Registry,
    RegistryEntry,
    register_assignment,
    register_platform,
    register_policy,
    register_sensor,
    register_workload,
)
from repro.scenario.runner import (
    ScenarioOutcome,
    ScenarioRunner,
    execute_scenario,
    table_key,
)
from repro.scenario.specs import (
    DEFAULT_F_GRID,
    DEFAULT_STEP_SUBSAMPLE,
    DEFAULT_T_GRID,
    PlatformSpec,
    PolicySpec,
    ScenarioSpec,
    SensorSpec,
    WorkloadSpec,
    derive_seed,
    scenario_grid_from_config,
)

__all__ = [
    "ASSIGNMENTS",
    "DEFAULT_F_GRID",
    "DEFAULT_STEP_SUBSAMPLE",
    "DEFAULT_T_GRID",
    "PLATFORMS",
    "POLICIES",
    "SENSORS",
    "WORKLOADS",
    "PlatformSpec",
    "PolicySpec",
    "Registry",
    "RegistryEntry",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "SensorSpec",
    "WorkloadSpec",
    "derive_seed",
    "execute_scenario",
    "register_assignment",
    "register_platform",
    "register_policy",
    "register_sensor",
    "register_workload",
    "scenario_grid_from_config",
    "table_key",
]
