"""Declarative scenario API: specs, registries, runner, and outcome store.

The public entry point for composing experiments::

    from repro.scenario import PolicySpec, ScenarioRunner, ScenarioSpec, WorkloadSpec

    specs = ScenarioSpec.grid(
        policy=["basic-dfs", "protemp"],
        workload=[WorkloadSpec("mixed", 40.0), WorkloadSpec("compute", 40.0)],
        seed=range(8),
    )
    outcomes = ScenarioRunner(n_workers=4).run_many(specs)

Grids scale out with two orthogonal features: deterministic sharding
(:func:`shard_specs` / ``protemp run --shard i/n``) partitions a grid
across hosts with no coordination, and the content-addressed outcome
store (``ScenarioRunner(outcome_store=...)``, `repro.scenario.store`)
persists finished cells so repeated or resumed grid runs replay them
instead of re-simulating.  ``protemp merge`` unions shard outcome sets.

See `repro.scenario.specs` for the data model (including the spec-hash
stability contract), `repro.scenario.registry` for plugging in
third-party platforms/workloads/policies, `repro.scenario.runner` for
execution semantics, and docs/ARCHITECTURE.md + docs/SCALING.md for the
system-level picture.
"""

from repro.scenario.registry import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
    Registry,
    RegistryEntry,
    register_assignment,
    register_platform,
    register_policy,
    register_sensor,
    register_workload,
)
from repro.scenario.runner import (
    ScenarioOutcome,
    ScenarioRunner,
    execute_scenario,
    table_key,
)
from repro.scenario.specs import (
    DEFAULT_F_GRID,
    DEFAULT_STEP_SUBSAMPLE,
    DEFAULT_T_GRID,
    PlatformSpec,
    PolicySpec,
    ScenarioSpec,
    SensorSpec,
    WorkloadSpec,
    derive_seed,
    scenario_grid_from_config,
    shard_of,
    shard_specs,
)
from repro.scenario.store import (
    DirectoryOutcomeStore,
    MemoryOutcomeStore,
    MergeResult,
    OutcomeStore,
    StoredOutcome,
    merge_stores,
    open_existing_store,
    open_outcome_store,
    union_records,
)
from repro.scenario.store_sql import SqliteOutcomeStore

__all__ = [
    "ASSIGNMENTS",
    "DEFAULT_F_GRID",
    "DEFAULT_STEP_SUBSAMPLE",
    "DEFAULT_T_GRID",
    "DirectoryOutcomeStore",
    "MemoryOutcomeStore",
    "MergeResult",
    "OutcomeStore",
    "PLATFORMS",
    "POLICIES",
    "SENSORS",
    "StoredOutcome",
    "WORKLOADS",
    "PlatformSpec",
    "PolicySpec",
    "Registry",
    "RegistryEntry",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "SensorSpec",
    "SqliteOutcomeStore",
    "WorkloadSpec",
    "derive_seed",
    "execute_scenario",
    "merge_stores",
    "open_existing_store",
    "open_outcome_store",
    "register_assignment",
    "register_platform",
    "register_policy",
    "register_sensor",
    "register_workload",
    "scenario_grid_from_config",
    "shard_of",
    "shard_specs",
    "table_key",
    "union_records",
]
