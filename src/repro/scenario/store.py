"""Content-addressed persistence of scenario outcomes, keyed by spec hash.

The outcome store is the scenario-level analogue of the runner's Phase-1
table cache: where the table cache deduplicates the expensive *design-time*
artifact (one frequency table per distinct platform x table config), the
outcome store deduplicates whole *scenario solves* — a grid cell that has
already been simulated anywhere (this process, an earlier session, another
host sharing the directory) is answered from the store instead of being
re-run.  That is what makes million-cell policy-comparison grids tractable:
re-running a grid only pays for the cells that changed.

Three pieces:

* :class:`StoredOutcome` — the persisted record: the full spec dict (for
  collision detection and replay), the *deterministic* summary row, and a
  provenance block (original solve wall time, table cache provenance,
  store timestamp).  Provenance is explicitly excluded from record
  equality: two shards that both computed the same cell produce records
  that differ only in wall times, and that is a benign duplicate.
* :class:`OutcomeStore` — the minimal interface (`get`/`put`/`records`)
  with three backends: :class:`MemoryOutcomeStore` (tests, ephemeral
  runs), :class:`DirectoryOutcomeStore` (a directory of JSON-lines files,
  written atomically so concurrent shards never corrupt the store), and
  :class:`~repro.scenario.store_sql.SqliteOutcomeStore` (one indexed
  file for large stores; selected via ``sqlite:PATH`` URLs or a
  ``.sqlite``/``.db`` suffix — see :func:`open_outcome_store`).
* :func:`merge_stores` / :func:`union_records` — the ``protemp merge``
  engine: union shard outcome sets, drop benign duplicates, and fail
  loudly on spec-hash collisions and conflicting duplicates.

Example — write a record, read it back bit-identically:

    >>> from repro.scenario import ScenarioRunner, ScenarioSpec
    >>> from repro.scenario.store import MemoryOutcomeStore, StoredOutcome
    >>> store = MemoryOutcomeStore()
    >>> outcome = ScenarioRunner().run(ScenarioSpec(policy="no-tc"))
    >>> store.put(StoredOutcome.from_outcome(outcome))
    >>> store.get(outcome.spec_hash).summary == outcome.data_row()
    True
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import AbstractContextManager, contextmanager, nullcontext
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.errors import OutcomeStoreError, ScenarioError
from repro.scenario.specs import ScenarioSpec, _spec_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.observability import MetricsRegistry
    from repro.scenario.runner import ScenarioOutcome


def _canonical(payload: dict[str, Any]) -> str:
    """Canonical JSON encoding used for record equality and hashing."""
    return json.dumps(payload, sort_keys=True, allow_nan=False)


@dataclass(frozen=True)
class StoredOutcome:
    """One persisted scenario outcome.

    Attributes:
        spec_hash: :attr:`ScenarioSpec.spec_hash` of the scenario — the
            store key.
        spec: the full ``ScenarioSpec.to_dict()`` payload.  Stored so a
            lookup can verify the requested spec actually matches (the
            12-hex-digit hash makes collisions unlikely, not impossible)
            and so a store is self-describing without the producing config.
        summary: the deterministic summary row
            (:meth:`ScenarioOutcome.data_row`) — pure simulation results,
            no wall times or cache flags, so records written by different
            shards/hosts for the same spec are bit-identical.
        provenance: how this record came to be: ``solve_wall_time_s`` (the
            original simulation's wall time), ``table_cache_hit`` /
            ``table_key`` (the original run's Phase-1 table provenance) and
            ``stored_at`` (UTC ISO timestamp).  Never part of equality.

    Raises:
        OutcomeStoreError: from :meth:`from_dict` when a record read from
            disk fails validation (missing fields, spec/hash mismatch).
    """

    spec_hash: str
    spec: dict[str, Any]
    summary: dict[str, Any]
    provenance: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_outcome(cls, outcome: "ScenarioOutcome") -> "StoredOutcome":
        """Build the persistable record for an executed outcome.

        Args:
            outcome: a :class:`ScenarioOutcome` holding a live
                :class:`SimulationResult`.  A replayed outcome (one that
                itself came from a store) round-trips its original record.

        Returns:
            The record to :meth:`OutcomeStore.put`.
        """
        if outcome.result is None and outcome.stored is not None:
            return outcome.stored
        return cls(
            spec_hash=outcome.spec_hash,
            spec=outcome.spec.to_dict(),
            summary=outcome.data_row(),
            provenance={
                "solve_wall_time_s": outcome.solve_wall_time_s,
                "table_cache_hit": outcome.table_cache_hit,
                "table_key": outcome.table_key,
                # protemp: allow[PT001] -- provenance timestamp only; excluded from record equality and replay
                "stored_at": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data (JSON-compatible) representation."""
        return {
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "summary": self.summary,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(
        cls, data: dict[str, Any], *, source: str = "record"
    ) -> "StoredOutcome":
        """Inverse of :meth:`to_dict`, with validation.

        Args:
            data: a decoded record payload.
            source: where the record came from (used in error messages).

        Raises:
            OutcomeStoreError: when required fields are missing or the
                stored spec does not hash to the stored key (a corrupt or
                hand-edited record must not silently answer lookups).
        """
        try:
            record = cls(
                spec_hash=data["spec_hash"],
                spec=data["spec"],
                summary=data["summary"],
                provenance=data.get("provenance", {}),
            )
        except (KeyError, TypeError) as exc:
            raise OutcomeStoreError(f"malformed outcome {source}: {exc}") from exc
        actual = _spec_hash(_hash_payload(record.spec, source=source))
        if actual != record.spec_hash:
            raise OutcomeStoreError(
                f"corrupt outcome {source}: stored spec hashes to {actual}, "
                f"not the record key {record.spec_hash}"
            )
        return record

    def to_json_line(self) -> str:
        """One-line JSON encoding (the JSON-lines on-disk format)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, allow_nan=False,
            separators=(",", ":"),
        )

    def same_content(self, other: "StoredOutcome") -> bool:
        """True when the records agree on everything but provenance.

        Two shards computing the same cell legitimately differ in wall
        times and timestamps; those duplicates are benign and deduplicate
        to one record.  Specs are compared by their *hash payload*, so two
        records for the same trace-file workload loaded from different
        file locations agree (the path is excluded from the identity,
        just as it is from the key).
        """
        return (
            self.spec_hash == other.spec_hash
            and _canonical(_hash_payload(self.spec))
            == _canonical(_hash_payload(other.spec))
            and _canonical(self.summary) == _canonical(other.summary)
        )


def _hash_payload(
    spec: dict[str, Any], *, source: str = "record"
) -> dict[str, Any]:
    """The canonical hash payload of a stored spec dict.

    Records are keyed by :attr:`ScenarioSpec.spec_hash`, which hashes
    :meth:`ScenarioSpec.hash_dict` (stability-filtered: e.g. trace-file
    workload paths are excluded), not the raw ``to_dict`` payload — so
    validation and content comparison must go through the same filter.
    """
    try:
        return ScenarioSpec.from_dict(dict(spec)).hash_dict()
    except ScenarioError as exc:
        raise OutcomeStoreError(
            f"corrupt outcome {source}: stored spec does not parse: {exc}"
        ) from exc


def _describe_mismatch(existing: StoredOutcome, new: StoredOutcome) -> str:
    """Classify a same-key disagreement for error messages."""
    if _canonical(_hash_payload(existing.spec)) != _canonical(
        _hash_payload(new.spec)
    ):
        return (
            f"spec-hash collision on {new.spec_hash}: two different specs "
            f"share the key (labels {existing.spec.get('name')!r} vs "
            f"{new.spec.get('name')!r})"
        )
    return (
        f"conflicting duplicate outcome for spec {new.spec_hash}: the same "
        "spec produced two different summary rows (scenario runs are "
        "seeded, so this indicates nondeterminism or a corrupted record)"
    )


@contextmanager
def _observed(registry: MetricsRegistry, op: str) -> Iterator[None]:
    """Count + span + time one store operation against `registry`."""
    registry.counter(
        f"store_{op}s_total", f"outcome-store {op} attempts"
    ).inc()
    with registry.span(f"store_{op}"):
        with registry.time(
            f"store_{op}_seconds", f"outcome-store {op} latency"
        ):
            yield


class OutcomeStore:
    """Interface of a content-addressed outcome store.

    Implementations must provide :meth:`get`, :meth:`put` and
    :meth:`records`; everything else derives from those.  ``put`` must be
    idempotent for same-content records and must raise
    :class:`OutcomeStoreError` on collisions/conflicts (see
    :func:`_describe_mismatch` for the two cases).

    A store can optionally be *bound* to a :class:`MetricsRegistry`
    (:meth:`bind_metrics`); backends then wrap their public ``get``/``put``
    in :meth:`_observe`, which times the operation — including any wait on
    the store mutex, so lock contention is visible — into
    ``store_{get,put}_seconds`` and opens a ``store_get``/``store_put``
    span (nesting under whatever span the calling thread has open).
    """

    #: Bound metrics registry, or None for an uninstrumented store.  Set
    #: once via :meth:`bind_metrics` before concurrent use; rebinding a
    #: store shared by several runners keeps only the latest registry.
    _metrics: MetricsRegistry | None = None

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Route this store's get/put telemetry into `registry`."""
        self._metrics = registry

    def _observe(self, op: str) -> AbstractContextManager[None]:
        """Timing/span/counter context for one public ``get`` or ``put``.

        The ``store_{op}s_total`` counter counts *attempts* (it ticks even
        when the operation raises — fault-injection tests rely on failed
        puts still being visible in the telemetry).
        """
        registry = self._metrics
        if registry is None:
            return nullcontext()
        return _observed(registry, op)

    def get(self, spec_hash: str) -> StoredOutcome | None:
        """The record stored under `spec_hash`, or None."""
        raise NotImplementedError

    def put(self, record: StoredOutcome) -> None:
        """Persist `record`; a same-content duplicate is a no-op.

        Raises:
            OutcomeStoreError: when a different record already holds the key.
        """
        raise NotImplementedError

    def records(self) -> Iterator[StoredOutcome]:
        """Iterate every stored record (order unspecified)."""
        raise NotImplementedError

    def __contains__(self, spec_hash: str) -> bool:
        return self.get(spec_hash) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def _check_put(self, record: StoredOutcome) -> StoredOutcome | None:
        """Shared put-time duplicate/conflict handling.

        Returns:
            The existing same-content record (caller should no-op), or
            None when the key is free.
        """
        existing = self.get(record.spec_hash)
        if existing is None:
            return None
        if existing.same_content(record):
            return existing
        raise OutcomeStoreError(_describe_mismatch(existing, record))


class MemoryOutcomeStore(OutcomeStore):
    """In-process dict-backed store (tests, single-session dedup).

    Thread-safe: reads during write-back are fine — the serving layer's
    worker threads `put` while request handlers `get`/iterate.
    """

    def __init__(self) -> None:
        self._records: dict[str, StoredOutcome] = {}
        self._mutex = threading.RLock()

    def get(self, spec_hash: str) -> StoredOutcome | None:
        """The record stored under `spec_hash`, or None."""
        with self._observe("get"):
            with self._mutex:
                return self._records.get(spec_hash)

    def put(self, record: StoredOutcome) -> None:
        """Store `record` (idempotent; conflicts raise)."""
        with self._observe("put"):
            with self._mutex:
                if self._check_put(record) is None:
                    self._records[record.spec_hash] = record

    def records(self) -> Iterator[StoredOutcome]:
        """Iterate stored records (over a point-in-time snapshot)."""
        with self._mutex:
            return iter(list(self._records.values()))


class DirectoryOutcomeStore(OutcomeStore):
    """A directory of JSON-lines outcome records, safe for concurrent shards.

    Layout: each record this store writes lives in its own single-line
    file ``outcome_<spec_hash>.jsonl`` — content-addressed, so `get` is one
    stat away and two shards that compute the same cell write *identical*
    files (the atomic ``os.replace`` makes the race harmless).

    *Foreign* ``*.jsonl`` files — hand-concatenated shard dumps, rsync'd
    record collections, anything not matching the per-record naming — are
    also understood: :meth:`records` reads every line of every file, and
    :meth:`get`/:meth:`put` consult a lazily built index of the foreign
    files, so a store assembled by concatenation replays and
    conflict-checks exactly like one written record-by-record.  The index
    (per-record hashes and foreign records alike) is built with one
    directory scan and reused until the directory mtime changes, so a
    warm replay over a large store is O(1) per lookup after the initial
    scan — and files dropped into the directory while the store is open
    are noticed instead of being silently ignored.

    Within one process the store is thread-safe: a mutex serializes the
    check-then-write of :meth:`put` and the lazy foreign-index build, so
    serving-layer reads during concurrent write-back never observe a
    half-built index (cross-process safety comes from the atomic
    ``os.replace`` writes, as before).

    Args:
        path: store directory; created lazily on first write.

    Example::

        store = DirectoryOutcomeStore("outcomes/")
        runner = ScenarioRunner(outcome_store=store)
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: One-shot directory index (see :meth:`_refresh_index_locked`):
        #: the spec hashes with a per-record file, the foreign-file record
        #: index, and the directory mtime both were built against.
        self._own: set[str] | None = None
        self._foreign: dict[str, StoredOutcome] | None = None
        self._dir_mtime_ns: int | None = None
        self._mutex = threading.RLock()

    def _record_path(self, spec_hash: str) -> Path:
        return self.path / f"outcome_{spec_hash}.jsonl"

    def _is_own_record_file(self, path: Path) -> bool:
        """True for files following this store's per-record naming."""
        name = path.name
        return (
            name.startswith("outcome_")
            and name.endswith(".jsonl")
            and len(name) == len("outcome_.jsonl") + 12
        )

    def _read_lines(self, path: Path) -> Iterator[StoredOutcome]:
        """Parse every record line of one JSON-lines file."""
        try:
            text = path.read_text()
        except OSError as exc:
            raise OutcomeStoreError(
                f"cannot read outcome store file {path}: {exc}"
            ) from exc
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise OutcomeStoreError(
                    f"unreadable outcome record {path}:{lineno}: {exc}"
                ) from exc
            yield StoredOutcome.from_dict(payload, source=f"{path}:{lineno}")

    def _dir_mtime(self) -> int | None:
        """The store directory's mtime (ns), or None when it is absent."""
        try:
            return self.path.stat().st_mtime_ns
        except OSError:
            return None

    def _refresh_index_locked(self) -> None:
        """(Re)build the directory index when the directory changed.

        One ``scandir`` classifies every ``*.jsonl`` entry: per-record
        files contribute their spec hash to ``self._own`` (cheap — the
        hash is in the name, no file is opened), foreign multi-record
        files are parsed into ``self._foreign``.  The index is reused
        until the directory mtime moves (adding a file to a directory
        bumps its mtime on every supported platform), so a warm-replay
        pass over a large store pays one scan total instead of touching
        the filesystem per lookup — and foreign files added after the
        store was opened are picked up instead of being silently ignored.
        """
        mtime = self._dir_mtime()
        if (
            self._own is not None
            and self._foreign is not None
            and mtime == self._dir_mtime_ns
        ):
            return
        own: set[str] = set()
        foreign: dict[str, StoredOutcome] = {}
        if mtime is not None:
            for path in sorted(self.path.glob("*.jsonl")):
                if self._is_own_record_file(path):
                    own.add(path.name[len("outcome_"):-len(".jsonl")])
                    continue
                for record in self._read_lines(path):
                    existing = foreign.get(record.spec_hash)
                    if existing is None:
                        foreign[record.spec_hash] = record
                    elif not existing.same_content(record):
                        raise OutcomeStoreError(
                            _describe_mismatch(existing, record)
                        )
        self._own = own
        self._foreign = foreign
        self._dir_mtime_ns = mtime

    def _read_record_file(self, path: Path) -> StoredOutcome | None:
        """Parse a per-record file; None when it does not exist.

        ``NotADirectoryError`` also reads as a miss: it means the store
        path is a regular file, and the clearer "not a writable
        directory?" diagnosis belongs to the put path.
        """
        try:
            line = path.read_text().strip()
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError as exc:
            raise OutcomeStoreError(
                f"cannot read outcome store record {path}: {exc}"
            ) from exc
        if not line:
            return None
        try:
            payload = json.loads(line.splitlines()[0])
        except json.JSONDecodeError as exc:
            raise OutcomeStoreError(
                f"unreadable outcome record {path}: {exc}"
            ) from exc
        return StoredOutcome.from_dict(payload, source=str(path))

    def get(self, spec_hash: str) -> StoredOutcome | None:
        """Load (and validate) the record for `spec_hash`, or None.

        Consults the directory index (per-record files first, then the
        foreign multi-record files); the index is rebuilt only when the
        directory mtime changes, so lookups on a large warm store are
        O(1) after one initial scan.

        Raises:
            OutcomeStoreError: when an on-disk record is corrupt.
        """
        with self._observe("get"):
            with self._mutex:
                return self._get_locked(spec_hash)

    def _get_locked(self, spec_hash: str) -> StoredOutcome | None:
        self._refresh_index_locked()
        assert self._own is not None and self._foreign is not None
        if spec_hash in self._own:
            record = self._read_record_file(self._record_path(spec_hash))
            if record is not None:
                return record
            self._own.discard(spec_hash)  # deleted since the scan
        if spec_hash in self._foreign:
            return self._foreign[spec_hash]
        # Same-mtime race guard: a concurrent shard may have renamed a
        # record into the directory within the current mtime granule; one
        # direct probe keeps misses correct without a rescan.
        record = self._read_record_file(self._record_path(spec_hash))
        if record is not None:
            self._own.add(spec_hash)
        return record

    def put(self, record: StoredOutcome) -> None:
        """Atomically persist `record` (idempotent; conflicts raise).

        The record is written to a temporary file in the store directory
        and moved into place with ``os.replace``, so a reader (or a
        concurrent shard's writer) never observes a partial file.
        """
        with self._observe("put"):
            with self._mutex:
                self._put_locked(record)

    def _put_locked(self, record: StoredOutcome) -> None:
        if self._check_put(record) is not None:
            return
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".tmp_{record.spec_hash}_",
                suffix=".jsonl",
                dir=self.path,
            )
        except OSError as exc:
            raise OutcomeStoreError(
                f"cannot write to outcome store {self.path} "
                f"(not a writable directory?): {exc}"
            ) from exc
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(record.to_json_line() + "\n")
            os.replace(tmp_name, self._record_path(record.spec_hash))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Fold the write into the index instead of invalidating it: the
        # temp-file + rename bumped the directory mtime, and rescanning
        # the whole store after every put would make a cold grid run
        # O(records^2) in directory operations.
        if self._own is not None:
            self._own.add(record.spec_hash)
            self._dir_mtime_ns = self._dir_mtime()

    def records(self) -> Iterator[StoredOutcome]:
        """Iterate every record in every ``*.jsonl`` file (sorted by file)."""
        if not self.path.is_dir():
            return
        for path in sorted(self.path.glob("*.jsonl")):
            yield from self._read_lines(path)


#: File suffixes routed to the SQLite backend when no scheme is given.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_outcome_store(
    store: OutcomeStore | str | Path | None,
) -> OutcomeStore | None:
    """Coerce a store argument, selecting the backend from its URL/path.

    Strings and paths choose a backend:

    * ``sqlite:PATH`` (or a path ending in ``.sqlite`` / ``.sqlite3`` /
      ``.db``) — a single-file
      :class:`~repro.scenario.store_sql.SqliteOutcomeStore`;
    * ``dir:PATH`` or any other path — a :class:`DirectoryOutcomeStore`;
    * ``memory:`` — a fresh :class:`MemoryOutcomeStore` (ephemeral).

    Every CLI surface that accepts a store (``protemp run/serve
    --outcome-store``, ``protemp merge``, ``protemp migrate``) funnels
    through here, so the same URL grammar works everywhere.

    Args:
        store: an :class:`OutcomeStore`, a backend URL/path, or None.

    Returns:
        An :class:`OutcomeStore` instance, or None when `store` is None.
    """
    if store is None or isinstance(store, OutcomeStore):
        return store
    if isinstance(store, (str, Path)):
        # Lazy import: store_sql imports this module (interface + record
        # types), so the sqlite backend must not be a top-level import.
        from repro.scenario.store_sql import SqliteOutcomeStore

        if isinstance(store, str):
            scheme, sep, rest = store.partition(":")
            if sep and scheme in ("sqlite", "dir", "memory"):
                if scheme == "memory":
                    return MemoryOutcomeStore()
                if not rest:
                    raise OutcomeStoreError(
                        f"outcome store URL {store!r} is missing a path "
                        f"(expected {scheme}:PATH)"
                    )
                if scheme == "sqlite":
                    return SqliteOutcomeStore(rest)
                return DirectoryOutcomeStore(rest)
        path = Path(store)
        if path.suffix.lower() in SQLITE_SUFFIXES:
            return SqliteOutcomeStore(path)
        return DirectoryOutcomeStore(path)
    raise OutcomeStoreError(
        f"cannot open an outcome store from {type(store).__name__}"
    )


def open_existing_store(store: str | Path) -> OutcomeStore:
    """Open a store that must already exist on disk (merge/migrate sources).

    A typo'd source path must fail loudly instead of silently merging an
    empty store.

    Raises:
        OutcomeStoreError: when the resolved backend's file/directory does
            not exist, or the reference is malformed.
    """
    opened = open_outcome_store(store)
    if opened is None:
        raise OutcomeStoreError("an outcome store reference is required")
    if isinstance(opened, DirectoryOutcomeStore) and not opened.path.is_dir():
        raise OutcomeStoreError(
            f"no such outcome store directory: {opened.path}"
        )
    from repro.scenario.store_sql import SqliteOutcomeStore

    if isinstance(opened, SqliteOutcomeStore) and not opened.path.is_file():
        raise OutcomeStoreError(
            f"no such sqlite outcome store: {opened.path}"
        )
    return opened


@dataclass
class MergeResult:
    """What a merge produced.

    Attributes:
        records: the union, sorted by ``spec_hash`` (deterministic
            regardless of shard/file order).
        duplicates: how many benign same-content duplicates were dropped
            (cells computed by more than one shard).
        sources: how many input records were read in total.
    """

    records: list[StoredOutcome]
    duplicates: int
    sources: int

    def summary_rows(self) -> list[dict[str, Any]]:
        """The deterministic summary rows, sorted by spec hash."""
        return [dict(record.summary) for record in self.records]


def union_records(records: Iterable[StoredOutcome]) -> MergeResult:
    """Union an iterable of records with duplicate/conflict handling.

    Same-content duplicates collapse to the first-seen record;
    disagreements raise.

    Raises:
        OutcomeStoreError: on a spec-hash collision or a conflicting
            duplicate (same spec, different summary).
    """
    merged: dict[str, StoredOutcome] = {}
    duplicates = 0
    total = 0
    for record in records:
        total += 1
        existing = merged.get(record.spec_hash)
        if existing is None:
            merged[record.spec_hash] = record
        elif existing.same_content(record):
            duplicates += 1
        else:
            raise OutcomeStoreError(_describe_mismatch(existing, record))
    ordered = [merged[key] for key in sorted(merged)]
    return MergeResult(records=ordered, duplicates=duplicates, sources=total)


def merge_stores(stores: Iterable[OutcomeStore]) -> MergeResult:
    """Union several stores' record sets (the ``protemp merge`` engine).

    Args:
        stores: the shard stores to union.

    Returns:
        A :class:`MergeResult`; write it into another store by ``put``-ing
        each record.

    Raises:
        OutcomeStoreError: on collisions or conflicting duplicates.
    """

    def _all() -> Iterator[StoredOutcome]:
        for store in stores:
            yield from store.records()

    return union_records(_all())
