"""Calibrated thermal package for the Niagara-8 evaluation platform.

The paper does not publish its RC coefficients; it cites HotSpot [17] and the
MPSoC thermal tool of [19].  We therefore calibrate our package parameters so
the *operating regime* of the paper's experiments is reproduced (shape, not
absolute numbers — see DESIGN.md):

1. All cores sustained at f_max must push core temperatures well above
   t_max = 100 C (the paper's No-TC case spends most of its time > 100 C;
   Figure 1 shows excursions to ~127 C from 45 C ambient).
2. Core thermal time constants must be a few hundred milliseconds: long
   enough that a 100 ms DFS window sees a partial transient (so the feasible
   frequency depends strongly on the starting temperature — Figure 9's
   declining curve), short enough that a core released at ~90 C can overshoot
   past 100 C within one window (Figure 1's Basic-DFS violations).
3. The feasible average frequency should fall from roughly 700-800 MHz at a
   27 C start to a few hundred MHz at a 97 C start (Figure 9), with the
   variable (per-core) assignment beating the uniform one.

`NIAGARA_THERMAL_CONFIG` pins the calibrated values;
:func:`calibration_report` recomputes the regime numbers so tests (and the
curious) can verify targets 1-2 directly.  Target 3 is checked end-to-end by
the Figure 9 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.thermal.constants import PAPER_DFS_PERIOD
from repro.thermal.rc import ThermalPackageConfig

#: Calibrated package parameters for the Niagara-8 platform.  Compared with
#: the raw defaults in `repro.thermal.constants` these choose the effective
#: vertical resistance and lumped capacitance; both were tuned against the
#: targets in the module docstring using `calibration_report`:
#:
#: * one-window rise from a uniform 90 C at full power: ~37 C, so a
#:   Basic-DFS core released just below the 90 C threshold peaks near 127 C —
#:   the Figure 1 peak;
#: * one-window cooldown from 110 C with idle cores: ~9 C, i.e. cooling is
#:   about 4x slower than heating (the asymmetry the paper uses to explain
#:   Basic-DFS's poor performance in section 5.2);
#: * single-window feasible average frequency declines from f_max at cool
#:   starts to ~480 MHz at a 97 C start.  (At starts below ~57 C one 100 ms
#:   window cannot consume the full thermal headroom at any frequency, so
#:   the curve saturates at f_max there; the paper's Figure 9 decline is
#:   reproduced over the 57-97 C range.)
NIAGARA_THERMAL_CONFIG = ThermalPackageConfig(
    vertical_resistance_per_area=8.5e-4,
    capacitance_scale=0.95,
    ambient=45.0,
)


@dataclass(frozen=True)
class CalibrationReport:
    """Key regime numbers for a platform (see module docstring).

    Attributes:
        steady_full_power: per-core steady-state temperature with every core
            busy at f_max (Celsius), floorplan core order.
        hottest_core: name of the hottest core at full power.
        core_time_constants: dominant thermal time constants (s).
        one_window_rise_from_90: temperature rise of the hottest core over
            one DFS window starting from a uniform 90 C at full power
            (Celsius) — the Basic-DFS overshoot scale.
        one_window_cooldown_from_110: temperature drop of the hottest core
            over one DFS window starting from a uniform 110 C with all cores
            shut down (Celsius) — the Basic-DFS recovery scale.
    """

    steady_full_power: np.ndarray
    hottest_core: str
    core_time_constants: np.ndarray
    one_window_rise_from_90: float
    one_window_cooldown_from_110: float


def calibration_report(platform) -> CalibrationReport:
    """Compute the calibration regime numbers for `platform`.

    Args:
        platform: a `repro.platform.Platform`.

    Returns:
        A :class:`CalibrationReport`.
    """
    thermal = platform.thermal
    power = platform.power
    core_idx = platform.core_indices

    p_full = power.max_node_power()
    steady = thermal.steady_state(p_full)
    steady_cores = steady[core_idx]
    hottest = platform.core_names[int(np.argmax(steady_cores))]

    taus = thermal.network.thermal_time_constants()

    m = int(round(PAPER_DFS_PERIOD / thermal.dt))
    traj_hot = thermal.simulate(90.0, p_full, m)
    rise = float(
        np.max(traj_hot[-1][core_idx]) - 90.0
    )

    idle_freqs = np.zeros(platform.n_cores)
    p_idle = power.node_power(idle_freqs)
    traj_cool = thermal.simulate(110.0, p_idle, m)
    drop = float(110.0 - np.max(traj_cool[-1][core_idx]))

    return CalibrationReport(
        steady_full_power=steady_cores,
        hottest_core=hottest,
        core_time_constants=taus[-4:],
        one_window_rise_from_90=rise,
        one_window_cooldown_from_110=drop,
    )


def format_report(report: CalibrationReport, core_names: list[str]) -> str:
    """Human-readable rendering of a :class:`CalibrationReport`."""
    lines = ["Thermal calibration report"]
    lines.append("  steady state, all cores at f_max:")
    for name, temp in zip(core_names, report.steady_full_power):
        lines.append(f"    {name}: {temp:7.1f} C")
    lines.append(f"  hottest core: {report.hottest_core}")
    taus = ", ".join(f"{t * 1e3:.0f} ms" for t in report.core_time_constants)
    lines.append(f"  slowest time constants: {taus}")
    lines.append(
        f"  one-window rise from 90 C at full power: "
        f"{report.one_window_rise_from_90:5.1f} C"
    )
    lines.append(
        f"  one-window cooldown from 110 C, cores idle: "
        f"{report.one_window_cooldown_from_110:5.1f} C"
    )
    return "\n".join(lines)
