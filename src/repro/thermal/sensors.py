"""Thermal sensor models.

The paper assumes "at least one thermal sensor for each core" read by a
centralized thermal management unit (section 3.1).  The experiments assume
ideal sensing; this module additionally provides a realistic sensor with
Gaussian noise, quantization and saturation so the control loop can be
stress-tested against imperfect measurements (an extension the paper's
guarantee implicitly depends on — the run-time lookup rounds the measured
maximum temperature *up* to the next table grid point, which absorbs bounded
sensor error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass
class IdealSensor:
    """Pass-through sensor: reads the true node temperatures."""

    def read(self, true_temps: np.ndarray) -> np.ndarray:
        """Return the true temperatures unchanged (copy)."""
        return np.asarray(true_temps, dtype=float).copy()

    def reset(self) -> None:
        """No state to reset (present for interface symmetry)."""


@dataclass
class NoisySensor:
    """Sensor with additive Gaussian noise, quantization and saturation.

    Attributes:
        noise_std: standard deviation of the additive noise (Celsius).
        quantization: reading granularity (Celsius); 0 disables quantization.
        min_reading: lower saturation bound (Celsius).
        max_reading: upper saturation bound (Celsius).
        seed: RNG seed for reproducible noise.
    """

    noise_std: float = 0.5
    quantization: float = 1.0
    min_reading: float = 0.0
    max_reading: float = 150.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise SimulationError("noise_std must be >= 0")
        if self.quantization < 0:
            raise SimulationError("quantization must be >= 0")
        if self.min_reading >= self.max_reading:
            raise SimulationError("min_reading must be < max_reading")
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> None:
        """Re-seed the noise stream.

        Without this, a sensor reused across simulation runs would carry
        RNG state from the previous run — the one remaining way two runs
        of an identical scenario could differ bit-for-bit.
        """
        self._rng = np.random.default_rng(self.seed)

    def read(self, true_temps: np.ndarray) -> np.ndarray:
        """Return noisy, quantized, saturated readings."""
        temps = np.asarray(true_temps, dtype=float)
        readings = temps + self._rng.normal(0.0, self.noise_std, temps.shape)
        if self.quantization > 0:
            readings = np.round(readings / self.quantization) * self.quantization
        return np.clip(readings, self.min_reading, self.max_reading)
