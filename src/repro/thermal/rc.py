"""RC thermal network construction from a floorplan.

This is the HotSpot-style compact model construction the paper relies on
(references [17] and [19]):

* every floorplan block becomes one thermal node with capacitance
  ``C_i = c_v * area_i * die_thickness * capacitance_scale``;
* every pair of adjacent blocks gets a lateral conductance
  ``G_ij = k_si * die_thickness * shared_edge / centre_distance``;
* every block gets a vertical conductance to the ambient node
  ``G_amb,i = area_i / r_vertical_per_area`` lumping spreader, sink and
  convection.

The continuous-time heat equation for the network is::

    C_i dT_i/dt = sum_j G_ij (T_j - T_i) + G_amb,i (T_amb - T_i) + p_i

which, discretized by explicit Euler at step ``dt`` (done in
`repro.thermal.model`), is exactly the paper's Eq. 1 with
``a_ij = dt G_ij / C_i`` and ``b_i = dt / C_i`` — plus the ambient neighbour
the paper leaves implicit (without it Eq. 1 has no heat removal and
temperature grows without bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.floorplan import Floorplan
from repro.thermal import constants


@dataclass(frozen=True)
class ThermalPackageConfig:
    """Material and package parameters for RC construction.

    Attributes:
        silicon_conductivity: lateral conduction coefficient (W/(m K)).
        volumetric_heat_capacity: silicon volumetric heat capacity
            (J/(m^3 K)).
        die_thickness: silicon die thickness (m).
        vertical_resistance_per_area: junction-to-ambient vertical
            resistance normalized per area (K m^2 / W).
        capacitance_scale: multiplier lumping package thermal mass into the
            die nodes (dimensionless, >= 1 in practice).
        ambient: ambient temperature (Celsius).
    """

    silicon_conductivity: float = constants.K_SILICON
    volumetric_heat_capacity: float = constants.VOL_HEAT_CAPACITY_SILICON
    die_thickness: float = constants.DIE_THICKNESS
    vertical_resistance_per_area: float = constants.R_VERTICAL_PER_AREA
    capacitance_scale: float = constants.CAPACITANCE_SCALE
    ambient: float = constants.AMBIENT_CELSIUS

    def __post_init__(self) -> None:
        positive = {
            "silicon_conductivity": self.silicon_conductivity,
            "volumetric_heat_capacity": self.volumetric_heat_capacity,
            "die_thickness": self.die_thickness,
            "vertical_resistance_per_area": self.vertical_resistance_per_area,
            "capacitance_scale": self.capacitance_scale,
        }
        for key, value in positive.items():
            if not value > 0:
                raise ThermalModelError(f"{key} must be positive, got {value}")


@dataclass
class RCNetwork:
    """A lumped RC thermal network.

    Attributes:
        node_names: one name per node, floorplan order.
        capacitance: per-node thermal capacitance (J/K), shape (n,).
        conductance: symmetric matrix of lateral conductances (W/K), shape
            (n, n), zero diagonal.
        ambient_conductance: per-node conductance to ambient (W/K), shape
            (n,).  May contain zeros for internal nodes of layered models.
        ambient: ambient temperature (Celsius).
    """

    node_names: list[str]
    capacitance: np.ndarray
    conductance: np.ndarray
    ambient_conductance: np.ndarray
    ambient: float

    def __post_init__(self) -> None:
        n = len(self.node_names)
        self.capacitance = np.asarray(self.capacitance, dtype=float)
        self.conductance = np.asarray(self.conductance, dtype=float)
        self.ambient_conductance = np.asarray(
            self.ambient_conductance, dtype=float
        )
        if self.capacitance.shape != (n,):
            raise ThermalModelError("capacitance must have shape (n,)")
        if self.conductance.shape != (n, n):
            raise ThermalModelError("conductance must have shape (n, n)")
        if self.ambient_conductance.shape != (n,):
            raise ThermalModelError("ambient_conductance must have shape (n,)")
        if np.any(self.capacitance <= 0):
            raise ThermalModelError("all capacitances must be positive")
        if np.any(self.conductance < 0) or np.any(self.ambient_conductance < 0):
            raise ThermalModelError("conductances must be non-negative")
        if not np.allclose(self.conductance, self.conductance.T):
            raise ThermalModelError("lateral conductance matrix must be symmetric")
        # protemp: allow[PT004] -- structural exact-zero check: the diagonal is zero by construction, not by arithmetic
        if np.any(np.diagonal(self.conductance) != 0.0):
            raise ThermalModelError("conductance diagonal must be zero")
        # protemp: allow[PT004] -- structural exact-zero check: detects a fully decoupled (all-literal-zero) ambient vector
        if np.all(self.ambient_conductance == 0.0):
            raise ThermalModelError(
                "at least one node must couple to ambient (no heat removal "
                "path otherwise)"
            )

    @property
    def n(self) -> int:
        """Number of thermal nodes."""
        return len(self.node_names)

    def index_of(self, name: str) -> int:
        """Index of the node called `name`."""
        try:
            return self.node_names.index(name)
        except ValueError:
            raise ThermalModelError(f"unknown thermal node {name!r}") from None

    def laplacian(self) -> np.ndarray:
        """Conduction Laplacian ``L`` with ambient coupling on the diagonal.

        ``L = diag(row_sums(G) + G_amb) - G``; the continuous dynamics are
        ``C dT/dt = -L T + G_amb * T_amb + p``.
        """
        degree = self.conductance.sum(axis=1) + self.ambient_conductance
        return np.diag(degree) - self.conductance

    def system_matrix(self) -> np.ndarray:
        """Continuous-time rate matrix ``M = C^-1 L`` (1/s)."""
        return self.laplacian() / self.capacitance[:, None]

    def thermal_time_constants(self) -> np.ndarray:
        """Time constants 1/eig(M), sorted ascending (s).

        Useful for choosing simulation steps and DFS window lengths.
        """
        eigvals = np.linalg.eigvalsh(_symmetrize(self))
        eigvals = eigvals[eigvals > 1e-12]
        return np.sort(1.0 / eigvals)


def _symmetrize(network: RCNetwork) -> np.ndarray:
    """Similarity-transformed symmetric form ``C^-1/2 L C^-1/2``.

    ``M = C^-1 L`` is similar to this symmetric positive semidefinite matrix,
    so M's eigenvalues are real and non-negative — the network is passive.
    """
    inv_sqrt_c = 1.0 / np.sqrt(network.capacitance)
    lap = network.laplacian()
    return inv_sqrt_c[:, None] * lap * inv_sqrt_c[None, :]


def build_rc_network(
    floorplan: Floorplan,
    config: ThermalPackageConfig | None = None,
) -> RCNetwork:
    """Build the single-layer compact RC network for a floorplan.

    Args:
        floorplan: validated block floorplan.
        config: material/package parameters (defaults are the calibrated
            Niagara values; see `repro.thermal.calibration`).

    Returns:
        An :class:`RCNetwork` whose node order matches the floorplan block
        order.
    """
    cfg = config or ThermalPackageConfig()
    n = len(floorplan)
    names = [b.name for b in floorplan.blocks]
    areas = np.array([b.area for b in floorplan.blocks])

    capacitance = (
        cfg.volumetric_heat_capacity
        * areas
        * cfg.die_thickness
        * cfg.capacitance_scale
    )

    conductance = np.zeros((n, n))
    for adj in floorplan.adjacencies:
        g = (
            cfg.silicon_conductivity
            * cfg.die_thickness
            * adj.shared_length
            / adj.center_distance
        )
        conductance[adj.first, adj.second] = g
        conductance[adj.second, adj.first] = g

    ambient_conductance = areas / cfg.vertical_resistance_per_area

    return RCNetwork(
        node_names=names,
        capacitance=capacitance,
        conductance=conductance,
        ambient_conductance=ambient_conductance,
        ambient=cfg.ambient,
    )
