"""Grid refinement of block floorplans (HotSpot's grid-mode analogue).

The compact model gives every floorplan block one thermal node.  HotSpot's
higher-fidelity mode subdivides the die into a regular grid; comparing the
two quantifies the spatial discretization error of the block model.  This
module provides the same capability:

* :func:`refine_floorplan` splits every block into cells no larger than a
  given pitch (block boundaries are preserved, so no cell spans two
  blocks);
* :class:`RefinedFloorplan` keeps the cell->parent-block mapping, splits
  block power vectors onto cells by area, and projects cell temperatures
  back to blocks (area-weighted mean or max).

The validation tests build both models for the Niagara-8 platform and check
that steady-state block temperatures agree and that the hot/cool core
partition is identical — the same check the paper performed against
HotSpot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FloorplanError
from repro.floorplan.floorplan import Block, Floorplan
from repro.floorplan.geometry import Rect
from repro.units import mm


@dataclass
class RefinedFloorplan:
    """A grid-refined view of a parent floorplan.

    Attributes:
        floorplan: the refined floorplan (one block per cell).
        parent: the original floorplan.
        parent_index: for each cell, the index of its parent block.
    """

    floorplan: Floorplan
    parent: Floorplan
    parent_index: np.ndarray

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return len(self.floorplan)

    def split_power(self, block_power: np.ndarray) -> np.ndarray:
        """Distribute per-block power onto cells proportionally to area."""
        block_power = np.asarray(block_power, dtype=float)
        if block_power.shape != (len(self.parent),):
            raise FloorplanError(
                f"block_power must have shape ({len(self.parent)},)"
            )
        cell_power = np.empty(self.n_cells)
        parent_areas = np.array([b.area for b in self.parent.blocks])
        for i, cell in enumerate(self.floorplan.blocks):
            parent = self.parent_index[i]
            share = cell.area / parent_areas[parent]
            cell_power[i] = block_power[parent] * share
        return cell_power

    def project(
        self, cell_values: np.ndarray, *, how: str = "mean"
    ) -> np.ndarray:
        """Project per-cell values back to parent blocks.

        Args:
            cell_values: shape (n_cells,) — e.g. temperatures.
            how: ``"mean"`` (area-weighted average) or ``"max"``.

        Returns:
            Per-parent-block values, shape (len(parent),).
        """
        cell_values = np.asarray(cell_values, dtype=float)
        if cell_values.shape != (self.n_cells,):
            raise FloorplanError(
                f"cell_values must have shape ({self.n_cells},)"
            )
        if how not in ("mean", "max"):
            raise FloorplanError(f"unknown projection {how!r}")
        out = np.zeros(len(self.parent))
        if how == "max":
            out[:] = -np.inf
            for i, value in enumerate(cell_values):
                parent = self.parent_index[i]
                out[parent] = max(out[parent], value)
            return out
        weight = np.zeros(len(self.parent))
        for i, value in enumerate(cell_values):
            parent = self.parent_index[i]
            area = self.floorplan.blocks[i].area
            out[parent] += value * area
            weight[parent] += area
        return out / weight


def refine_floorplan(
    floorplan: Floorplan, *, max_cell: float = mm(1.25)
) -> RefinedFloorplan:
    """Subdivide every block into cells no larger than `max_cell`.

    Cells inherit their parent's kind and are named
    ``"<parent>#<row>.<col>"``.  Each block is split independently, so cell
    boundaries align with block boundaries (heat-path topology preserved).

    Args:
        floorplan: the block floorplan to refine.
        max_cell: maximum cell edge length (m).

    Raises:
        FloorplanError: if `max_cell` is not positive.
    """
    if max_cell <= 0:
        raise FloorplanError("max_cell must be positive")
    cells: list[Block] = []
    parent_index: list[int] = []
    for b_idx, block in enumerate(floorplan.blocks):
        rect = block.rect
        n_cols = max(1, math.ceil(rect.width / max_cell - 1e-9))
        n_rows = max(1, math.ceil(rect.height / max_cell - 1e-9))
        cell_w = rect.width / n_cols
        cell_h = rect.height / n_rows
        for row in range(n_rows):
            for col in range(n_cols):
                cells.append(
                    Block(
                        name=f"{block.name}#{row}.{col}",
                        rect=Rect(
                            rect.x + col * cell_w,
                            rect.y + row * cell_h,
                            cell_w,
                            cell_h,
                        ),
                        kind=block.kind,
                    )
                )
                parent_index.append(b_idx)
    refined = Floorplan(cells, name=f"{floorplan.name}@{max_cell * 1e3:.2f}mm")
    return RefinedFloorplan(
        floorplan=refined,
        parent=floorplan,
        parent_index=np.array(parent_index, dtype=int),
    )
