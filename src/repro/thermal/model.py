"""Discrete-time thermal model (the paper's Eq. 1).

Explicit-Euler discretization of the RC network at a fixed step ``dt``::

    t_{k+1} = A t_k + B p_k + c

with ``A = I - dt C^-1 L``, ``B = dt C^-1`` (diagonal, stored as a vector)
and ``c = dt C^-1 G_amb t_amb``.  Expanded per node this is exactly Eq. 1 of
the paper::

    t_{k+1,i} = t_{k,i} + sum_{j in Adj_i} a_ij (t_{k,j} - t_{k,i}) + b_i p_i

with ``a_ij = dt G_ij / C_i``, ``b_i = dt / C_i``, and the ambient included
as an extra neighbour at fixed temperature (see `repro.thermal.rc`).

Two properties matter beyond simulation accuracy:

* **Stability** — explicit Euler requires ``dt`` below a threshold set by the
  fastest RC time constant; :meth:`ThermalModel.max_stable_dt` exposes it and
  the constructor enforces it (the paper reports needing 0.4 ms).
* **Monotonicity** — when all entries of ``A`` are non-negative, trajectories
  are monotone in the initial condition and in power.  This is what makes
  Pro-Temp's single-starting-temperature simplification sound (paper
  section 3.2): a table entry computed for start temperature ``t`` is safe
  for any start at-or-below ``t``.  :attr:`ThermalModel.is_monotone` checks
  it, and the Phase-1 generator asserts it.
"""

from __future__ import annotations

from functools import cached_property
from typing import Callable

import numpy as np

from repro.errors import StabilityError, ThermalModelError
from repro.thermal.constants import PAPER_TIME_STEP
from repro.thermal.rc import RCNetwork, _symmetrize

PowerInput = np.ndarray | Callable[[int], np.ndarray]


class ThermalModel:
    """Explicit-Euler discrete-time thermal model of an RC network.

    Args:
        network: the RC network to discretize.
        dt: time step in seconds (default: the paper's 0.4 ms).
        check_stability: refuse construction when ``dt`` exceeds the Euler
            stability limit (default True).

    Raises:
        StabilityError: when `check_stability` and `dt` is too large.
        ThermalModelError: on non-positive `dt`.
    """

    def __init__(
        self,
        network: RCNetwork,
        dt: float = PAPER_TIME_STEP,
        *,
        check_stability: bool = True,
    ) -> None:
        if dt <= 0:
            raise ThermalModelError(f"dt must be positive, got {dt}")
        self.network = network
        self.dt = float(dt)
        lap = network.laplacian()
        inv_c = 1.0 / network.capacitance
        self._a = np.eye(network.n) - self.dt * inv_c[:, None] * lap
        self._b = self.dt * inv_c
        self._c = (
            self.dt * inv_c * network.ambient_conductance * network.ambient
        )
        if check_stability and not self.is_stable:
            raise StabilityError(
                f"dt={dt:g}s exceeds the explicit-Euler stability limit "
                f"{self.max_stable_dt:g}s for this network"
            )

    # -- matrices ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of thermal nodes."""
        return self.network.n

    @property
    def a_matrix(self) -> np.ndarray:
        """State-transition matrix ``A`` (copy)."""
        return self._a.copy()

    @property
    def b_vector(self) -> np.ndarray:
        """Power-injection coefficients ``b_i = dt / C_i`` (copy)."""
        return self._b.copy()

    @property
    def c_vector(self) -> np.ndarray:
        """Constant ambient drive ``c_i`` (copy)."""
        return self._c.copy()

    def a_coefficient(self, i: int, j: int) -> float:
        """The paper's ``a_ij = dt G_ij / C_i`` for a neighbour pair."""
        if i == j:
            raise ThermalModelError("a_ij is defined for i != j")
        return self.dt * self.network.conductance[i, j] / self.network.capacitance[i]

    # -- numerical properties -----------------------------------------------

    @cached_property
    def max_stable_dt(self) -> float:
        """Largest explicit-Euler-stable step (s).

        Euler on ``dT/dt = -M T + ...`` is stable iff ``dt < 2 / lambda_max``
        where ``lambda_max`` is the largest eigenvalue of ``M`` (real and
        positive since the network is passive).

        Cached after the first access: the eigendecomposition depends only
        on the (immutable-by-convention) network, and this property is hit
        in the constructor's stability check and repeatedly from tests.
        """
        lam_max = float(np.linalg.eigvalsh(_symmetrize(self.network))[-1])
        if lam_max <= 0:
            return np.inf
        return 2.0 / lam_max

    @property
    def is_stable(self) -> bool:
        """True when the discretization step is below the stability limit."""
        return self.dt < self.max_stable_dt

    @cached_property
    def spectral_radius(self) -> float:
        """Spectral radius of ``A`` (< 1 for a stable discretization).

        Cached after the first access (full eigendecomposition of ``A``).
        """
        return float(np.max(np.abs(np.linalg.eigvals(self._a))))

    @property
    def is_monotone(self) -> bool:
        """True when ``A`` is elementwise non-negative.

        See the module docstring: this is the property backing Pro-Temp's
        max-temperature table simplification.
        """
        return bool(np.all(self._a >= -1e-15))

    # -- dynamics ------------------------------------------------------------

    def step(self, temps: np.ndarray, power: np.ndarray) -> np.ndarray:
        """One Euler step: ``t_{k+1} = A t_k + B p + c``.

        Args:
            temps: temperatures at step k, shape (n,), Celsius.
            power: per-node power during the step, shape (n,), watts.

        Returns:
            Temperatures at step k+1, shape (n,).
        """
        return self._a @ temps + self._b * power + self._c

    def simulate(
        self,
        t0: np.ndarray | float,
        power: PowerInput,
        n_steps: int,
        *,
        record_every: int = 1,
    ) -> np.ndarray:
        """Simulate `n_steps` Euler steps from `t0`.

        Args:
            t0: initial temperatures — scalar (uniform) or shape (n,).
            power: constant power vector (n,), a (n_steps, n) array of
                per-step powers, or a callable ``k -> power vector``.
            n_steps: number of steps to take (>= 0).
            record_every: keep every k-th state (plus the initial and final
                states) to bound memory for long runs.

        Returns:
            Array of recorded temperatures; row 0 is ``t0``, the last row is
            the state after `n_steps` steps.
        """
        if n_steps < 0:
            raise ThermalModelError("n_steps must be >= 0")
        if record_every < 1:
            raise ThermalModelError("record_every must be >= 1")
        temps = self._expand_t0(t0)
        if not callable(power):
            return self._simulate_array(temps, power, n_steps, record_every)
        get_power = self._power_getter(power, n_steps)
        recorded = [temps.copy()]
        for k in range(n_steps):
            temps = self.step(temps, get_power(k))
            if (k + 1) % record_every == 0 or k + 1 == n_steps:
                recorded.append(temps.copy())
        return np.array(recorded)

    def _simulate_array(
        self,
        temps: np.ndarray,
        power: np.ndarray,
        n_steps: int,
        record_every: int,
    ) -> np.ndarray:
        """Array-power fast path: preallocated output, hoisted drive terms.

        The recorded-row count is known up front, so the output is written
        in place instead of growing a Python list of copies; for a constant
        power vector the per-step drive ``B p + c`` is precomputed once.
        """
        power = np.asarray(power, dtype=float)
        constant = power.shape == (self.n,)
        if not constant and power.shape != (n_steps, self.n):
            raise ThermalModelError(
                f"power must have shape ({self.n},) or ({n_steps}, {self.n}), "
                f"or be a callable; got shape {power.shape}"
            )
        n_recorded = 1 + n_steps // record_every
        if n_steps % record_every != 0:
            n_recorded += 1  # the final state is always recorded
        out = np.empty((n_recorded, self.n))
        out[0] = temps
        drive = self._b * power + self._c if constant else None
        row = 1
        for k in range(n_steps):
            if constant:
                temps = self._a @ temps + drive
            else:
                temps = self._a @ temps + self._b * power[k] + self._c
            if (k + 1) % record_every == 0 or k + 1 == n_steps:
                out[row] = temps
                row += 1
        return out

    def steady_state(self, power: np.ndarray) -> np.ndarray:
        """Equilibrium temperatures for constant `power`.

        Solves ``L T = p + G_amb t_amb``.
        """
        power = np.asarray(power, dtype=float)
        if power.shape != (self.n,):
            raise ThermalModelError(f"power must have shape ({self.n},)")
        rhs = power + self.network.ambient_conductance * self.network.ambient
        return np.linalg.solve(self.network.laplacian(), rhs)

    # -- helpers ---------------------------------------------------------------

    def _expand_t0(self, t0: np.ndarray | float) -> np.ndarray:
        if np.isscalar(t0):
            return np.full(self.n, float(t0))
        arr = np.asarray(t0, dtype=float).copy()
        if arr.shape != (self.n,):
            raise ThermalModelError(f"t0 must be scalar or shape ({self.n},)")
        return arr

    def _power_getter(
        self, power: PowerInput, n_steps: int
    ) -> Callable[[int], np.ndarray]:
        if callable(power):
            return power
        arr = np.asarray(power, dtype=float)
        if arr.shape == (self.n,):
            return lambda _k: arr
        if arr.shape == (n_steps, self.n):
            return lambda k: arr[k]
        raise ThermalModelError(
            f"power must have shape ({self.n},) or ({n_steps}, {self.n}), "
            f"or be a callable; got shape {arr.shape}"
        )
