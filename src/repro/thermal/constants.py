"""Material and package constants for thermal RC construction.

Values follow the HotSpot compact-model literature (Skadron et al., TACO
2004 — reference [17] of the paper) and standard silicon/copper data.  The
package-level values (`R_VERTICAL_PER_AREA`, `CAPACITANCE_SCALE`) lump the
heat spreader, heat sink and convection into an effective per-area vertical
path; `repro.thermal.calibration` documents how they were tuned so the
Niagara-8 platform reproduces the paper's operating regime.
"""

from __future__ import annotations

from repro.units import mm

#: Thermal conductivity of silicon (W / (m K)).  HotSpot uses 100-150
#: depending on temperature; 130 is a common mid-range choice.
K_SILICON = 130.0

#: Volumetric heat capacity of silicon (J / (m^3 K)).
VOL_HEAT_CAPACITY_SILICON = 1.75e6

#: Thermal conductivity of copper (W / (m K)) — used by the layered
#: reference model's heat spreader.
K_COPPER = 400.0

#: Volumetric heat capacity of copper (J / (m^3 K)).
VOL_HEAT_CAPACITY_COPPER = 3.55e6

#: Die (active silicon) thickness (m).
DIE_THICKNESS = mm(0.5)

#: Effective junction-to-ambient vertical resistance, normalized per unit
#: area (K m^2 / W).  Dividing by a block's area gives that block's vertical
#: resistance to ambient.  For the default ~160 mm^2 Niagara die this works
#: out to ~0.9 K/W junction-to-ambient for the whole chip, a plausible
#: forced-convection package.
R_VERTICAL_PER_AREA = 1.4e-4

#: Multiplier applied to the bare-die thermal capacitance of every node to
#: lump in the thermal mass of the package layers that the single-layer
#: compact model does not represent explicitly.  Calibrated (see
#: `repro.thermal.calibration`) so core thermal time constants land near
#: 0.2-0.3 s, the regime in which the paper's 100 ms DFS window shows both a
#: meaningful transient and meaningful heat removal.
CAPACITANCE_SCALE = 2.0

#: Ambient (package/air) temperature in Celsius.  The paper's figures start
#: near 45 C, a typical in-chassis ambient.
AMBIENT_CELSIUS = 45.0

#: Thermal-model time step from the paper (section 4): "in order to achieve
#: numerical stability, the thermal equation had to be solved with a time
#: step of 0.4 ms".
PAPER_TIME_STEP = 0.4e-3

#: DFS application period from the paper (sections 3.1 and 4): 100 ms,
#: i.e. m = 250 thermal steps per DFS window.
PAPER_DFS_PERIOD = 100e-3
