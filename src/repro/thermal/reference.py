"""Reference thermal solutions used to validate the compact model.

The paper validates its simulator "using the thermal models from the Hotspot
simulator" (section 5).  We reproduce that validation step in two ways:

* :func:`exact_trajectory` integrates the continuous RC dynamics exactly with
  a matrix exponential (`scipy.linalg.expm`), giving a discretization-free
  reference for the explicit-Euler model.
* :func:`build_layered_network` constructs a HotSpot-style multi-layer
  package model — per-block die nodes, per-block copper heat-spreader nodes,
  and a single heat-sink node — whose die-node step responses the compact
  single-layer model is checked against (same topology philosophy as
  HotSpot's die/spreader/sink stack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.errors import ThermalModelError
from repro.floorplan.floorplan import Floorplan
from repro.thermal import constants
from repro.thermal.rc import RCNetwork, ThermalPackageConfig
from repro.units import mm


def exact_trajectory(
    network: RCNetwork,
    t0: np.ndarray,
    power: np.ndarray,
    times: np.ndarray,
) -> np.ndarray:
    """Exact continuous-time solution at the requested times.

    Solves ``C dT/dt = -L T + G_amb t_amb + p`` in closed form:
    ``T(t) = T_ss + expm(-M t) (T(0) - T_ss)``.

    Args:
        network: RC network.
        t0: initial temperatures, shape (n,).
        power: constant power vector, shape (n,).
        times: evaluation times in seconds, shape (k,).

    Returns:
        Temperatures, shape (k, n).
    """
    t0 = np.asarray(t0, dtype=float)
    power = np.asarray(power, dtype=float)
    if t0.shape != (network.n,) or power.shape != (network.n,):
        raise ThermalModelError("t0 and power must have shape (n,)")
    lap = network.laplacian()
    rhs = power + network.ambient_conductance * network.ambient
    t_ss = np.linalg.solve(lap, rhs)
    m_matrix = lap / network.capacitance[:, None]
    out = np.empty((len(times), network.n))
    for i, t in enumerate(np.asarray(times, dtype=float)):
        out[i] = t_ss + expm(-m_matrix * t) @ (t0 - t_ss)
    return out


@dataclass(frozen=True)
class LayeredPackageConfig:
    """Parameters of the layered (die + spreader + sink) reference model.

    Attributes:
        spreader_thickness: copper spreader thickness (m).
        sink_thickness: effective sink base thickness (m).
        die_to_spreader_resistance_per_area: interface material resistance,
            per area (K m^2 / W).
        spreader_to_sink_resistance_per_area: spreader-sink interface, per
            area (K m^2 / W).
        sink_to_ambient_resistance: lumped convection resistance (K/W).
        sink_area_factor: sink footprint as a multiple of the die area.
    """

    spreader_thickness: float = mm(1.0)
    sink_thickness: float = mm(5.0)
    die_to_spreader_resistance_per_area: float = 2.0e-5
    spreader_to_sink_resistance_per_area: float = 2.0e-5
    sink_to_ambient_resistance: float = 0.6
    sink_area_factor: float = 4.0


def build_layered_network(
    floorplan: Floorplan,
    die_config: ThermalPackageConfig | None = None,
    package: LayeredPackageConfig | None = None,
) -> RCNetwork:
    """Build a three-layer package model over a floorplan.

    Node layout: the first ``len(floorplan)`` nodes are die blocks in
    floorplan order (names unchanged), followed by one spreader node per
    block (``SP_<name>``) and a single ``SINK`` node.  Only the sink couples
    to ambient, so all heat flows die -> spreader -> sink -> ambient plus
    lateral conduction inside the die and spreader layers — the HotSpot
    stack.

    Args:
        floorplan: block floorplan.
        die_config: die material parameters; `capacitance_scale` is ignored
            (package mass is explicit here) and `vertical_resistance_per_area`
            is replaced by the layered path.
        package: layered package parameters.

    Returns:
        An :class:`RCNetwork` with ``2 n + 1`` nodes.
    """
    die = die_config or ThermalPackageConfig()
    pkg = package or LayeredPackageConfig()
    n = len(floorplan)
    areas = np.array([b.area for b in floorplan.blocks])
    total = 2 * n + 1
    sink_index = 2 * n

    names = [b.name for b in floorplan.blocks]
    names += [f"SP_{b.name}" for b in floorplan.blocks]
    names.append("SINK")

    capacitance = np.empty(total)
    capacitance[:n] = die.volumetric_heat_capacity * areas * die.die_thickness
    capacitance[n : 2 * n] = (
        constants.VOL_HEAT_CAPACITY_COPPER * areas * pkg.spreader_thickness
    )
    die_area = areas.sum()
    capacitance[sink_index] = (
        constants.VOL_HEAT_CAPACITY_COPPER
        * die_area
        * pkg.sink_area_factor
        * pkg.sink_thickness
    )

    conductance = np.zeros((total, total))
    # Lateral conduction inside the die and spreader layers.
    for adj in floorplan.adjacencies:
        g_die = (
            die.silicon_conductivity
            * die.die_thickness
            * adj.shared_length
            / adj.center_distance
        )
        g_sp = (
            constants.K_COPPER
            * pkg.spreader_thickness
            * adj.shared_length
            / adj.center_distance
        )
        i, j = adj.first, adj.second
        conductance[i, j] = conductance[j, i] = g_die
        conductance[n + i, n + j] = conductance[n + j, n + i] = g_sp
    # Vertical die -> spreader and spreader -> sink paths.
    for i in range(n):
        g_ds = areas[i] / pkg.die_to_spreader_resistance_per_area
        g_ss = areas[i] / pkg.spreader_to_sink_resistance_per_area
        conductance[i, n + i] = conductance[n + i, i] = g_ds
        conductance[n + i, sink_index] = conductance[sink_index, n + i] = g_ss

    ambient_conductance = np.zeros(total)
    ambient_conductance[sink_index] = 1.0 / pkg.sink_to_ambient_resistance

    return RCNetwork(
        node_names=names,
        capacitance=capacitance,
        conductance=conductance,
        ambient_conductance=ambient_conductance,
        ambient=die.ambient,
    )
