"""Thermal RC modeling: network construction, simulation, validation."""

from repro.thermal.calibration import (
    NIAGARA_THERMAL_CONFIG,
    CalibrationReport,
    calibration_report,
)
from repro.thermal.constants import (
    AMBIENT_CELSIUS,
    PAPER_DFS_PERIOD,
    PAPER_TIME_STEP,
)
from repro.thermal.grid import RefinedFloorplan, refine_floorplan
from repro.thermal.model import ThermalModel
from repro.thermal.rc import (
    RCNetwork,
    ThermalPackageConfig,
    build_rc_network,
)
from repro.thermal.reference import (
    LayeredPackageConfig,
    build_layered_network,
    exact_trajectory,
)
from repro.thermal.sensors import IdealSensor, NoisySensor

__all__ = [
    "AMBIENT_CELSIUS",
    "PAPER_DFS_PERIOD",
    "PAPER_TIME_STEP",
    "NIAGARA_THERMAL_CONFIG",
    "CalibrationReport",
    "IdealSensor",
    "LayeredPackageConfig",
    "NoisySensor",
    "RCNetwork",
    "RefinedFloorplan",
    "ThermalModel",
    "ThermalPackageConfig",
    "build_layered_network",
    "build_rc_network",
    "calibration_report",
    "exact_trajectory",
    "refine_floorplan",
]
