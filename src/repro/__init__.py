"""Pro-Temp reproduction: convex-optimization thermal control of multi-cores.

Reproduction of Murali et al., "Temperature Control of High-Performance
Multi-core Platforms Using Convex Optimization" (DATE 2008).

Top-level convenience exports cover the common workflow:

>>> from repro import Platform
>>> platform = Platform.niagara8()

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.platform import Platform

__version__ = "1.0.0"

__all__ = ["Platform", "__version__"]
