"""Pro-Temp reproduction: convex-optimization thermal control of multi-cores.

Reproduction of Murali et al., "Temperature Control of High-Performance
Multi-core Platforms Using Convex Optimization" (DATE 2008).

Top-level convenience exports cover the common workflow — declare
scenarios, run them:

>>> from repro import ScenarioRunner, ScenarioSpec
>>> outcomes = ScenarioRunner().run_many(
...     ScenarioSpec.grid(policy=["basic-dfs", "protemp"], seed=range(4))
... )

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.platform import Platform
from repro.scenario import (
    PlatformSpec,
    PolicySpec,
    ScenarioOutcome,
    ScenarioRunner,
    ScenarioSpec,
    SensorSpec,
    WorkloadSpec,
)

__version__ = "1.2.0"

__all__ = [
    "Platform",
    "PlatformSpec",
    "PolicySpec",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "SensorSpec",
    "WorkloadSpec",
    "__version__",
]
