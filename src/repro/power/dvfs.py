"""Voltage/frequency scaling relations (the paper's Eq. 2).

The paper assumes "the square of the voltage scales linearly with the
frequency of operation" [23], so dynamic power ``P = C V^2 f`` becomes
quadratic in frequency::

    p(f) = p_max * (f / f_max)^2                       (Eq. 2)

:class:`QuadraticScaling` implements that law and its inverse;
:class:`FrequencyLadder` models the discrete frequency points hardware
actually supports (and that the Phase-1 table is indexed by).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError


@dataclass(frozen=True)
class QuadraticScaling:
    """Quadratic frequency-to-power scaling for one core.

    Attributes:
        f_max: maximum operating frequency (Hz).
        p_max: power at `f_max` (W).
    """

    f_max: float
    p_max: float

    def __post_init__(self) -> None:
        if self.f_max <= 0 or self.p_max <= 0:
            raise PowerModelError("f_max and p_max must be positive")

    def power(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Power at `frequency` (Eq. 2).  Accepts scalars or arrays."""
        freq = np.asarray(frequency, dtype=float)
        if np.any(freq < 0) or np.any(freq > self.f_max * (1 + 1e-9)):
            raise PowerModelError(
                f"frequency must lie in [0, f_max={self.f_max:g}]"
            )
        result = self.p_max * (freq / self.f_max) ** 2
        return float(result) if np.isscalar(frequency) else result

    def frequency_for_power(
        self, power: float | np.ndarray
    ) -> float | np.ndarray:
        """Inverse of :meth:`power`: ``f = f_max sqrt(p / p_max)``."""
        p = np.asarray(power, dtype=float)
        if np.any(p < 0) or np.any(p > self.p_max * (1 + 1e-9)):
            raise PowerModelError(
                f"power must lie in [0, p_max={self.p_max:g}]"
            )
        result = self.f_max * np.sqrt(np.clip(p, 0.0, self.p_max) / self.p_max)
        return float(result) if np.isscalar(power) else result

    def voltage_ratio(self, frequency: float) -> float:
        """``V(f) / V(f_max)`` under the paper's ``V^2 ∝ f`` assumption."""
        if not 0 <= frequency <= self.f_max * (1 + 1e-9):
            raise PowerModelError("frequency out of range")
        return float(np.sqrt(frequency / self.f_max))


@dataclass(frozen=True)
class FrequencyLadder:
    """A sorted set of discrete operating frequencies (Hz).

    Attributes:
        levels: allowed frequencies, strictly increasing, all positive.
    """

    levels: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise PowerModelError("a frequency ladder needs at least one level")
        if any(f <= 0 for f in self.levels):
            raise PowerModelError("all frequency levels must be positive")
        if any(
            b <= a for a, b in zip(self.levels, self.levels[1:])
        ):
            raise PowerModelError("levels must be strictly increasing")

    @classmethod
    def linear(cls, f_min: float, f_max: float, n_levels: int) -> "FrequencyLadder":
        """Evenly spaced ladder from `f_min` to `f_max` inclusive."""
        if n_levels < 1:
            raise PowerModelError("n_levels must be >= 1")
        if n_levels == 1:
            return cls(levels=(float(f_max),))
        if not 0 < f_min < f_max:
            raise PowerModelError("need 0 < f_min < f_max")
        return cls(levels=tuple(np.linspace(f_min, f_max, n_levels)))

    @property
    def f_max(self) -> float:
        """Highest level."""
        return self.levels[-1]

    @property
    def f_min(self) -> float:
        """Lowest level."""
        return self.levels[0]

    def floor(self, frequency: float) -> float:
        """Largest level <= `frequency`, or the lowest level if none is."""
        idx = bisect.bisect_right(self.levels, frequency * (1 + 1e-12)) - 1
        return self.levels[max(idx, 0)]

    def ceil(self, frequency: float) -> float:
        """Smallest level >= `frequency`, or the highest level if none is."""
        idx = bisect.bisect_left(self.levels, frequency * (1 - 1e-12))
        return self.levels[min(idx, len(self.levels) - 1)]

    def lower_neighbor(self, frequency: float) -> float | None:
        """Largest level strictly below `frequency`, or None.

        This is the paper's run-time fallback ("the unit chooses the next
        lower frequency point in the table", section 3.3).
        """
        idx = bisect.bisect_left(self.levels, frequency * (1 - 1e-12)) - 1
        if idx < 0:
            return None
        return self.levels[idx]
