"""Platform power model: core frequencies -> per-node power injection.

The paper's platform facts (section 5): each of the 8 Niagara cores burns
4 W at its 1 GHz maximum, and "the power consumption of the other cores on
the system is around 30% of the power consumption of the processing cores".

This module maps a vector of core frequencies (plus busy/idle state) to the
power injected into every thermal node:

* busy core i:  ``p_i = p_max (f_i / f_max)^2``  (Eq. 2),
* idle core i:  ``idle_fraction * p_i`` (clock/static floor),
* non-core blocks: ``other_power_ratio`` times the instantaneous total core
  power, distributed over the non-core blocks proportionally to area.

Crucially, the mapping is **affine in the core power vector**, so the convex
optimizer can account for non-core heating exactly: see
:meth:`PlatformPowerModel.injection_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.floorplan.floorplan import Floorplan
from repro.power.dvfs import QuadraticScaling
from repro.power.leakage import LeakageModel
from repro.units import ghz


@dataclass
class PlatformPowerModel:
    """Power model for a multi-core floorplan.

    Attributes:
        floorplan: the platform floorplan (defines node order).
        scaling: per-core frequency-to-power law (shared by all cores,
            as on Niagara where all cores are identical).
        other_power_ratio: non-core aggregate power as a fraction of the
            instantaneous aggregate core power (paper: ~0.3).
        idle_fraction: fraction of the frequency-determined power a core
            burns while idle at that frequency setting.
        leakage: optional temperature-dependent leakage added *per core
            node* by the simulator (extension; None disables it).
    """

    floorplan: Floorplan
    scaling: QuadraticScaling = field(
        default_factory=lambda: QuadraticScaling(f_max=ghz(1.0), p_max=4.0)
    )
    other_power_ratio: float = 0.3
    idle_fraction: float = 0.1
    leakage: LeakageModel | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.other_power_ratio:
            raise PowerModelError("other_power_ratio must be >= 0")
        if not 0 <= self.idle_fraction <= 1:
            raise PowerModelError("idle_fraction must lie in [0, 1]")
        if self.floorplan.n_cores == 0:
            raise PowerModelError("floorplan has no CORE blocks")
        self._core_indices = np.array(self.floorplan.core_indices)
        noncore = [
            i
            for i in range(len(self.floorplan))
            if i not in set(self.floorplan.core_indices)
        ]
        self._noncore_indices = np.array(noncore, dtype=int)
        if len(noncore) > 0:
            areas = np.array(
                [self.floorplan.blocks[i].area for i in noncore]
            )
            self._noncore_share = areas / areas.sum()
        else:
            self._noncore_share = np.zeros(0)

    # -- sizes -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of thermal nodes (floorplan blocks)."""
        return len(self.floorplan)

    @property
    def n_cores(self) -> int:
        """Number of controllable cores."""
        return len(self._core_indices)

    @property
    def f_max(self) -> float:
        """Core maximum frequency (Hz)."""
        return self.scaling.f_max

    @property
    def p_max(self) -> float:
        """Core power at `f_max` (W)."""
        return self.scaling.p_max

    # -- power evaluation ---------------------------------------------------

    def core_power(
        self,
        frequencies: np.ndarray,
        busy: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-core power for the given frequencies.

        Args:
            frequencies: shape (n_cores,), Hz.
            busy: optional boolean mask, shape (n_cores,); idle cores burn
                `idle_fraction` of the frequency-determined power.  None
                means all busy.

        Returns:
            Core power vector, shape (n_cores,), W.
        """
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.shape != (self.n_cores,):
            raise PowerModelError(
                f"frequencies must have shape ({self.n_cores},)"
            )
        power = np.asarray(self.scaling.power(freqs), dtype=float)
        if busy is not None:
            busy = np.asarray(busy, dtype=bool)
            if busy.shape != (self.n_cores,):
                raise PowerModelError(f"busy must have shape ({self.n_cores},)")
            power = np.where(busy, power, self.idle_fraction * power)
        return power

    def node_power_from_core_power(self, core_power: np.ndarray) -> np.ndarray:
        """Distribute core powers onto all thermal nodes.

        Non-core blocks receive ``other_power_ratio * sum(core_power)``
        split by area.

        Args:
            core_power: shape (n_cores,), W.

        Returns:
            Node power vector, shape (n_nodes,), W.
        """
        core_power = np.asarray(core_power, dtype=float)
        if core_power.shape != (self.n_cores,):
            raise PowerModelError(
                f"core_power must have shape ({self.n_cores},)"
            )
        node_power = np.zeros(self.n_nodes)
        node_power[self._core_indices] = core_power
        if len(self._noncore_indices) > 0:
            total_other = self.other_power_ratio * core_power.sum()
            node_power[self._noncore_indices] = (
                total_other * self._noncore_share
            )
        return node_power

    def node_power(
        self,
        frequencies: np.ndarray,
        busy: np.ndarray | None = None,
        temperatures: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full node power vector for given core frequencies.

        Args:
            frequencies: per-core frequencies, shape (n_cores,).
            busy: optional busy mask (see :meth:`core_power`).
            temperatures: optional per-node temperatures; when the model has
                a leakage component, core nodes additionally burn
                ``leakage.power(T)``.

        Returns:
            Node power vector, shape (n_nodes,), W.
        """
        node_power = self.node_power_from_core_power(
            self.core_power(frequencies, busy)
        )
        if self.leakage is not None and temperatures is not None:
            temps = np.asarray(temperatures, dtype=float)
            if temps.shape != (self.n_nodes,):
                raise PowerModelError(
                    f"temperatures must have shape ({self.n_nodes},)"
                )
            node_power[self._core_indices] += self.leakage.power(
                temps[self._core_indices]
            )
        return node_power

    # -- affine structure for the optimizer -----------------------------------

    def injection_matrix(self) -> np.ndarray:
        """Matrix ``E`` with ``node_power = E @ core_power``.

        Shape (n_nodes, n_cores).  Core rows are unit vectors; each non-core
        row is ``other_power_ratio * area_share * 1^T``.  The Pro-Temp
        formulation composes this with the thermal response so the
        optimization accounts for non-core heating exactly (it stays linear
        in the core power variables).
        """
        e = np.zeros((self.n_nodes, self.n_cores))
        for col, node in enumerate(self._core_indices):
            e[node, col] = 1.0
        for row, node in enumerate(self._noncore_indices):
            e[node, :] = self.other_power_ratio * self._noncore_share[row]
        return e

    def max_node_power(self) -> np.ndarray:
        """Node power when every core runs busy at `f_max` (worst case)."""
        freqs = np.full(self.n_cores, self.f_max)
        return self.node_power(freqs)
