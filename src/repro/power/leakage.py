"""Temperature-dependent leakage power (extension beyond the paper).

The paper's convex program treats core power as purely frequency-determined
(Eq. 2).  Real silicon adds leakage that grows with temperature, which is a
positive feedback the guarantee should be robust to.  This module provides an
exponential leakage model (the usual sub-threshold fit, cf. reference [18] of
the paper) and a conservative linearized bound.  The simulator can enable it
to stress-test Pro-Temp tables generated with a leakage margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError


@dataclass(frozen=True)
class LeakageModel:
    """Exponential temperature-dependent leakage.

    ``p_leak(T) = p_ref * exp(alpha * (T - t_ref))``

    Attributes:
        p_ref: leakage at the reference temperature (W).
        alpha: exponential temperature coefficient (1/K); 0.01-0.02 is a
            typical sub-threshold slope at 90 nm.
        t_ref: reference temperature (Celsius).
    """

    p_ref: float
    alpha: float = 0.012
    t_ref: float = 60.0

    def __post_init__(self) -> None:
        if self.p_ref < 0:
            raise PowerModelError("p_ref must be >= 0")
        if self.alpha < 0:
            raise PowerModelError("alpha must be >= 0")

    def power(self, temperature: float | np.ndarray) -> float | np.ndarray:
        """Leakage power at `temperature`.

        The exponent is clamped (at +50, i.e. astronomically beyond any
        physical temperature) so that a simulated thermal runaway — which
        this model *can* produce when its feedback slope exceeds the
        package's heat-removal conductance — saturates instead of
        overflowing to infinity.
        """
        temps = np.asarray(temperature, dtype=float)
        exponent = np.minimum(self.alpha * (temps - self.t_ref), 50.0)
        result = self.p_ref * np.exp(exponent)
        return float(result) if np.isscalar(temperature) else result

    def linear_bound(self, t_low: float, t_high: float) -> tuple[float, float]:
        """Chord coefficients ``(c0, c1)`` with ``c0 + c1 T >= p_leak(T)``
        on ``[t_low, t_high]``.

        Because exp is convex, the chord through the interval endpoints upper
        bounds it on the interval — usable as a conservative linear leakage
        term inside the (linear-in-power) Pro-Temp formulation.
        """
        if t_low >= t_high:
            raise PowerModelError("need t_low < t_high")
        p_low = float(self.power(t_low))
        p_high = float(self.power(t_high))
        c1 = (p_high - p_low) / (t_high - t_low)
        c0 = p_low - c1 * t_low
        return c0, c1
