"""Power and DVFS models."""

from repro.power.dvfs import FrequencyLadder, QuadraticScaling
from repro.power.leakage import LeakageModel
from repro.power.model import PlatformPowerModel

__all__ = [
    "FrequencyLadder",
    "LeakageModel",
    "PlatformPowerModel",
    "QuadraticScaling",
]
