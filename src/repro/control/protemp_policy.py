"""Pro-Temp run-time policy: table lookup at every DFS boundary (Phase 2).

Paper section 3.3: at each DFS application the thermal management unit takes
the maximum core temperature and the required average frequency, and picks
the pre-computed assignment from the Phase-1 table, backing off to the next
lower feasible frequency column when necessary.

The safety argument for using only the *maximum* temperature: the table row
was solved for a uniform start at the grid temperature ``t_row >= max core
temp >= every node temp``, and the thermal step matrix is elementwise
non-negative, so the true trajectory is dominated by the table's worst-case
trajectory — which the optimizer constrained below ``t_max``.
"""

from __future__ import annotations

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.core.table import FrequencyTable, LookupResult


class ProTempPolicy(DFSPolicy):
    """Table-driven proactive DVFS (the paper's contribution).

    Args:
        table: Phase-1 frequency table.
        name: display name override.
    """

    name = "Pro-Temp"

    def __init__(self, table: FrequencyTable, name: str | None = None) -> None:
        self.table = table
        if name is not None:
            self.name = name
        self.last_lookup: LookupResult | None = None
        self.lookups = 0
        self.shutdown_windows = 0
        self.backoff_windows = 0

    def reset(self) -> None:
        self.last_lookup = None
        self.lookups = 0
        self.shutdown_windows = 0
        self.backoff_windows = 0

    def frequencies(self, context: ControlContext) -> np.ndarray:
        t_hot = float(np.max(context.core_temperatures))
        result = self.table.lookup(t_hot, context.required_frequency)
        self.last_lookup = result
        self.lookups += 1
        if result.shutdown:
            self.shutdown_windows += 1
        elif result.satisfied_target < context.required_frequency - 1e-6:
            self.backoff_windows += 1
        return result.frequencies.copy()
