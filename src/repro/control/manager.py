"""Thermal management unit: sensing + demand estimation + policy.

Paper section 3.3: "In each time period, the utilization of the different
processors is tracked by the thermal management unit.  The unit also
monitors the workload of the tasks waiting in the task queue ...  Based on
these information, the required average operating frequency across all the
processors for the next period is calculated."

The demand estimate implemented by :func:`required_average_frequency` is the
frequency at which the currently known backlog (remaining work on the cores
plus everything queued) would complete within exactly one DFS window; it is
capped at ``f_max``.  The TMU feeds that estimate plus the sensor readings
to its policy at every window boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.errors import SimulationError
from repro.thermal.sensors import IdealSensor, NoisySensor


def required_average_frequency(
    backlog_seconds: float,
    parallelism: int,
    window: float,
    f_max: float,
) -> float:
    """Average frequency needed to drain `backlog_seconds` in one window.

    Args:
        backlog_seconds: total remaining work, expressed in seconds of
            execution at `f_max` (the paper's definition of workload).
        parallelism: number of cores that can actually share the work —
            ``min(n_cores, runnable tasks)``.  Using the raw core count here
            would under-estimate demand whenever fewer tasks than cores are
            runnable (a lone 5 ms task on 8 cores would be asked to run at
            f/8 and never finish within a window).
        window: DFS period (s).
        f_max: maximum core frequency (Hz).

    Returns:
        The capped requirement
        ``min(f_max, backlog * f_max / (parallelism * window))``.
    """
    if backlog_seconds < 0:
        raise SimulationError("backlog_seconds must be >= 0")
    if parallelism < 1 or window <= 0 or f_max <= 0:
        raise SimulationError("parallelism, window, f_max must be positive")
    return min(f_max, backlog_seconds * f_max / (parallelism * window))


@dataclass
class ThermalManagementUnit:
    """Centralized controller invoked at each DFS boundary.

    Attributes:
        policy: the frequency policy to consult.
        f_max: platform maximum frequency (Hz).
        t_max: maximum allowed temperature (Celsius).
        window: DFS period (s).
        sensor: temperature sensor model (ideal by default).
    """

    policy: DFSPolicy
    f_max: float
    t_max: float
    window: float
    sensor: IdealSensor | NoisySensor = field(default_factory=IdealSensor)

    def reset(self) -> None:
        """Reset policy and sensor state before a fresh run.

        Resetting the sensor re-seeds its noise stream, so back-to-back
        runs through the same TMU reproduce bit-identically.
        """
        self.policy.reset()
        self.sensor.reset()

    def decide(
        self,
        window_index: int,
        time: float,
        core_temperatures: np.ndarray,
        backlog_seconds: float,
        runnable_tasks: int | None = None,
    ) -> np.ndarray:
        """Frequencies for the coming window.

        Args:
            window_index: 0-based index of the window about to start.
            time: simulation time (s).
            core_temperatures: true core temperatures (the TMU reads them
                through its sensor model).
            backlog_seconds: current backlog in seconds-at-f_max.
            runnable_tasks: running + queued task count, used to bound the
                achievable parallelism; None assumes full parallelism.

        Returns:
            Per-core frequencies (Hz), clipped to ``[0, f_max]``.
        """
        readings = self.sensor.read(core_temperatures)
        n_cores = len(core_temperatures)
        if runnable_tasks is None:
            parallelism = n_cores
        else:
            parallelism = max(1, min(n_cores, runnable_tasks))
        f_req = required_average_frequency(
            backlog_seconds, parallelism, self.window, self.f_max
        )
        context = ControlContext(
            window_index=window_index,
            time=time,
            core_temperatures=readings,
            required_frequency=f_req,
            f_max=self.f_max,
            t_max=self.t_max,
        )
        freqs = np.asarray(self.policy.frequencies(context), dtype=float)
        if freqs.shape != core_temperatures.shape:
            raise SimulationError(
                f"policy {self.policy.name!r} returned {freqs.shape}, "
                f"expected {core_temperatures.shape}"
            )
        return np.clip(freqs, 0.0, self.f_max)
