"""Basic-DFS: the reactive threshold policy the paper compares against.

Section 5.2: "the frequencies of the cores are matched to the application
performance levels.  The temperature control [is] performed when a core
reaches a threshold temperature level.  In this case, the core shuts down
for the time-period until the next DFS is applied."

Semantics implemented here (and their Figure 1 consequence):

* at each DFS boundary every core whose sensor reads at or above
  ``threshold`` (90 C in the paper) is shut down (frequency 0) for the whole
  coming window;
* all other cores run at the workload-required frequency;
* between boundaries nothing reacts, so a core that was just below the
  threshold at the boundary can heat far beyond ``t_max`` before the next
  check — exactly the violations in Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.errors import SimulationError


class BasicDFSPolicy(DFSPolicy):
    """Reactive threshold-shutdown DFS.

    Args:
        threshold: shutdown threshold (Celsius); the paper uses 90 with
            ``t_max`` 100.
        resume_threshold: optional lower threshold a shut core must cool to
            before it may run again (hysteresis).  The paper's description
            re-checks the single threshold each window, which is the
            default (``None`` = same as `threshold`).
    """

    name = "Basic-DFS"

    def __init__(
        self, threshold: float = 90.0, resume_threshold: float | None = None
    ) -> None:
        if resume_threshold is not None and resume_threshold > threshold:
            raise SimulationError(
                "resume_threshold must not exceed threshold"
            )
        self.threshold = float(threshold)
        self.resume_threshold = (
            float(resume_threshold) if resume_threshold is not None else None
        )
        self._shut = None  # lazily sized boolean mask

    def reset(self) -> None:
        self._shut = None

    def frequencies(self, context: ControlContext) -> np.ndarray:
        temps = context.core_temperatures
        n = len(temps)
        if self._shut is None or len(self._shut) != n:
            self._shut = np.zeros(n, dtype=bool)

        if self.resume_threshold is None:
            self._shut = temps >= self.threshold
        else:
            # Hysteresis: trip at `threshold`, release at `resume_threshold`.
            self._shut = np.where(
                self._shut,
                temps > self.resume_threshold,
                temps >= self.threshold,
            )

        freqs = np.full(n, context.required_frequency)
        freqs[self._shut] = 0.0
        return freqs
