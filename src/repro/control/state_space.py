"""State-space thermal controller with an observer (Bhat et al. baseline).

Bhat et al. (arXiv:2003.11081) control processor power and temperature
with discrete linear state feedback on the thermal-model state.  This
module instantiates that idea on the repo's calibrated RC model: the
policy owns the platform's exact window-aggregated dynamics and solves,
once per DFS window, for the core power vector that lands the predicted
core temperatures on the setpoint at the *next* window boundary.

With per-step dynamics ``t_{k+1} = A t_k + B p + c`` (`repro.thermal.model`)
and ``m`` thermal steps per DFS window, holding the node power ``p`` fixed
over a window gives the window-scale model::

    x(w+1) = A_w x(w) + S (B p + c),   A_w = A^m,  S = sum_{i<m} A^i

Node power is affine in core power (``p = M p_core``, the power model's
injection matrix), so the core-row block ``G = (S B M)[cores]`` maps core
power directly to next-boundary core temperatures.  The feedback law is
deadbeat on the window scale: solve ``G p_core = setpoint - free-response``
and clip into the actuator range ``[0, p_max]``; frequency follows from
inverting Eq. 2.

Only core temperatures are measured, so the full node state is maintained
by a Luenberger-style observer: predict with the window model driven by
the last commanded power, then correct the core entries toward the sensor
readings with gain ``observer_gain`` (1.0 = trust the sensors outright).
"""

from __future__ import annotations

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.errors import SimulationError
from repro.platform import Platform
from repro.thermal.constants import PAPER_DFS_PERIOD


def window_dynamics(
    a: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate per-step dynamics over ``m`` steps.

    Returns:
        ``(A_w, S)`` with ``A_w = A^m`` and ``S = I + A + ... + A^(m-1)``,
        so a constant per-step drive ``d`` accumulates to ``S d`` over the
        window.
    """
    if m < 1:
        raise SimulationError("window must cover at least one thermal step")
    n = a.shape[0]
    a_w = np.eye(n)
    s = np.zeros((n, n))
    for _ in range(m):
        s = s + a_w
        a_w = a_w @ a
    return a_w, s


class StateSpacePolicy(DFSPolicy):
    """Window-scale deadbeat state feedback with a thermal-state observer.

    Args:
        platform: the platform whose thermal/power models define the
            dynamics (the scenario runner injects it).
        margin: setpoint is ``t_max - margin`` Celsius — the headroom
            absorbs model aggregation error and mid-window overshoot
            (temperatures are only regulated at window boundaries).
        observer_gain: correction gain in (0, 1] applied to the core
            entries of the state estimate each window.
        window: DFS period in seconds (the runner injects the scenario's).
    """

    name = "Bhat-SS"

    def __init__(
        self,
        platform: Platform,
        *,
        margin: float = 2.0,
        observer_gain: float = 1.0,
        window: float = PAPER_DFS_PERIOD,
    ) -> None:
        if margin < 0:
            raise SimulationError("margin must be >= 0")
        if not 0.0 < observer_gain <= 1.0:
            raise SimulationError("observer_gain must lie in (0, 1]")
        if window <= 0:
            raise SimulationError("window must be positive")
        self.platform = platform
        self.margin = float(margin)
        self.observer_gain = float(observer_gain)
        self.window = float(window)

        thermal = platform.thermal
        steps = max(1, int(round(self.window / thermal.dt)))
        a_w, s = window_dynamics(thermal.a_matrix, steps)
        injection = platform.power.injection_matrix()
        self._a_w = a_w
        #: Window response of node temperatures to core power (n x cores).
        self._w = (s * thermal.b_vector[None, :]) @ injection
        self._s_c = s @ thermal.c_vector
        self._cores = np.asarray(platform.core_indices, dtype=int)
        self._g = self._w[self._cores, :]
        self._x_hat: np.ndarray | None = None
        self._p_applied = np.zeros(len(self._cores))

    def reset(self) -> None:
        self._x_hat = None
        self._p_applied = np.zeros(len(self._cores))

    def _observe(self, measured: np.ndarray) -> np.ndarray:
        """Predict-correct the full node-state estimate."""
        if self._x_hat is None:
            # Cold observer: seed every node at the mean core reading (the
            # simulator starts from a uniform temperature, so this is exact
            # on the first window of a fresh run).
            self._x_hat = np.full(self._a_w.shape[0], float(np.mean(measured)))
        else:
            self._x_hat = (
                self._a_w @ self._x_hat
                + self._w @ self._p_applied
                + self._s_c
            )
        core_est = self._x_hat[self._cores]
        self._x_hat[self._cores] = core_est + self.observer_gain * (
            measured - core_est
        )
        return self._x_hat

    def frequencies(self, context: ControlContext) -> np.ndarray:
        measured = np.asarray(context.core_temperatures, dtype=float)
        if len(measured) != len(self._cores):
            raise SimulationError(
                f"{self.name}: platform has {len(self._cores)} cores, "
                f"sensor reported {len(measured)}"
            )
        x_hat = self._observe(measured)
        setpoint = context.t_max - self.margin
        # Free response: predicted next-boundary core temps at zero power.
        free = (self._a_w @ x_hat + self._s_c)[self._cores]
        try:
            p_cmd = np.linalg.solve(self._g, setpoint - free)
        except np.linalg.LinAlgError:
            p_cmd, *_ = np.linalg.lstsq(self._g, setpoint - free, rcond=None)
        scaling = self.platform.power.scaling
        p_cmd = np.clip(p_cmd, 0.0, scaling.p_max)
        f_allowed = np.asarray(
            scaling.frequency_for_power(p_cmd), dtype=float
        )
        freqs = np.minimum(context.required_frequency, f_allowed)
        # The observer propagates what we *command*; the busy/idle split is
        # unknown to the controller, so assume busy (worst case, consistent
        # with the setpoint margin).
        self._p_applied = np.asarray(
            scaling.power(freqs), dtype=float
        )
        return freqs
