"""Receding-horizon MPC baseline: re-solve the convex program every window.

The paper avoids online optimization by precomputing the Phase-1 table and
looking it up at run time (section 3.3).  This policy is the natural MPC
comparison point: at every DFS boundary it re-solves the *same* convex
program (`repro.core.protemp`) at the measured worst-case temperature and
the current frequency demand, applies the first window of the plan, and
repeats at the next boundary.

It reuses the optimizer's accelerated machinery — compiled constraint
stacks are platform-only and amortize across windows, and consecutive
windows warm-start from the previous optimum — so the baseline reflects
what online solving actually costs rather than a strawman cold solver.
The per-start-temperature memoizations are cleared each window (every
measured temperature is a fresh key; see
:meth:`~repro.core.protemp.ProTempOptimizer.clear_start_caches`).

With ``horizon_windows=1`` the program solved per window is *exactly* the
table generator's per-cell program, so MPC at an on-grid state agrees with
the table lookup to solver tolerance (a unit test pins this down).  Longer
horizons hold the plan feasible across several windows — more conservative,
the receding-horizon safety margin.
"""

from __future__ import annotations

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.core.protemp import FrequencyAssignment, ProTempOptimizer
from repro.errors import SimulationError
from repro.platform import Platform
from repro.thermal.constants import PAPER_DFS_PERIOD


class MPCPolicy(DFSPolicy):
    """Online receding-horizon re-solve of the paper's convex program.

    Args:
        platform: the platform to optimize on (the scenario runner
            injects it).
        window: DFS period in seconds (the runner injects the scenario's).
        horizon_windows: plan length in windows; the constraints cover
            ``horizon_windows * window`` seconds but only the first window
            is applied.
        step_subsample: constrain every k-th thermal step (the sweep
            default 5 keeps per-window solves fast; 1 is the paper's
            exact formulation).
        backend: convex backend, ``"barrier"`` or ``"scipy"``.
    """

    name = "MPC"

    def __init__(
        self,
        platform: Platform,
        *,
        window: float = PAPER_DFS_PERIOD,
        horizon_windows: int = 1,
        step_subsample: int = 5,
        backend: str = "barrier",
    ) -> None:
        if window <= 0:
            raise SimulationError("window must be positive")
        if horizon_windows < 1:
            raise SimulationError("horizon_windows must be >= 1")
        self.platform = platform
        self.horizon_windows = int(horizon_windows)
        self.optimizer = ProTempOptimizer(
            platform,
            horizon=float(window) * self.horizon_windows,
            step_subsample=step_subsample,
            backend=backend,  # type: ignore[arg-type]
        )
        self.solves = 0
        self.backoff_windows = 0
        self.shutdown_windows = 0
        self._warm: FrequencyAssignment | None = None

    def reset(self) -> None:
        self.solves = 0
        self.backoff_windows = 0
        self.shutdown_windows = 0
        self._warm = None
        self.optimizer.clear_start_caches()

    def frequencies(self, context: ControlContext) -> np.ndarray:
        n = len(context.core_temperatures)
        t_hot = float(np.max(context.core_temperatures))
        # Same worst-case simplification as the table (paper section 3.2):
        # a plan solved for a uniform start at the hottest reading
        # dominates the true trajectory under the monotone thermal model.
        self.optimizer.clear_start_caches()
        assignment = self.optimizer.solve(
            t_hot, context.required_frequency, warm_from=self._warm
        )
        self.solves += 1
        if not assignment.feasible:
            f_star = self.optimizer.max_feasible_target(t_hot)
            if f_star <= 0.0:
                self.shutdown_windows += 1
                self._warm = None
                return np.zeros(n)
            # 0.5% under the bisected boundary: max_feasible_target is
            # only accurate to its bisection tolerance (~1 MHz), so an
            # epsilon-backoff can land on the infeasible side.
            assignment = self.optimizer.solve(t_hot, f_star * 0.995)
            self.solves += 1
            if not assignment.feasible:
                self.shutdown_windows += 1
                self._warm = None
                return np.zeros(n)
            self.backoff_windows += 1
        self._warm = assignment
        return assignment.frequencies.copy()
