"""Run-time DFS policies and the thermal management unit."""

from repro.control.basic_dfs import BasicDFSPolicy
from repro.control.integral_regulator import IntegralRegulatorPolicy
from repro.control.manager import (
    ThermalManagementUnit,
    required_average_frequency,
)
from repro.control.mpc import MPCPolicy
from repro.control.policy import ControlContext, DFSPolicy, NoTCPolicy
from repro.control.protemp_policy import ProTempPolicy
from repro.control.state_space import StateSpacePolicy

__all__ = [
    "BasicDFSPolicy",
    "ControlContext",
    "DFSPolicy",
    "IntegralRegulatorPolicy",
    "MPCPolicy",
    "NoTCPolicy",
    "ProTempPolicy",
    "StateSpacePolicy",
    "ThermalManagementUnit",
    "required_average_frequency",
]
