"""Run-time DFS policies and the thermal management unit."""

from repro.control.basic_dfs import BasicDFSPolicy
from repro.control.manager import (
    ThermalManagementUnit,
    required_average_frequency,
)
from repro.control.policy import ControlContext, DFSPolicy, NoTCPolicy
from repro.control.protemp_policy import ProTempPolicy

__all__ = [
    "BasicDFSPolicy",
    "ControlContext",
    "DFSPolicy",
    "NoTCPolicy",
    "ProTempPolicy",
    "ThermalManagementUnit",
    "required_average_frequency",
]
