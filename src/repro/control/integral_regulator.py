"""Adjustable-gain integral thermal regulator (Rao et al. baseline).

Rao et al. (arXiv:1507.06357) regulate core temperature with a per-core
integral controller on a temperature *setpoint*: the commanded speed is the
integral of the temperature error, so the core settles exactly at the
setpoint under sustained load instead of oscillating around a trip
threshold the way Basic-DFS does.

The controlled variable here is the normalized frequency command
``u_i in [u_min, 1]``::

    u_i(k+1) = clip(u_i(k) + gain * (setpoint - T_i(k)), u_min, 1)
    f_i(k)   = min(required_frequency, u_i(k) * f_max)

The clip *is* the anti-windup: the integral state lives inside the
actuator's feasible range, so after a long cool (or hot) stretch the
controller responds immediately instead of first unwinding an unbounded
accumulated error.  ``gain`` is the adjustable knob of the paper's title —
larger values track the setpoint faster but overshoot more on the thermal
lag of the RC network.
"""

from __future__ import annotations

import numpy as np

from repro.control.policy import ControlContext, DFSPolicy
from repro.errors import SimulationError


class IntegralRegulatorPolicy(DFSPolicy):
    """Per-core adjustable-gain integral regulator on a temperature setpoint.

    Args:
        setpoint: target core temperature (Celsius); defaults just under
            the paper's ``t_max`` (100 C) at 95 C.
        gain: integral gain in normalized-frequency units per Celsius of
            error per DFS window.
        u_min: floor of the normalized frequency command; 0 allows full
            shutdown, a small positive value keeps cores trickling.
    """

    name = "Rao-Integral"

    def __init__(
        self,
        setpoint: float = 95.0,
        gain: float = 0.05,
        u_min: float = 0.0,
    ) -> None:
        if gain <= 0:
            raise SimulationError("integral gain must be positive")
        if not 0.0 <= u_min <= 1.0:
            raise SimulationError("u_min must lie in [0, 1]")
        self.setpoint = float(setpoint)
        self.gain = float(gain)
        self.u_min = float(u_min)
        self._u: np.ndarray | None = None  # lazily sized integral state

    def reset(self) -> None:
        self._u = None

    def frequencies(self, context: ControlContext) -> np.ndarray:
        temps = np.asarray(context.core_temperatures, dtype=float)
        n = len(temps)
        if self._u is None or len(self._u) != n:
            # Start at full speed: a cold platform should not be throttled
            # while the integrator charges up.
            self._u = np.ones(n)
        error = self.setpoint - temps
        self._u = np.clip(self._u + self.gain * error, self.u_min, 1.0)
        return np.minimum(
            context.required_frequency, self._u * context.f_max
        )
