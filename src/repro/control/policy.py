"""DFS policy interface and the No-TC baseline.

A policy is consulted once per DFS window by the simulator's thermal
management unit with a :class:`ControlContext` snapshot (sensor readings,
required average frequency, window index) and returns the per-core
frequencies to apply for the next window.  Policies may also expose a
per-thermal-step hook for intra-window actions; the paper's policies do not
need one (Basic-DFS's shutdown decision happens at window boundaries, which
is what lets cores sail past the threshold mid-window — Figure 1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ControlContext:
    """Snapshot handed to a policy at a DFS window boundary.

    Attributes:
        window_index: index of the window about to start (0-based).
        time: simulation time at the boundary (s).
        core_temperatures: sensor readings for each core (Celsius).
        required_frequency: average core frequency needed to serve the
            backlog and expected arrivals (Hz), already capped at f_max.
        f_max: platform maximum core frequency (Hz).
        t_max: maximum allowed temperature (Celsius).
    """

    window_index: int
    time: float
    core_temperatures: np.ndarray
    required_frequency: float
    f_max: float
    t_max: float


class DFSPolicy(abc.ABC):
    """Base class for window-granularity frequency policies."""

    #: Human-readable policy name (used in reports and figures).
    name: str = "policy"

    @abc.abstractmethod
    def frequencies(self, context: ControlContext) -> np.ndarray:
        """Per-core frequencies (Hz) to apply for the coming window."""

    def reset(self) -> None:
        """Clear any internal state before a fresh simulation run."""


class NoTCPolicy(DFSPolicy):
    """No temperature control (the paper's "No-TC" reference).

    Frequencies are scaled only to match the application performance level:
    every core runs at the required average frequency, with no thermal
    feedback whatsoever.
    """

    name = "No-TC"

    def frequencies(self, context: ControlContext) -> np.ndarray:
        n = len(context.core_temperatures)
        return np.full(n, context.required_frequency)
