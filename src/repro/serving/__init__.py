"""Long-lived scenario serving: warm caches, streamed outcomes, one runner.

The paper's two-phase split — expensive offline Phase-1 tables, cheap
online Phase-2 lookups — is the shape of a serving system, and this
package is that system: ``protemp serve`` keeps one process-wide
:class:`~repro.scenario.ScenarioRunner` (warm table cache, optimizer
cache, outcome store) alive across requests, accepts scenario configs in
the ``protemp run`` JSON format over HTTP or stdin/NDJSON, and streams
each outcome as a JSON-lines event the moment it finishes — store hits
replay instantly, ahead of misses still solving.

Four modules:

* `repro.serving.jobs` — the job layer: submissions, per-job event logs
  and progress counters, the bounded worker pool shared across requests,
  graceful drain, idempotency-key replay;
* `repro.serving.state` — :class:`JobJournal`, the SQLite job journal
  behind ``protemp serve --state``: a restarted service re-enqueues
  interrupted jobs (finished cells replay from the outcome store) and
  answers idempotency-key resubmits across processes;
* `repro.serving.service` — the :class:`ScenarioService` core plus the
  stdlib HTTP transport and the stdin/NDJSON loop;
* `repro.serving.client` — :class:`ServiceClient`, the ``urllib``-only
  client used by ``protemp submit``, tests, and CI.

See docs/SERVING.md for endpoints, the event schema, warm-cache
lifecycle, and drain semantics.
"""

from repro.serving.client import ServiceClient, wait_for_server
from repro.serving.jobs import DEFAULT_MAX_WORKERS, Job, JobManager
from repro.serving.service import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ScenarioService,
    make_server,
    serve,
    serve_stdin,
)
from repro.serving.state import JobJournal, JournalEntry

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_PORT",
    "Job",
    "JobJournal",
    "JobManager",
    "JournalEntry",
    "ScenarioService",
    "ServiceClient",
    "make_server",
    "serve",
    "serve_stdin",
    "wait_for_server",
]
