"""Durable job state: the SQLite journal behind ``protemp serve --state``.

:class:`JobJournal` records every submitted job — its config (canonical
JSON), optional idempotency key, lifecycle state, and final counters —
in a single SQLite file, so a restarted service can pick up where the
previous process died:

* jobs that never reached a terminal state are **re-enqueued** on boot:
  the journaled config re-expands to the same grid, finished cells
  replay from the outcome store (zero re-solves), and only the cells the
  crash interrupted execute again;
* finished jobs are **resurrected lazily** when a client asks for them
  (status lookups and idempotency-key replays keep working across
  restarts without loading the whole history into memory);
* job numbering resumes past the journal's highest id, so restarted
  services never reuse a ``job-NNNNNN``.

The journal is intentionally *not* an event store: the per-outcome rows
live in the outcome store (content-addressed, shared across jobs), so
journal writes happen only on submit and on state transitions — a few
rows per job, regardless of grid size.

Like `repro.scenario.store_sql`, the file is WAL-mode, carries its
``schema_version`` in a ``meta`` table, and upgrades through registered
:data:`STATE_MIGRATIONS` (a future layout refuses to open).
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServiceError

#: Current journal schema version (see STATE_MIGRATIONS for the history).
STATE_SCHEMA_VERSION = 2

#: Cross-process write-lock patience (milliseconds).
BUSY_TIMEOUT_MS = 10_000

#: Job states the journal treats as terminal (mirrors jobs.JOB_STATES).
_TERMINAL_STATES = ("done", "failed")

#: Ordered schema migrations: ``STATE_MIGRATIONS[v]`` upgrades a
#: version-``v`` journal to ``v + 1`` (version 0 is the empty file).
STATE_MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {}


def _migration(version: int) -> Callable[
    [Callable[[sqlite3.Connection], None]],
    Callable[[sqlite3.Connection], None],
]:
    def register(
        func: Callable[[sqlite3.Connection], None],
    ) -> Callable[[sqlite3.Connection], None]:
        if version in STATE_MIGRATIONS:
            raise ServiceError(
                f"duplicate job-journal schema migration for version {version}"
            )
        STATE_MIGRATIONS[version] = func
        return func

    return register


@_migration(0)
def _initial_schema(connection: sqlite3.Connection) -> None:
    """Version 0 -> 1: the jobs table."""
    connection.execute(
        "CREATE TABLE IF NOT EXISTS jobs ("
        " job_id TEXT PRIMARY KEY,"
        " config TEXT NOT NULL,"
        " idempotency_key TEXT UNIQUE,"
        " state TEXT NOT NULL,"
        " error TEXT,"
        " n_scenarios INTEGER NOT NULL,"
        " scenarios_executed INTEGER NOT NULL DEFAULT 0,"
        " outcomes_replayed INTEGER NOT NULL DEFAULT 0,"
        " failed INTEGER NOT NULL DEFAULT 0,"
        " created_at REAL NOT NULL,"
        " finished_at REAL)"
    )


@_migration(1)
def _add_priority(connection: sqlite3.Connection) -> None:
    """Version 1 -> 2: per-job scheduling priority.

    Jobs journaled before the admission-control release ran at the
    default priority, so backfilling 0 preserves their behavior exactly.
    """
    connection.execute(
        "ALTER TABLE jobs ADD COLUMN priority INTEGER NOT NULL DEFAULT 0"
    )


def canonical_config(config: dict[str, Any]) -> str:
    """Canonical JSON for a scenario config (idempotency comparisons).

    Two submits with the same key must carry the *same request*; key
    order and whitespace do not make a config different, so comparisons
    happen on this canonical form.

    Raises:
        ServiceError: when the config is not JSON-serializable (contains
            NaN/Infinity or non-JSON types).
    """
    try:
        return json.dumps(
            config, sort_keys=True, allow_nan=False, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"scenario config is not canonical JSON: {exc}", status=400
        ) from exc


@dataclass(frozen=True)
class JournalEntry:
    """One journaled job row (see the ``jobs`` table)."""

    job_id: str
    config: dict[str, Any]
    config_canonical: str
    idempotency_key: str | None
    state: str
    error: str | None
    n_scenarios: int
    scenarios_executed: int
    outcomes_replayed: int
    failed: int
    created_at: float
    finished_at: float | None
    priority: int = 0

    @property
    def finished(self) -> bool:
        """True when the journaled state is terminal."""
        return self.state in _TERMINAL_STATES


class JobJournal:
    """Persistent job table for a durable :class:`~repro.serving.JobManager`.

    Args:
        path: the journal file (``protemp serve --state PATH``); created
            with parents on first open.

    Thread-safe (one shared connection behind a mutex) and WAL-mode so a
    liveness probe can read the file while the service writes it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._mutex = threading.RLock()
        self._connection: sqlite3.Connection | None = None

    # -- connection / schema lifecycle --------------------------------------

    def _connect_locked(self) -> sqlite3.Connection:
        if self._connection is not None:
            return self._connection
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(
                self.path, check_same_thread=False, isolation_level=None
            )
        except (OSError, sqlite3.Error) as exc:
            raise ServiceError(
                f"cannot open job journal {self.path}: {exc}"
            ) from exc
        try:
            connection.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS:d}")
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            self._ensure_schema_locked(connection)
        except BaseException:
            connection.close()
            raise
        self._connection = connection
        return connection

    def _ensure_schema_locked(self, connection: sqlite3.Connection) -> None:
        try:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row[0]) if row is not None else 0
            if version > STATE_SCHEMA_VERSION:
                raise ServiceError(
                    f"job journal {self.path} has schema version {version}, "
                    f"newer than this build's {STATE_SCHEMA_VERSION}; "
                    "upgrade the package instead of reading a future layout"
                )
            while version < STATE_SCHEMA_VERSION:
                migrate = STATE_MIGRATIONS.get(version)
                if migrate is None:
                    raise ServiceError(
                        f"no job-journal schema migration from version "
                        f"{version} (journal {self.path})"
                    )
                migrate(connection)
                version += 1
            connection.execute(
                "INSERT INTO meta(key, value) VALUES('schema_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(version),),
            )
            connection.execute("COMMIT")
        except sqlite3.Error as exc:
            connection.execute("ROLLBACK")
            raise ServiceError(
                f"cannot initialize job journal {self.path}: {exc}"
            ) from exc
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def schema_version(self) -> int:
        """The journal file's current schema version (tests, tooling)."""
        with self._mutex:
            connection = self._connect_locked()
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            return int(row[0]) if row is not None else 0

    def close(self) -> None:
        """Close the underlying connection (idempotent; reopens on use)."""
        with self._mutex:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes --------------------------------------------------------------

    def record_submit(
        self,
        job_id: str,
        config: dict[str, Any],
        *,
        idempotency_key: str | None,
        n_scenarios: int,
        created_at: float,
        priority: int = 0,
    ) -> None:
        """Journal a freshly accepted job (state ``queued``).

        Raises:
            ServiceError: when the id or idempotency key is already
                journaled (the manager checks first; this is the
                last-line uniqueness guarantee).
        """
        with self._mutex:
            connection = self._connect_locked()
            try:
                connection.execute(
                    "INSERT INTO jobs (job_id, config, idempotency_key,"
                    " state, error, n_scenarios, created_at, priority)"
                    " VALUES (?, ?, ?, 'queued', NULL, ?, ?, ?)",
                    (
                        job_id,
                        canonical_config(config),
                        idempotency_key,
                        n_scenarios,
                        created_at,
                        priority,
                    ),
                )
            except sqlite3.IntegrityError as exc:
                raise ServiceError(
                    f"job journal {self.path} already holds job {job_id!r} "
                    f"or idempotency key {idempotency_key!r}: {exc}",
                    status=409,
                ) from exc
            except sqlite3.Error as exc:
                raise ServiceError(
                    f"cannot write job journal {self.path}: {exc}"
                ) from exc

    def record_status(self, status: dict[str, Any]) -> None:
        """Journal a job's state transition (a :meth:`Job.status` snapshot).

        Called on queued→running and on the terminal transition, so the
        journal always knows whether a job needs re-enqueueing after a
        crash and what the final counters were.
        """
        with self._mutex:
            connection = self._connect_locked()
            try:
                connection.execute(
                    "UPDATE jobs SET state = ?, error = ?,"
                    " scenarios_executed = ?, outcomes_replayed = ?,"
                    " failed = ?, finished_at = ? WHERE job_id = ?",
                    (
                        status["state"],
                        status["error"],
                        status["scenarios_executed"],
                        status["outcomes_replayed"],
                        status["failed"],
                        status["finished_at"],
                        status["job_id"],
                    ),
                )
            except sqlite3.Error as exc:
                raise ServiceError(
                    f"cannot write job journal {self.path}: {exc}"
                ) from exc

    # -- reads ---------------------------------------------------------------

    _COLUMNS = (
        "job_id, config, idempotency_key, state, error, n_scenarios,"
        " scenarios_executed, outcomes_replayed, failed, created_at,"
        " finished_at, priority"
    )

    def _entry(self, row: "tuple[Any, ...]") -> JournalEntry:
        try:
            config = json.loads(row[1])
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"unreadable config for job {row[0]!r} in journal "
                f"{self.path}: {exc}"
            ) from exc
        return JournalEntry(
            job_id=row[0],
            config=config,
            config_canonical=row[1],
            idempotency_key=row[2],
            state=row[3],
            error=row[4],
            n_scenarios=int(row[5]),
            scenarios_executed=int(row[6]),
            outcomes_replayed=int(row[7]),
            failed=int(row[8]),
            created_at=float(row[9]),
            finished_at=float(row[10]) if row[10] is not None else None,
            priority=int(row[11]),
        )

    def _select(
        self, where: str = "", params: "tuple[Any, ...]" = ()
    ) -> list[JournalEntry]:
        with self._mutex:
            connection = self._connect_locked()
            try:
                rows = connection.execute(
                    f"SELECT {self._COLUMNS} FROM jobs {where}"
                    " ORDER BY job_id",
                    params,
                ).fetchall()
            except sqlite3.Error as exc:
                raise ServiceError(
                    f"cannot read job journal {self.path}: {exc}"
                ) from exc
        return [self._entry(row) for row in rows]

    def entry(self, job_id: str) -> JournalEntry | None:
        """The journaled row for `job_id`, or None."""
        entries = self._select("WHERE job_id = ?", (job_id,))
        return entries[0] if entries else None

    def entries(self) -> list[JournalEntry]:
        """Every journaled job, ordered by id."""
        return self._select()

    def find_by_key(self, idempotency_key: str) -> JournalEntry | None:
        """The job journaled under `idempotency_key`, or None."""
        entries = self._select(
            "WHERE idempotency_key = ?", (idempotency_key,)
        )
        return entries[0] if entries else None

    def unfinished(self) -> list[JournalEntry]:
        """Jobs whose journaled state is not terminal (boot recovery)."""
        return self._select("WHERE state NOT IN ('done', 'failed')")

    def max_job_number(self) -> int:
        """The highest ``job-NNNNNN`` number journaled (0 when empty).

        Restarted managers resume numbering past this, so a recovered
        service never hands out an id the journal already knows.
        """
        with self._mutex:
            connection = self._connect_locked()
            try:
                rows = connection.execute(
                    "SELECT job_id FROM jobs"
                ).fetchall()
            except sqlite3.Error as exc:
                raise ServiceError(
                    f"cannot read job journal {self.path}: {exc}"
                ) from exc
        numbers = [0]
        for (job_id,) in rows:
            _, _, suffix = job_id.partition("-")
            if suffix.isdigit():
                numbers.append(int(suffix))
        return max(numbers)
