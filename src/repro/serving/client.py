"""Client for the ``protemp serve`` HTTP service (stdlib ``urllib`` only).

Used by ``protemp submit``, the test suite, and CI — and importable by
anything that wants to talk to a running service::

    from repro.serving.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit(config)                  # {"job_id": ..., ...}
    for event in client.stream(job["job_id"]):   # NDJSON events, live
        print(event)

Every transport/protocol failure is raised as a
:class:`~repro.errors.ServiceError` carrying the HTTP status and — when
the server produced one — the structured error body's message, so
callers never have to parse ``urllib`` exceptions.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from repro.errors import ServiceError

#: Connect/read timeout for non-streaming control requests (seconds).
DEFAULT_TIMEOUT = 30.0


class ServiceClient:
    """Thin HTTP client bound to one service base URL.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8765"`` (no trailing slash
            needed).
        timeout: socket timeout for control requests; event streams use
            no read timeout (a long solve may sit between events).
    """

    def __init__(
        self, base_url: str, *, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        path: str,
        *,
        body: dict | None = None,
        stream: bool = False,
        headers: dict | None = None,
    ):
        """Open a request; returns the live response object.

        Raises:
            ServiceError: with the server's structured message on HTTP
                errors, or a transport message when unreachable.
        """
        request = urllib.request.Request(
            self.base_url + path,
            data=(
                json.dumps(body, allow_nan=False).encode()
                if body is not None
                else None
            ),
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST" if body is not None else "GET",
        )
        try:
            return urllib.request.urlopen(
                request, timeout=None if stream else self.timeout
            )
        except urllib.error.HTTPError as exc:
            message, retry_after_s = self._error_details(exc)
            raise ServiceError(
                message, status=exc.code, retry_after_s=retry_after_s
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach scenario service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    @staticmethod
    def _error_details(
        exc: urllib.error.HTTPError,
    ) -> tuple[str, float | None]:
        """Prefer the server's structured error body over the status line.

        Returns the rendered message plus the body's ``retry_after_s``
        backoff hint (present on 429 overload rejections, None otherwise)
        so the raised :class:`ServiceError` carries both.
        """
        try:
            payload = json.loads(exc.read().decode())
            error = payload["error"]
            message = f"{error['type']}: {error['message']}"
        except Exception:
            return f"HTTP {exc.code}: {exc.reason}", None
        retry_after = payload.get("retry_after_s")
        if not isinstance(retry_after, (int, float)) or isinstance(
            retry_after, bool
        ):
            retry_after = None
        return message, retry_after

    def _get_json(self, path: str):
        with self._request(path) as response:
            return json.loads(response.read().decode())

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz`` — liveness plus runner/cache counters."""
        return self._get_json("/healthz")

    def registry(self) -> dict:
        """``GET /registry`` — the ``protemp list --json`` payload."""
        return self._get_json("/registry")

    def jobs(self) -> list[dict]:
        """``GET /jobs`` — every job's status snapshot."""
        return self._get_json("/jobs")

    def status(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one job's status/progress counters."""
        return self._get_json(f"/jobs/{job_id}")

    def metrics(self, *, format: str | None = None) -> dict | str:
        """``GET /metrics`` — the service's metrics snapshot.

        Returns the versioned JSON snapshot by default; pass
        ``format="prometheus"`` for the text exposition format (returned
        as a string).
        """
        if format == "prometheus":
            with self._request("/metrics?format=prometheus") as response:
                return response.read().decode()
        return self._get_json("/metrics")

    def submit(
        self,
        config: dict,
        *,
        idempotency_key: str | None = None,
        priority: int | None = None,
    ) -> dict:
        """``POST /jobs`` — submit a config, return ``{"job_id", ...}``.

        Args:
            config: the scenario config object.
            idempotency_key: optional retry token (sent as the
                ``Idempotency-Key`` header).  Resubmitting the same
                config under the same key returns the existing job —
                ``idempotent_replay`` is true in the response — instead
                of running it twice; a different config under the same
                key is a 409 :class:`ServiceError`.
            priority: optional scheduling priority (sent as the
                ``X-Priority`` header); higher runs first, default 0.

        Raises:
            ServiceError: with ``status=429`` and a ``retry_after_s``
                backoff hint when the service's admission queue is full.
        """
        headers: dict[str, str] = {}
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        if priority is not None:
            headers["X-Priority"] = str(priority)
        with self._request(
            "/jobs", body=config, headers=headers or None
        ) as response:
            return json.loads(response.read().decode())

    def stream(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/events`` — yield events as the server emits them.

        The iterator ends after the terminal ``done`` event (the server
        closes the connection when the job is finished).
        """
        response = self._request(f"/jobs/{job_id}/events", stream=True)
        try:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            response.close()

    def submit_and_stream(
        self,
        config: dict,
        *,
        idempotency_key: str | None = None,
        priority: int | None = None,
    ) -> Iterator[dict]:
        """Submit, then stream the job's events (two-request convenience).

        The first yielded event is the ``job`` acceptance event, so
        callers still learn the job id.
        """
        accepted = self.submit(
            config, idempotency_key=idempotency_key, priority=priority
        )
        yield from self.stream(accepted["job_id"])

    def wait(self, job_id: str) -> dict:
        """Block until the job finishes; return its ``done`` event."""
        last: dict | None = None
        for event in self.stream(job_id):
            last = event
        if last is None or last.get("event") != "done":
            raise ServiceError(
                f"event stream for {job_id} ended without a done event"
            )
        return last


def wait_for_server(
    base_url: str, *, timeout: float = 30.0, interval: float = 0.2
) -> dict:
    """Poll ``/healthz`` until the service answers (service boot helper).

    Returns:
        The first successful health payload.

    Raises:
        ServiceError: when the service does not come up within `timeout`.
    """
    client = ServiceClient(base_url, timeout=min(5.0, timeout))
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.health()
        except ServiceError as exc:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"scenario service at {base_url} did not become healthy "
                    f"within {timeout:.0f}s: {exc}"
                ) from exc
            time.sleep(interval)
