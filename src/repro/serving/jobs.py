"""Job layer of the scenario service: submissions, events, and draining.

A *job* is one submitted scenario config: the expanded grid plus a growing
event log.  The :class:`JobManager` owns a bounded worker pool shared by
every concurrent submission and drives each job through two phases:

1. **replay pass** — every cell already present in the runner's outcome
   store is answered immediately, in grid order, without touching the
   pool's scenario slots (store hits stream ahead of misses still
   solving);
2. **execute pass** — the misses are fanned out over the shared pool;
   each finished scenario appends an event the moment it completes (and
   is persisted to the outcome store by the runner, so an interrupted or
   drained service keeps every finished cell).

Events are plain JSON-compatible dicts (the NDJSON lines the HTTP layer
streams); :meth:`Job.events` is a blocking iterator over the log that
multiple subscribers can consume concurrently — a late subscriber replays
the full log from the start, a live one blocks until the next event or
the terminal ``done`` event.

Graceful drain (``SIGTERM``): :meth:`JobManager.drain` stops accepting
new submissions (:class:`~repro.errors.ServiceError` with status 503) and
blocks until every queued and in-flight scenario has finished — nothing
is cancelled, and every completed cell reached the outcome store.

Durability (``protemp serve --state``): give the manager a
:class:`~repro.serving.state.JobJournal` and every submission and state
transition is journaled.  A restarted manager **re-enqueues** each job
the previous process left unfinished — its finished cells replay from
the outcome store, so recovery re-solves only what the crash actually
interrupted — and **resurrects** finished jobs lazily on lookup.  A
client-supplied *idempotency key* makes submits retry-safe: the same key
returns the existing job (even across restarts) instead of running the
grid twice; the same key with a *different* config is a 409.

Admission control (``protemp serve --queue-capacity``): the manager can
bound its backlog, measured in *scenario cells* (accepted but not yet
completed).  A submission that would push the backlog past the capacity
is rejected with a :class:`~repro.errors.ServiceError` carrying status
429 and a ``retry_after_s`` estimate — the client sees a structured
overload signal instead of unbounded queueing.  Each job also carries a
client-chosen **priority** (higher runs first; default 0): the worker
pool is a priority queue, so an urgent grid jumps ahead of queued bulk
work without preempting anything already running.
"""

from __future__ import annotations

import heapq
import itertools
import sys
import threading
import time
from typing import Callable, Iterator, Sequence

from repro.errors import ReproError, ScenarioError, ServiceError
from repro.observability import MetricsRegistry
from repro.scenario.registry import (
    ASSIGNMENTS,
    PLATFORMS,
    POLICIES,
    SENSORS,
    WORKLOADS,
)
from repro.scenario.runner import ScenarioOutcome, ScenarioRunner
from repro.scenario.specs import ScenarioSpec, scenario_grid_from_config
from repro.serving.state import JobJournal, JournalEntry, canonical_config

#: Job lifecycle states (terminal: ``done``, ``failed``).
JOB_STATES = ("queued", "running", "done", "failed")

#: Default size of the shared scenario worker pool.
DEFAULT_MAX_WORKERS = 2

#: Per-cell wall-time guess used for ``retry_after_s`` until the service
#: has measured its own ``scenario_execute_seconds`` distribution.
DEFAULT_CELL_SECONDS = 1.0


class _WorkerPool:
    """Priority-ordered replacement for the job layer's thread pool.

    Tasks are ``(priority, fn, args)``; higher priority pops first,
    equal priorities run in submission (FIFO) order via a monotonically
    increasing tiebreaker, which preserves the pre-priority behavior for
    a service where every submit uses the default.  ``shutdown`` lets
    already-queued tasks drain (nothing is cancelled) and then joins the
    workers — the semantics :meth:`JobManager.drain` relies on.
    """

    def __init__(
        self, max_workers: int, *, thread_name_prefix: str = "protemp-serve"
    ) -> None:
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._tiebreak = itertools.count()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"{thread_name_prefix}-{i}",
                daemon=True,
            )
            for i in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(
        self, fn: Callable, *args: object, priority: int = 0
    ) -> None:
        """Enqueue ``fn(*args)``; raises once :meth:`shutdown` started."""
        with self._cond:
            if self._closed:
                raise ServiceError("worker pool is shut down")
            heapq.heappush(
                self._heap, (-priority, next(self._tiebreak), fn, args)
            )
            self._cond.notify()

    def queued(self) -> int:
        """Tasks accepted but not yet picked up by a worker."""
        with self._cond:
            return len(self._heap)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    return  # closed and drained
                _, _, fn, args = heapq.heappop(self._heap)
            try:
                fn(*args)
            except Exception as exc:  # a task must never kill its worker
                sys.stderr.write(f"[jobs] worker task crashed: {exc}\n")

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting tasks, drain the queue, optionally join."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()


def validate_specs(specs: Sequence[ScenarioSpec]) -> None:
    """Reject specs referencing unregistered components at submit time.

    Registry names are only resolved when a scenario executes; a service
    must instead fail the *submission* (a structured 4xx) rather than
    accept a job that can only ever emit per-scenario errors.

    Raises:
        ScenarioError: naming the first unknown registry reference.
    """
    for spec in specs:
        PLATFORMS.get(spec.platform.name)
        WORKLOADS.get(spec.workload.name)
        POLICIES.get(spec.policy.name)
        SENSORS.get(spec.sensor.name)
        ASSIGNMENTS.get(spec.assignment)


class Job:
    """One submitted scenario config: expanded specs plus an event log.

    Not constructed directly — :meth:`JobManager.submit` creates jobs.
    All mutation happens under an internal condition variable; readers
    (:meth:`status`, :meth:`events`) are safe from any thread.

    Attributes:
        job_id: stable identifier (``job-000001``, monotonically assigned).
        specs: the expanded scenario grid, in grid order.
        total: number of scenarios in the grid (a resurrected job keeps
            its journaled count even if the config no longer expands).
        idempotency_key: the client-supplied submit key, if any.
        priority: scheduling priority (higher runs first; default 0).
        timings: per-phase wall-time breakdown (`queued_s`,
            `replay_pass_s`, `replayed_wall_s`, `executed_wall_s`,
            `total_s`) — phases appear as the job reaches them.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[ScenarioSpec],
        *,
        idempotency_key: str | None = None,
        priority: int = 0,
        created_at: float | None = None,
        on_state: "Callable[[Job], None] | None" = None,
        on_cell: "Callable[[], None] | None" = None,
    ) -> None:
        self.job_id = job_id
        self.specs = list(specs)
        self.total = len(self.specs)
        self.idempotency_key = idempotency_key
        self.priority = priority
        self.created_at = created_at if created_at is not None else time.time()
        self.finished_at: float | None = None
        self.state = "queued"
        self.error: str | None = None
        self.scenarios_executed = 0
        self.outcomes_replayed = 0
        self.failed = 0
        self.timings: dict[str, float] = {
            "replayed_wall_s": 0.0,
            "executed_wall_s": 0.0,
        }
        self._accepted_monotonic = time.monotonic()
        self._events: list[dict] = []
        self._cond = threading.Condition()
        self._on_state = on_state
        self._on_cell = on_cell

    # -- read side ---------------------------------------------------------

    @property
    def completed(self) -> int:
        """Scenarios answered so far (executed + replayed + failed)."""
        with self._cond:
            return self.scenarios_executed + self.outcomes_replayed + self.failed

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        with self._cond:
            return self.state in ("done", "failed")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns:
            True when the job finished, False on timeout.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while self.state not in ("done", "failed"):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def status(self) -> dict:
        """JSON-compatible status/progress snapshot (the status endpoint)."""
        with self._cond:
            return {
                "job_id": self.job_id,
                "state": self.state,
                "n_scenarios": self.total,
                "completed": (
                    self.scenarios_executed + self.outcomes_replayed + self.failed
                ),
                "scenarios_executed": self.scenarios_executed,
                "outcomes_replayed": self.outcomes_replayed,
                "failed": self.failed,
                "created_at": self.created_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "idempotency_key": self.idempotency_key,
                "priority": self.priority,
                "timings": dict(self.timings),
            }

    def events(self, *, follow: bool = True) -> Iterator[dict]:
        """Iterate the event log; optionally block for events still coming.

        Args:
            follow: block until the terminal event when True (the
                streaming endpoint); False returns only what is already
                logged.

        Yields:
            Event dicts in emission order.  Every subscriber sees the
            complete log regardless of when it subscribes.
        """
        index = 0
        while True:
            with self._cond:
                while (
                    follow
                    and index >= len(self._events)
                    and self.state not in ("done", "failed")
                ):
                    self._cond.wait()
                batch = self._events[index:]
                index = len(self._events)
                finished = self.state in ("done", "failed")
            yield from batch
            if not batch and not follow:
                return
            if finished and index >= len(self._events):
                with self._cond:
                    if index >= len(self._events):
                        return

    # -- write side (JobManager only) --------------------------------------

    def _emit(self, event: dict) -> None:
        with self._cond:
            event["seq"] = len(self._events)
            event["job_id"] = self.job_id
            self._events.append(event)
            self._cond.notify_all()

    def _notify_state(self) -> None:
        """Report a state transition to the manager's journal hook.

        Journal failures must not kill the worker thread driving the job
        (the job itself is still correct in memory), so they are logged
        and swallowed.
        """
        if self._on_state is None:
            return
        try:
            self._on_state(self)
        except Exception as exc:
            sys.stderr.write(
                f"[jobs] journal write failed for {self.job_id}: {exc}\n"
            )

    def _notify_cell(self) -> None:
        """Report one completed cell to the manager's backlog accounting.

        Called *outside* the job condition so the manager's lock is never
        acquired while a job lock is held with callers waiting.
        """
        if self._on_cell is None:
            return
        try:
            self._on_cell()
        except Exception as exc:
            sys.stderr.write(
                f"[jobs] backlog accounting failed for {self.job_id}: {exc}\n"
            )

    def _set_timing(self, name: str, value: float) -> None:
        with self._cond:
            self.timings[name] = value

    def _start(self) -> None:
        with self._cond:
            started = self.state == "queued"
            if started:
                self.state = "running"
                self.timings["queued_s"] = (
                    time.monotonic() - self._accepted_monotonic
                )
        self._emit(
            {
                "event": "job",
                "n_scenarios": self.total,
                "priority": self.priority,
            }
        )
        if started:
            self._notify_state()

    def _record_outcome(self, index: int, outcome: ScenarioOutcome) -> None:
        # Counter, event, and the possible terminal transition happen
        # under ONE condition acquisition: were they separate, two
        # threads finishing the job's last two scenarios could emit
        # ``done`` before (or instead of) the final outcome event.
        with self._cond:
            if outcome.outcome_cache_hit:
                self.outcomes_replayed += 1
                self.timings["replayed_wall_s"] += outcome.wall_time_s or 0.0
            else:
                self.scenarios_executed += 1
                self.timings["executed_wall_s"] += outcome.wall_time_s or 0.0
            self._emit(
                {
                    "event": "outcome",
                    "index": index,
                    "spec_hash": outcome.spec_hash,
                    "scenario": outcome.spec.label,
                    "outcome_cache_hit": outcome.outcome_cache_hit,
                    "row": outcome.summary_row(),
                }
            )
            self._maybe_finish()
        self._notify_cell()

    def _record_error(self, index: int, spec: ScenarioSpec, exc: Exception) -> None:
        with self._cond:
            self.failed += 1
            self._emit(
                {
                    "event": "scenario_error",
                    "index": index,
                    "spec_hash": spec.spec_hash,
                    "scenario": spec.label,
                    "error": {
                        "type": type(exc).__name__,
                        "message": str(exc),
                    },
                }
            )
            self._maybe_finish()
        self._notify_cell()

    def _maybe_finish(self) -> None:
        # State change and terminal event are appended under one
        # condition acquisition (Condition wraps an RLock), so a
        # subscriber never observes a terminal state without the ``done``
        # event being in the log.
        finished = False
        with self._cond:
            if (
                self.state == "running"
                and self.scenarios_executed
                + self.outcomes_replayed
                + self.failed
                >= self.total
            ):
                self.state = "done" if self.failed == 0 else "failed"
                self.finished_at = time.time()
                self.timings["total_s"] = self.finished_at - self.created_at
                self._emit(self._done_event())
                finished = True
        if finished:
            self._notify_state()

    def _fail(self, exc: Exception) -> None:
        """Whole-job failure (dispatch crashed before/while fanning out)."""
        with self._cond:
            if self.state in ("done", "failed"):
                return
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
            self.finished_at = time.time()
            self.timings["total_s"] = self.finished_at - self.created_at
            self._emit(self._done_event())
        self._notify_state()

    def _done_event(self) -> dict:
        with self._cond:
            return {
                "event": "done",
                "state": self.state,
                "n_scenarios": self.total,
                "scenarios_executed": self.scenarios_executed,
                "outcomes_replayed": self.outcomes_replayed,
                "failed": self.failed,
                "wall_time_s": (self.finished_at or time.time())
                - self.created_at,
                "error": self.error,
            }


class JobManager:
    """Owns the job table and the bounded worker pool shared across jobs.

    Args:
        runner: the process-wide (thread-safe) :class:`ScenarioRunner`
            whose warm caches every job shares.
        max_workers: scenario worker threads shared by *all* concurrent
            submissions — the service's load bound.
        journal: optional :class:`~repro.serving.state.JobJournal`; when
            given, submissions and state transitions persist, job
            numbering resumes past the journal's highest id, and jobs
            the previous process left unfinished are re-enqueued
            immediately (their finished cells replay from the outcome
            store, so recovery re-solves only interrupted work).
        queue_capacity: optional bound on the backlog, in scenario
            cells (accepted but not yet completed).  A submission that
            would exceed it is rejected with status 429 and a
            ``retry_after_s`` estimate; None (the default) keeps the
            historical unbounded behavior.  Recovered jobs are re-admitted
            regardless of capacity — they were accepted before the
            restart.
        metrics: registry for job/admission telemetry; defaults to the
            runner's registry so one ``/metrics`` payload covers both.
    """

    def __init__(
        self,
        runner: ScenarioRunner,
        *,
        max_workers: int = DEFAULT_MAX_WORKERS,
        journal: JobJournal | None = None,
        queue_capacity: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be >= 1")
        if queue_capacity is not None and queue_capacity < 1:
            raise ServiceError("queue_capacity must be >= 1 when given")
        self.runner = runner
        self.max_workers = max_workers
        self.queue_capacity = queue_capacity
        self.metrics = metrics if metrics is not None else runner.metrics
        self._pool = _WorkerPool(
            max_workers, thread_name_prefix="protemp-serve"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._journal = journal
        #: idempotency key -> (job_id, canonical config) for live jobs.
        self._keys: dict[str, tuple[str, str]] = {}
        self._next_id = 1 if journal is None else journal.max_job_number() + 1
        self._closing = False
        #: Cells accepted but not yet completed, total and per live job.
        #: Submission admits against the total; each recorded cell (and a
        #: terminal transition, for cells a whole-job failure orphaned)
        #: releases — the per-job table makes release exactly-once.
        self._backlog = 0
        self._backlog_by_job: dict[str, int] = {}
        self._m_submitted = self.metrics.counter(
            "jobs_submitted_total", "jobs accepted (idempotent replays excluded)"
        )
        self._m_rejected = self.metrics.counter(
            "submits_rejected_total", "submissions rejected with 429 (queue full)"
        )
        self._m_done = self.metrics.counter(
            "jobs_completed_total", "jobs that reached state done"
        )
        self._m_failed = self.metrics.counter(
            "jobs_failed_total", "jobs that reached state failed"
        )
        self._m_depth = self.metrics.gauge(
            "queue_depth_cells", "scenario cells accepted but not completed"
        )
        if journal is not None:
            with self._lock:
                self._recover_locked()

    @property
    def durable(self) -> bool:
        """True when submissions and job state persist to a journal."""
        return self._journal is not None

    # -- journal plumbing --------------------------------------------------

    def _journal_state(self, job: Job) -> None:
        """The :class:`Job` state-transition hook.

        Journals the snapshot (when durable), counts terminal states, and
        releases whatever backlog the job still holds once it is terminal
        — for a normally finished job that is zero (every cell already
        released itself), but a whole-job failure orphans its unrecorded
        cells and they must not occupy queue capacity forever.
        """
        if job.finished:
            self._release_cells(job.job_id, job.total)
            (self._m_done if job.state == "done" else self._m_failed).inc()
        if self._journal is not None:
            self._journal.record_status(job.status())

    # -- backlog accounting ------------------------------------------------

    def _admit_cells_locked(self, job_id: str, n_cells: int) -> None:
        """Charge an accepted job's cells against the backlog."""
        if n_cells <= 0:
            return
        self._backlog += n_cells
        self._backlog_by_job[job_id] = n_cells
        self._m_depth.set(self._backlog)

    def _release_cells(self, job_id: str, n_cells: int) -> None:
        """Release up to `n_cells` of a job's backlog charge, exactly once.

        Clamped against the job's remaining charge, so the per-cell
        release and the terminal sweep in :meth:`_journal_state` can both
        run without double-counting.
        """
        with self._lock:
            remaining = self._backlog_by_job.get(job_id, 0)
            take = min(n_cells, remaining)
            if take <= 0:
                return
            left = remaining - take
            if left:
                self._backlog_by_job[job_id] = left
            else:
                del self._backlog_by_job[job_id]
            self._backlog -= take
            self._m_depth.set(self._backlog)

    def _retry_after_locked(self) -> float:
        """Estimated seconds until queue capacity frees up.

        Backlog cells divided by pool width, priced at the measured mean
        scenario execution time (or a fixed guess before any cell has
        run).  An estimate, not a promise — clients should treat it as a
        backoff hint.
        """
        mean = self.metrics.histogram(
            "scenario_execute_seconds", "per-scenario simulation wall time"
        ).mean
        per_cell = mean if mean is not None else DEFAULT_CELL_SECONDS
        estimate = self._backlog * per_cell / self.max_workers
        return round(max(estimate, 0.1), 2)

    def _recover_locked(self) -> None:
        """Re-enqueue every job the previous process left unfinished.

        The journaled config re-expands to the same grid (spec hashing is
        deterministic), so the replay pass answers every cell that
        reached the outcome store before the crash and only the
        interrupted remainder executes.  A config that no longer expands
        (e.g. a registry renamed between versions) fails the job in the
        journal instead of aborting boot.
        """
        assert self._journal is not None
        for entry in self._journal.unfinished():
            try:
                specs = scenario_grid_from_config(entry.config)
                validate_specs(specs)
            except ReproError as exc:
                self._journal.record_status(
                    {
                        "job_id": entry.job_id,
                        "state": "failed",
                        "error": (
                            "recovery could not re-expand the journaled "
                            f"config: {type(exc).__name__}: {exc}"
                        ),
                        "scenarios_executed": entry.scenarios_executed,
                        "outcomes_replayed": entry.outcomes_replayed,
                        "failed": entry.failed,
                        "finished_at": time.time(),
                    }
                )
                continue
            job = Job(
                entry.job_id,
                specs,
                idempotency_key=entry.idempotency_key,
                priority=entry.priority,
                created_at=entry.created_at,
                on_state=self._journal_state,
                on_cell=self._make_cell_hook(entry.job_id),
            )
            self._jobs[job.job_id] = job
            if entry.idempotency_key is not None:
                self._keys[entry.idempotency_key] = (
                    entry.job_id,
                    entry.config_canonical,
                )
            self._admit_cells_locked(job.job_id, job.total)
            self._pool.submit(self._dispatch, job, priority=job.priority)

    def _resurrect_locked(self, entry: JournalEntry) -> Job:
        """Rebuild an in-memory :class:`Job` from a journaled row.

        Used for *finished* jobs after a restart: status lookups and
        idempotency-key replays keep working without re-running
        anything.  The per-outcome event log is not journaled (outcome
        rows live in the outcome store), so a resurrected job's event
        stream is empty — :meth:`Job.status` is the authoritative view.
        """
        existing = self._jobs.get(entry.job_id)
        if existing is not None:
            return existing
        try:
            specs = scenario_grid_from_config(entry.config)
        except ReproError:
            specs = []  # registry drift; the snapshot below still stands
        job = Job(
            entry.job_id,
            specs,
            idempotency_key=entry.idempotency_key,
            priority=entry.priority,
            created_at=entry.created_at,
        )
        with job._cond:
            job.total = entry.n_scenarios
            job.state = entry.state
            job.error = entry.error
            job.scenarios_executed = entry.scenarios_executed
            job.outcomes_replayed = entry.outcomes_replayed
            job.failed = entry.failed
            job.finished_at = entry.finished_at
        self._jobs[entry.job_id] = job
        if entry.idempotency_key is not None:
            self._keys[entry.idempotency_key] = (
                entry.job_id,
                entry.config_canonical,
            )
        return job

    def _find_by_key_locked(self, key: str) -> tuple[Job, str] | None:
        """The live (or resurrected) job submitted under `key`, if any."""
        hit = self._keys.get(key)
        if hit is not None:
            job_id, canonical = hit
            return self._jobs[job_id], canonical
        if self._journal is not None:
            entry = self._journal.find_by_key(key)
            if entry is not None:
                return self._resurrect_locked(entry), entry.config_canonical
        return None

    # -- submission --------------------------------------------------------

    def submit(self, config: dict) -> Job:
        """Accept a scenario config (compatibility wrapper).

        See :meth:`submit_job` for the full semantics; this keeps the
        original one-value signature for callers that predate
        idempotency keys.
        """
        job, _ = self.submit_job(config)
        return job

    def _make_cell_hook(self, job_id: str) -> Callable[[], None]:
        """Per-job callback releasing one backlog cell per completion."""

        def _release_one() -> None:
            self._release_cells(job_id, 1)

        return _release_one

    def submit_job(
        self,
        config: dict,
        *,
        idempotency_key: str | None = None,
        priority: int = 0,
    ) -> tuple[Job, bool]:
        """Accept a scenario config (the ``protemp run`` JSON format).

        Expansion and registry validation happen synchronously, so a
        malformed submission is rejected here (a structured 4xx at the
        HTTP layer) and never becomes a job.  Execution is asynchronous:
        the returned job's event log fills in from pool threads.

        Args:
            config: the scenario config object.
            idempotency_key: optional client-chosen retry token.  A
                resubmit with the same key and the same config returns
                the existing job (even across service restarts when a
                journal is attached) instead of running the grid twice.
            priority: scheduling priority — higher jumps the worker
                queue (nothing running is preempted).  Persisted to the
                journal, so a recovered job keeps its place in line.
                An idempotent replay keeps the original submission's
                priority; the retry's value is ignored.

        Returns:
            ``(job, created)`` — `created` is False when the key matched
            an existing submission and that job was returned instead.

        Raises:
            ScenarioError: malformed config, unknown registry names, or a
                non-integer priority.
            ServiceError: status 409 when the key was already used with a
                *different* config; status 429 (with ``retry_after_s``)
                when the submission would exceed ``queue_capacity``;
                status 503 once draining started.
        """
        if not isinstance(config, dict):
            raise ScenarioError("scenario config must be a JSON object")
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ScenarioError(
                f"priority must be an integer, got {priority!r}"
            )
        canonical = canonical_config(config)
        specs = scenario_grid_from_config(config)
        validate_specs(specs)
        with self._lock:
            if idempotency_key is not None:
                found = self._find_by_key_locked(idempotency_key)
                if found is not None:
                    job, stored = found
                    if stored != canonical:
                        raise ServiceError(
                            f"idempotency key {idempotency_key!r} was "
                            "already used with a different config",
                            status=409,
                        )
                    return job, False
            if self._closing:
                raise ServiceError(
                    "service is draining and no longer accepts submissions",
                    status=503,
                )
            if (
                self.queue_capacity is not None
                and self._backlog + len(specs) > self.queue_capacity
            ):
                self._m_rejected.inc()
                raise ServiceError(
                    f"queue is full: {self._backlog} of "
                    f"{self.queue_capacity} scenario slots in use and the "
                    f"submission needs {len(specs)}; retry later",
                    status=429,
                    retry_after_s=self._retry_after_locked(),
                )
            job_id = f"job-{self._next_id:06d}"
            job = Job(
                job_id,
                specs,
                idempotency_key=idempotency_key,
                priority=priority,
                on_state=self._journal_state,
                on_cell=self._make_cell_hook(job_id),
            )
            self._next_id += 1
            if self._journal is not None:
                self._journal.record_submit(
                    job.job_id,
                    config,
                    idempotency_key=idempotency_key,
                    n_scenarios=job.total,
                    created_at=job.created_at,
                    priority=priority,
                )
            self._jobs[job.job_id] = job
            if idempotency_key is not None:
                self._keys[idempotency_key] = (job.job_id, canonical)
            self._admit_cells_locked(job.job_id, job.total)
            self._m_submitted.inc()
            self._pool.submit(self._dispatch, job, priority=priority)
        return job, True

    def job(self, job_id: str) -> Job:
        """Look up a job (journaled jobs resurrect across restarts).

        Raises:
            ServiceError: with status 404 for unknown ids.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None and self._journal is not None:
                entry = self._journal.entry(job_id)
                if entry is not None:
                    job = self._resurrect_locked(entry)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict:
        """Job-table tallies for the health endpoint."""
        jobs = self.jobs()
        return {
            "total": len(jobs),
            "running": sum(1 for j in jobs if not j.finished),
            "done": sum(1 for j in jobs if j.state == "done"),
            "failed": sum(1 for j in jobs if j.state == "failed"),
        }

    def queue_info(self) -> dict:
        """Admission-control snapshot (capacity, live backlog in cells)."""
        with self._lock:
            return {
                "capacity": self.queue_capacity,
                "depth_cells": self._backlog,
            }

    # -- execution ---------------------------------------------------------

    def _dispatch(self, job: Job) -> None:
        """Replay pass then execute pass (runs on the shared pool)."""
        try:
            job._start()
            started = time.monotonic()
            misses: list[tuple[int, ScenarioSpec]] = []
            with self.metrics.span("job_replay_pass"):
                for index, spec in enumerate(job.specs):
                    try:
                        replayed = self.runner.lookup(spec)
                    except ReproError as exc:
                        job._record_error(index, spec, exc)
                        continue
                    if replayed is not None:
                        job._record_outcome(index, replayed)
                    else:
                        misses.append((index, spec))
            job._set_timing("replay_pass_s", time.monotonic() - started)
            if job.total == 0:
                job._maybe_finish()
                return
            for index, spec in misses:
                self._pool.submit(
                    self._run_one, job, index, spec, priority=job.priority
                )
        except Exception as exc:  # dispatch must never die silently
            job._fail(exc)

    def _run_one(self, job: Job, index: int, spec: ScenarioSpec) -> None:
        """Execute one scenario miss (runs on the shared pool)."""
        try:
            with self.metrics.span("job_cell"):
                outcome = self.runner.run(spec)
        except Exception as exc:
            job._record_error(index, spec, exc)
        else:
            job._record_outcome(index, outcome)

    # -- shutdown ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has been called."""
        with self._lock:
            return self._closing

    def drain(self) -> None:
        """Stop accepting submissions and finish everything in flight.

        Blocks until every queued and running scenario of every job has
        completed (nothing is cancelled); because the runner persists each
        outcome as it finishes, the outcome store holds every completed
        cell when this returns.  Idempotent.

        Accepted jobs finish *before* the pool shuts down — a job whose
        dispatch is still fanning out must be able to submit its
        remaining scenarios, so the pool only closes once every job is
        terminal.
        """
        with self._lock:
            self._closing = True
            jobs = list(self._jobs.values())
        for job in jobs:
            job.wait()
        self._pool.shutdown(wait=True)
        if self._journal is not None:
            self._journal.close()
