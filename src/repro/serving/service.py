"""The long-lived scenario service: HTTP endpoints and the stdin loop.

``protemp serve`` keeps **one process-wide** :class:`ScenarioRunner` —
warm Phase-1 table cache, optimizer cache, and outcome store — alive
across requests, so the second submission of a grid replays instantly
instead of re-solving.  Two transports share the same
:class:`ScenarioService` core:

* **HTTP** (:func:`make_server` / :func:`serve`): a stdlib
  :class:`~http.server.ThreadingHTTPServer`; scenario configs in the
  ``protemp run`` JSON format are POSTed and outcomes stream back as
  JSON-lines events the moment each finishes;
* **stdin/NDJSON** (:func:`serve_stdin`): one config JSON per input
  line, event lines on stdout — the same warm-cache semantics with no
  socket (pipelines, tests, batch hosts).

Endpoints (see docs/SERVING.md for the event schema and curl examples):

========  =====================  ===========================================
Method    Path                   Meaning
========  =====================  ===========================================
GET       ``/healthz``           liveness + warm-cache/runner counters
GET       ``/metrics``           telemetry snapshot (versioned JSON; add
                                 ``?format=prometheus`` for text format)
GET       ``/registry``          registered components (``protemp list``)
POST      ``/jobs``              submit a config -> ``{"job_id": ...}``
                                 (retry-safe via ``Idempotency-Key``;
                                 ``X-Priority`` jumps the queue)
GET       ``/jobs``              all jobs' status snapshots
GET       ``/jobs/<id>``         one job's status/progress counters and
                                 per-phase timing breakdown
GET       ``/jobs/<id>/events``  NDJSON event stream (blocks until done)
POST      ``/run``               submit + stream in one request
========  =====================  ===========================================

Errors are structured JSON bodies reusing the `repro.errors` hierarchy::

    {"error": {"type": "ScenarioError", "message": "unknown policy ..."}}

Overload rejections (``--queue-capacity`` exceeded) are 429s whose body
carries a top-level ``retry_after_s`` hint (also sent as a
``Retry-After`` header, rounded up to whole seconds)::

    {"error": {"type": "ServiceError", "message": "queue is full: ..."},
     "retry_after_s": 3.5}

Graceful drain: ``SIGTERM``/``SIGINT`` stop new submissions (503), wait
for in-flight scenarios to finish (every completed cell is persisted to
the outcome store), then close the listener and exit 0.

Durability: ``protemp serve --state jobs.sqlite`` journals every job
(`repro.serving.state`); a SIGKILLed service relaunched with the same
``--state`` re-enqueues interrupted jobs (finished cells replay from the
outcome store — zero re-solves) and answers idempotency-key resubmits
with the original job.
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import IO
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    OutcomeStoreError,
    ReproError,
    ScenarioError,
    ServiceError,
)
from repro.scenario.runner import ScenarioRunner
from repro.serving.jobs import DEFAULT_MAX_WORKERS, Job, JobManager
from repro.serving.state import JobJournal

#: Default bind address of ``protemp serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


def _error_payload(exc: Exception) -> dict:
    """The structured error body (`repro.errors` type name + message).

    Overload rejections additionally carry a top-level ``retry_after_s``
    backoff hint so clients can implement polite retry without parsing
    the message text.
    """
    payload = {"error": {"type": type(exc).__name__, "message": str(exc)}}
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    return payload


def _error_status(exc: Exception) -> int:
    """Map an exception to the HTTP status of its structured response."""
    if isinstance(exc, ServiceError) and exc.status is not None:
        return exc.status
    if isinstance(exc, (ScenarioError, OutcomeStoreError, ValueError)):
        return 400
    return 500


class ScenarioService:
    """Transport-independent service core shared by HTTP and stdin modes.

    Args:
        runner: the process-wide runner; built from the remaining
            arguments when None.
        max_workers: scenario worker threads shared across jobs.
        table_cache_dir: persistent Phase-1 table cache directory.
        outcome_store: persistent outcome store (directory path,
            ``sqlite:`` URL / ``*.sqlite`` path, or
            :class:`~repro.scenario.store.OutcomeStore`).
        state: optional job-journal path (``protemp serve --state``);
            when given, submissions survive restarts — unfinished jobs
            re-enqueue on boot (finished cells replay from the outcome
            store) and idempotency keys replay across processes.
        queue_capacity: optional admission-control bound on the backlog,
            in scenario cells (``protemp serve --queue-capacity``);
            submissions that would exceed it get a structured 429 with
            ``retry_after_s`` instead of queueing unboundedly.

    Example::

        service = ScenarioService(outcome_store="outcomes/")
        job = service.submit(json.load(open("config.json")))
        for event in job.events():
            print(event)
    """

    def __init__(
        self,
        *,
        runner: ScenarioRunner | None = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        table_cache_dir: str | Path | None = None,
        outcome_store=None,
        state: str | Path | None = None,
        queue_capacity: int | None = None,
    ) -> None:
        self.runner = runner or ScenarioRunner(
            table_cache_dir=table_cache_dir, outcome_store=outcome_store
        )
        self.metrics = self.runner.metrics
        self.journal = JobJournal(state) if state is not None else None
        self.manager = JobManager(
            self.runner,
            max_workers=max_workers,
            journal=self.journal,
            queue_capacity=queue_capacity,
            metrics=self.metrics,
        )
        self.started_at = time.time()

    # -- operations (raise repro.errors; transports map to responses) ------

    def submit(self, config: dict) -> Job:
        """Submit one scenario config (see :meth:`JobManager.submit`)."""
        return self.manager.submit(config)

    def submit_job(
        self,
        config: dict,
        *,
        idempotency_key: str | None = None,
        priority: int = 0,
    ) -> tuple[Job, bool]:
        """Submit with an optional idempotency key and priority.

        Returns ``(job, created)`` — see :meth:`JobManager.submit_job`.
        """
        return self.manager.submit_job(
            config, idempotency_key=idempotency_key, priority=priority
        )

    def job(self, job_id: str) -> Job:
        """Look up a job (404-mapped :class:`ServiceError` when unknown)."""
        return self.manager.job(job_id)

    def health_payload(self) -> dict:
        """Liveness + the warm-cache counters CI and monitoring assert on."""
        from repro.cli import package_version

        return {
            "status": "draining" if self.manager.draining else "ok",
            "version": package_version(),
            "uptime_s": time.time() - self.started_at,
            "durable_state": (
                str(self.journal.path) if self.journal is not None else None
            ),
            "jobs": self.manager.counts(),
            "queue": self.manager.queue_info(),
            "runner": {
                "tables_built": self.runner.tables_built,
                "scenarios_executed": self.runner.scenarios_executed,
                "outcomes_replayed": self.runner.outcomes_replayed,
            },
        }

    def metrics_payload(self) -> dict:
        """The ``/metrics`` JSON body (a versioned registry snapshot)."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """The ``/metrics?format=prometheus`` text exposition."""
        return self.metrics.render_prometheus()

    def registry_payload(self) -> dict:
        """The ``protemp list --json`` payload (shared with the CLI)."""
        from repro.cli import list_payload

        return list_payload()

    def jobs_payload(self) -> list[dict]:
        """Status snapshots of every job, oldest first."""
        return [job.status() for job in self.manager.jobs()]

    def drain(self) -> None:
        """Refuse new submissions and wait for in-flight work (idempotent)."""
        self.manager.drain()


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto a :class:`ScenarioService`.

    One instance per request (stdlib semantics); the service is attached
    to the *server* by :func:`make_server`.  HTTP/1.0 with
    ``Connection: close`` keeps the NDJSON stream simple: the event
    stream ends when the job finishes and the socket closes.
    """

    server_version = "protemp-serve"

    @property
    def service(self) -> ScenarioService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Access log on stderr (the server log CI dumps on failure)."""
        sys.stderr.write(
            "[%s] %s\n" % (self.log_date_time_string(), format % args)
        )

    # -- response helpers --------------------------------------------------

    def _send_json(
        self, status: int, payload, headers: dict[str, str] | None = None
    ) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: Exception) -> None:
        headers = None
        retry_after = getattr(exc, "retry_after_s", None)
        if retry_after is not None:
            # Retry-After is delta-seconds (an integer per RFC 9110);
            # the precise float stays in the JSON body.
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
        self._send_json(_error_status(exc), _error_payload(exc), headers)

    def _stream_events(self, job: Job) -> None:
        """NDJSON event stream: one line per event, flushed immediately."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in job.events():
                self.wfile.write(
                    (json.dumps(event, allow_nan=False) + "\n").encode()
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the job keeps running

    def _read_submission(self) -> tuple[dict, str | None, int]:
        """Parse a submit body into ``(config, idempotency_key, priority)``.

        The key travels either as the ``Idempotency-Key`` header or in
        an envelope body ``{"config": ..., "idempotency_key": ...}``;
        sending both (with different values) is a 400.  Priority travels
        as the ``X-Priority`` header or the envelope's ``"priority"``
        field (same disagreement rule); it must be an integer and
        defaults to 0.
        """
        length = self.headers.get("Content-Length")
        if length is None:
            raise ServiceError(
                "submissions require a Content-Length body", status=400
            )
        try:
            raw = self.rfile.read(int(length))
            config = json.loads(raw)
        except (ValueError, OSError) as exc:
            raise ServiceError(
                f"request body is not valid JSON: {exc}", status=400
            ) from exc
        key = self.headers.get("Idempotency-Key")
        priority: int | None = None
        header_priority = self.headers.get("X-Priority")
        if header_priority is not None:
            try:
                priority = int(header_priority)
            except ValueError as exc:
                raise ServiceError(
                    f"X-Priority must be an integer, got {header_priority!r}",
                    status=400,
                ) from exc
        if (
            isinstance(config, dict)
            and "config" in config
            and set(config) <= {"config", "idempotency_key", "priority"}
        ):
            body_key = config.get("idempotency_key")
            if body_key is not None and not isinstance(body_key, str):
                raise ServiceError(
                    "idempotency_key must be a string", status=400
                )
            if key is not None and body_key is not None and key != body_key:
                raise ServiceError(
                    "Idempotency-Key header and body disagree", status=400
                )
            key = key if key is not None else body_key
            body_priority = config.get("priority")
            if body_priority is not None:
                if isinstance(body_priority, bool) or not isinstance(
                    body_priority, int
                ):
                    raise ServiceError(
                        "priority must be an integer", status=400
                    )
                if priority is not None and priority != body_priority:
                    raise ServiceError(
                        "X-Priority header and body disagree", status=400
                    )
                priority = body_priority
            config = config["config"]
        if not isinstance(config, dict):
            raise ServiceError(
                "scenario config must be a JSON object", status=400
            )
        return config, key, priority if priority is not None else 0

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            parts = urlsplit(self.path)
            path = parts.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send_json(200, self.service.health_payload())
            elif path == "/metrics":
                query = parse_qs(parts.query)
                fmt = query.get("format", ["json"])[-1]
                if fmt == "prometheus":
                    self._send_text(
                        200,
                        self.service.metrics_text(),
                        "text/plain; version=0.0.4",
                    )
                elif fmt == "json":
                    self._send_json(200, self.service.metrics_payload())
                else:
                    raise ServiceError(
                        f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')",
                        status=400,
                    )
            elif path == "/registry":
                self._send_json(200, self.service.registry_payload())
            elif path == "/jobs":
                self._send_json(200, self.service.jobs_payload())
            elif path.startswith("/jobs/") and path.endswith("/events"):
                job_id = path[len("/jobs/"):-len("/events")]
                self._stream_events(self.service.job(job_id))
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                self._send_json(200, self.service.job(job_id).status())
            else:
                raise ServiceError(f"no such endpoint: {path}", status=404)
        except Exception as exc:  # every failure is a structured body
            self._send_error_json(exc)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            path = urlsplit(self.path).path.rstrip("/")
            if path == "/jobs":
                config, key, priority = self._read_submission()
                job, created = self.service.submit_job(
                    config, idempotency_key=key, priority=priority
                )
                self._send_json(
                    202,
                    {
                        "job_id": job.job_id,
                        "n_scenarios": job.total,
                        "idempotent_replay": not created,
                    },
                )
            elif path == "/run":
                config, key, priority = self._read_submission()
                job, _ = self.service.submit_job(
                    config, idempotency_key=key, priority=priority
                )
                self._stream_events(job)
            else:
                raise ServiceError(f"no such endpoint: {path}", status=404)
        except Exception as exc:
            self._send_error_json(exc)

    def do_PUT(self) -> None:  # noqa: N802
        self._send_error_json(
            ServiceError(f"method PUT not allowed on {self.path}", status=405)
        )

    do_DELETE = do_PUT


def make_server(
    service: ScenarioService,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> ThreadingHTTPServer:
    """A bound (not yet serving) threading HTTP server for `service`.

    Pass ``port=0`` to bind an ephemeral port (tests); the actual address
    is ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: ScenarioService,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    install_signal_handlers: bool = True,
) -> int:
    """Run the HTTP service until SIGTERM/SIGINT, then drain gracefully.

    Returns:
        Process exit code (0 on a clean drain).
    """
    server = make_server(service, host=host, port=port)
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        sys.stderr.write(
            f"[serve] received {signal.Signals(signum).name}, draining...\n"
        )
        stop.set()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    thread = threading.Thread(
        target=server.serve_forever, name="protemp-http", daemon=True
    )
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    sys.stderr.write(
        f"[serve] listening on http://{bound_host}:{bound_port} "
        f"(workers={service.manager.max_workers})\n"
    )
    try:
        stop.wait()
    finally:
        # Drain first (in-flight scenarios finish and persist), then stop
        # accepting connections, so clients streaming a finishing job see
        # its terminal event before the socket closes.
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
    sys.stderr.write("[serve] drained, exiting\n")
    return 0


def serve_stdin(
    service: ScenarioService,
    in_stream: IO[str] | None = None,
    out_stream: IO[str] | None = None,
) -> int:
    """NDJSON loop: one config per input line, event lines on stdout.

    Jobs run sequentially (each line's events are fully streamed before
    the next line is read) but share the service's warm caches, so a
    repeated config line replays from the outcome store.  A malformed
    line emits one structured ``error`` event and the loop continues.

    Returns:
        Process exit code: 0 when every line's job finished without
        failures, 1 otherwise.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    failures = 0

    def _write(payload: dict) -> None:
        out_stream.write(json.dumps(payload, allow_nan=False) + "\n")
        out_stream.flush()

    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            config = json.loads(line)
            if not isinstance(config, dict):
                raise ScenarioError("scenario config must be a JSON object")
            job = service.submit(config)
        except (ReproError, ValueError) as exc:
            failures += 1
            _write({"event": "error", **_error_payload(exc)})
            continue
        for event in job.events():
            _write(event)
            if event.get("event") == "done" and (
                event.get("failed") or event.get("error")
            ):
                failures += 1
    service.drain()
    return 0 if failures == 0 else 1
