"""Sun Niagara (UltraSPARC T1) 8-core floorplan from Figure 5 of the paper.

The paper evaluates Pro-Temp on a model of Sun's 8-core Niagara [2].  Figure 5
shows the structure this module encodes:

* two rows of four processing cores (P1-P4 bottom, P5-P8 top),
* L2 cache banks above the top row and below the bottom row,
* small L2 buffers flanking each core row,
* a full-width interconnect / DRAM-bridge strip between the core rows.

The thermally relevant property (paper section 5.3): P1, P4, P5 and P8 sit at
the row ends next to the cooler buffer blocks and the die edge, while P2, P3,
P6 and P7 are sandwiched between two hot cores, so the optimizer assigns the
periphery cores higher frequencies (Figure 10).

Dimensions are parameterized through :class:`NiagaraConfig`; the defaults are
a plausible 90 nm-era layout with ~6 mm^2 cores.  Absolute sizes only shift
the thermal calibration; the adjacency structure is what the experiments rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan.floorplan import Block, BlockKind, Floorplan
from repro.floorplan.geometry import Rect
from repro.units import mm

#: Names of the processing cores in paper order.
CORE_NAMES = ("P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8")

#: Cores adjacent to cooler cache/buffer structure (paper section 5.3).
PERIPHERY_CORES = ("P1", "P4", "P5", "P8")

#: Cores sandwiched between two other cores.
MIDDLE_CORES = ("P2", "P3", "P6", "P7")


@dataclass(frozen=True)
class NiagaraConfig:
    """Dimensions (in metres) of the Niagara-8 floorplan of Figure 5.

    Attributes:
        core_width: width of each processing core.
        core_height: height of each processing core.
        buffer_width: width of the L2 buffer strips flanking the core rows.
        cache_height: height of the top/bottom L2 cache rows.
        xbar_height: height of the central interconnect/DRAM-bridge strip.
    """

    core_width: float = mm(2.5)
    core_height: float = mm(2.5)
    buffer_width: float = mm(1.0)
    cache_height: float = mm(3.0)
    xbar_height: float = mm(2.0)

    @property
    def die_width(self) -> float:
        """Total die width: four cores plus two flanking buffers."""
        return 4 * self.core_width + 2 * self.buffer_width

    @property
    def die_height(self) -> float:
        """Total die height: two cache rows, two core rows, one crossbar."""
        return 2 * self.cache_height + 2 * self.core_height + self.xbar_height


def build_niagara8(config: NiagaraConfig | None = None) -> Floorplan:
    """Build the Figure 5 floorplan.

    Block order: P1..P8 first (so core state indices are 0..7), then caches,
    buffers and the interconnect strip.

    Args:
        config: dimensions; defaults to :class:`NiagaraConfig`.

    Returns:
        A validated :class:`Floorplan` named ``"niagara8"``.
    """
    cfg = config or NiagaraConfig()
    w_core, h_core = cfg.core_width, cfg.core_height
    w_buf = cfg.buffer_width
    h_cache, h_xbar = cfg.cache_height, cfg.xbar_height
    die_w = cfg.die_width

    y_cache_bot = 0.0
    y_row1 = h_cache
    y_xbar = y_row1 + h_core
    y_row2 = y_xbar + h_xbar
    y_cache_top = y_row2 + h_core

    def core_row(names: tuple[str, ...], y: float) -> list[Block]:
        blocks = []
        for i, name in enumerate(names):
            x = w_buf + i * w_core
            blocks.append(
                Block(name, Rect(x, y, w_core, h_core), BlockKind.CORE)
            )
        return blocks

    cores = core_row(CORE_NAMES[:4], y_row1) + core_row(CORE_NAMES[4:], y_row2)

    caches = [
        Block("L2_SW", Rect(0.0, y_cache_bot, die_w / 2, h_cache), BlockKind.CACHE),
        Block("L2_SE", Rect(die_w / 2, y_cache_bot, die_w / 2, h_cache), BlockKind.CACHE),
        Block("L2_NW", Rect(0.0, y_cache_top, die_w / 2, h_cache), BlockKind.CACHE),
        Block("L2_NE", Rect(die_w / 2, y_cache_top, die_w / 2, h_cache), BlockKind.CACHE),
    ]

    buffers = [
        Block("BUF_W1", Rect(0.0, y_row1, w_buf, h_core), BlockKind.BUFFER),
        Block("BUF_E1", Rect(die_w - w_buf, y_row1, w_buf, h_core), BlockKind.BUFFER),
        Block("BUF_W2", Rect(0.0, y_row2, w_buf, h_core), BlockKind.BUFFER),
        Block("BUF_E2", Rect(die_w - w_buf, y_row2, w_buf, h_core), BlockKind.BUFFER),
    ]

    xbar = [
        Block("XBAR", Rect(0.0, y_xbar, die_w, h_xbar), BlockKind.INTERCONNECT),
    ]

    return Floorplan(blocks=cores + caches + buffers + xbar, name="niagara8")
