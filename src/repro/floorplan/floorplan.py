"""Block-level floorplan model.

A :class:`Floorplan` is an ordered collection of named, non-overlapping
rectangular :class:`Block` instances.  It is the single geometric input to the
thermal RC construction (`repro.thermal.rc`): lateral conductances follow the
block adjacency computed here, exactly as in HotSpot-style block models
(Skadron et al. [17] in the paper's references).

Blocks are classified by :class:`BlockKind`; the Pro-Temp optimizer treats
``CORE`` blocks as frequency-controllable and everything else as fixed
background power (the paper's "other cores ... around 30% of the power
consumption of the processing cores").
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import FloorplanError
from repro.floorplan.geometry import GEOM_TOL, Rect, bounding_box


class BlockKind(enum.Enum):
    """Functional classification of a floorplan block."""

    CORE = "core"
    CACHE = "cache"
    BUFFER = "buffer"
    INTERCONNECT = "interconnect"
    OTHER = "other"


@dataclass(frozen=True)
class Block:
    """A named rectangular floorplan block.

    Attributes:
        name: unique identifier within the floorplan (e.g. ``"P1"``).
        rect: geometric footprint.
        kind: functional classification.
    """

    name: str
    rect: Rect
    kind: BlockKind = BlockKind.OTHER

    def __post_init__(self) -> None:
        if not self.name:
            raise FloorplanError("block name must be non-empty")

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.rect.area

    @property
    def is_core(self) -> bool:
        """True for frequency-controllable processing cores."""
        return self.kind is BlockKind.CORE


@dataclass(frozen=True)
class Adjacency:
    """A shared edge between two blocks.

    Attributes:
        first: index of the first block (always < `second`).
        second: index of the second block.
        shared_length: length of the common edge (m).
        center_distance: centre-to-centre distance (m).
    """

    first: int
    second: int
    shared_length: float
    center_distance: float


@dataclass
class Floorplan:
    """An ordered set of non-overlapping blocks plus derived adjacency.

    The block order is significant: the thermal model state vector and the
    optimizer's power vector follow it.  Core blocks keep their floorplan
    order in the derived `core_indices` list, which is the P1..Pn order used
    throughout the paper's figures.

    Args:
        blocks: blocks to place; validated for uniqueness and non-overlap.
        name: human-readable floorplan name.

    Raises:
        FloorplanError: on duplicate names or overlapping blocks.
    """

    blocks: list[Block]
    name: str = "floorplan"
    _adjacencies: list[Adjacency] = field(init=False, repr=False)
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.blocks:
            raise FloorplanError("a floorplan needs at least one block")
        self._index = {}
        for i, block in enumerate(self.blocks):
            if block.name in self._index:
                raise FloorplanError(f"duplicate block name {block.name!r}")
            self._index[block.name] = i
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                if a.rect.overlaps(b.rect):
                    raise FloorplanError(
                        f"blocks {a.name!r} and {b.name!r} overlap"
                    )
        self._adjacencies = self._compute_adjacencies()

    # -- construction helpers ---------------------------------------------

    def _compute_adjacencies(self) -> list[Adjacency]:
        result: list[Adjacency] = []
        for i, a in enumerate(self.blocks):
            for j in range(i + 1, len(self.blocks)):
                b = self.blocks[j]
                shared = a.rect.shared_edge_length(b.rect)
                if shared > GEOM_TOL:
                    result.append(
                        Adjacency(
                            first=i,
                            second=j,
                            shared_length=shared,
                            center_distance=a.rect.center_distance(b.rect),
                        )
                    )
        return result

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def index_of(self, name: str) -> int:
        """Index of the block called `name`.

        Raises:
            FloorplanError: if no block has that name.
        """
        try:
            return self._index[name]
        except KeyError:
            raise FloorplanError(f"unknown block {name!r}") from None

    def block(self, name: str) -> Block:
        """The block called `name`."""
        return self.blocks[self.index_of(name)]

    @property
    def adjacencies(self) -> list[Adjacency]:
        """All shared edges between block pairs (first < second)."""
        return list(self._adjacencies)

    def neighbors(self, name_or_index: str | int) -> list[int]:
        """Indices of blocks sharing an edge with the given block.

        This is the paper's ``Adj_i`` set from Eq. 1.
        """
        if isinstance(name_or_index, str):
            idx = self.index_of(name_or_index)
        else:
            idx = name_or_index
            if not 0 <= idx < len(self.blocks):
                raise FloorplanError(f"block index {idx} out of range")
        result = []
        for adj in self._adjacencies:
            if adj.first == idx:
                result.append(adj.second)
            elif adj.second == idx:
                result.append(adj.first)
        return result

    # -- core-oriented views ------------------------------------------------

    @property
    def core_indices(self) -> list[int]:
        """Indices of CORE blocks, in floorplan (P1..Pn) order."""
        return [i for i, b in enumerate(self.blocks) if b.is_core]

    @property
    def core_names(self) -> list[str]:
        """Names of CORE blocks, in floorplan order."""
        return [b.name for b in self.blocks if b.is_core]

    @property
    def n_cores(self) -> int:
        """Number of CORE blocks."""
        return len(self.core_indices)

    # -- geometric aggregates ------------------------------------------------

    @property
    def bounds(self) -> Rect:
        """Bounding box of all blocks (the die outline)."""
        return bounding_box([b.rect for b in self.blocks])

    @property
    def total_area(self) -> float:
        """Sum of block areas (m^2)."""
        return sum(b.area for b in self.blocks)

    @property
    def fill_ratio(self) -> float:
        """Fraction of the bounding box covered by blocks (<= 1)."""
        return self.total_area / self.bounds.area

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "name": self.name,
            "blocks": [
                {
                    "name": b.name,
                    "kind": b.kind.value,
                    "x": b.rect.x,
                    "y": b.rect.y,
                    "width": b.rect.width,
                    "height": b.rect.height,
                }
                for b in self.blocks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Floorplan":
        """Inverse of :meth:`to_dict`.

        Raises:
            FloorplanError: on missing keys or invalid geometry.
        """
        try:
            blocks = [
                Block(
                    name=item["name"],
                    kind=BlockKind(item.get("kind", "other")),
                    rect=Rect(
                        item["x"], item["y"], item["width"], item["height"]
                    ),
                )
                for item in data["blocks"]
            ]
            name = data.get("name", "floorplan")
        except (KeyError, TypeError, ValueError) as exc:
            raise FloorplanError(f"malformed floorplan data: {exc}") from exc
        return cls(blocks=blocks, name=name)

    def save_json(self, path: str | Path) -> None:
        """Write the floorplan to a JSON file."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, allow_nan=False)
        )

    @classmethod
    def load_json(cls, path: str | Path) -> "Floorplan":
        """Read a floorplan from a JSON file written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- pretty printing -------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"Floorplan {self.name!r}: {len(self.blocks)} blocks, "
                 f"{self.n_cores} cores"]
        for block in self.blocks:
            r = block.rect
            lines.append(
                f"  {block.name:<14s} {block.kind.value:<12s} "
                f"({r.x * 1e3:6.2f}, {r.y * 1e3:6.2f}) mm  "
                f"{r.width * 1e3:5.2f} x {r.height * 1e3:5.2f} mm"
            )
        return "\n".join(lines)


def validate_cover(floorplan: Floorplan, *, min_fill: float = 0.95) -> None:
    """Check that blocks tile (almost all of) the die bounding box.

    HotSpot-style RC models assume the floorplan covers the die; large gaps
    mean heat paths are missing.  This is a soft sanity check used by the
    built-in floorplans' tests rather than a hard constructor requirement,
    because partially specified floorplans are still useful for
    experimentation.

    Raises:
        FloorplanError: if the fill ratio is below `min_fill`.
    """
    ratio = floorplan.fill_ratio
    if ratio < min_fill:
        raise FloorplanError(
            f"floorplan {floorplan.name!r} covers only {ratio:.1%} of its "
            f"bounding box (need >= {min_fill:.1%})"
        )


def cores_of(floorplan: Floorplan) -> Iterable[Block]:
    """Iterate over CORE blocks in floorplan order."""
    return (b for b in floorplan.blocks if b.is_core)
