"""Floorplan geometry, block models and built-in layouts."""

from repro.floorplan.floorplan import (
    Adjacency,
    Block,
    BlockKind,
    Floorplan,
    cores_of,
    validate_cover,
)
from repro.floorplan.generators import (
    core_grid,
    core_grid_with_cache_ring,
    core_row,
)
from repro.floorplan.geometry import Rect, bounding_box
from repro.floorplan.niagara import (
    CORE_NAMES,
    MIDDLE_CORES,
    PERIPHERY_CORES,
    NiagaraConfig,
    build_niagara8,
)

__all__ = [
    "Adjacency",
    "Block",
    "BlockKind",
    "Floorplan",
    "Rect",
    "NiagaraConfig",
    "CORE_NAMES",
    "PERIPHERY_CORES",
    "MIDDLE_CORES",
    "bounding_box",
    "build_niagara8",
    "core_grid",
    "core_grid_with_cache_ring",
    "core_row",
    "cores_of",
    "validate_cover",
]
