"""Axis-aligned rectangle geometry used by floorplans.

Floorplans in this library are collections of non-overlapping axis-aligned
rectangles (blocks).  The thermal RC construction needs three geometric
primitives, all provided here:

* overlap detection (floorplan validation),
* shared-edge length between two touching rectangles (lateral thermal
  conductance is proportional to it),
* centre-to-centre distance (lateral thermal resistance is proportional to
  it).

All coordinates are in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FloorplanError

#: Geometric tolerance in metres (1 nm).  Floorplan coordinates come from
#: millimetre-scale layouts, so anything below this is numerical noise.
GEOM_TOL = 1e-9


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle anchored at its lower-left corner.

    Attributes:
        x: lower-left corner x coordinate (m).
        y: lower-left corner y coordinate (m).
        width: extent along x (m), strictly positive.
        height: extent along y (m), strictly positive.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if not (self.width > GEOM_TOL and self.height > GEOM_TOL):
            raise FloorplanError(
                f"rectangle must have positive dimensions, got "
                f"{self.width} x {self.height}"
            )
        for value in (self.x, self.y, self.width, self.height):
            if not math.isfinite(value):
                raise FloorplanError("rectangle coordinates must be finite")

    # -- derived coordinates --------------------------------------------

    @property
    def x2(self) -> float:
        """Right edge x coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge y coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Area in m^2."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point (m, m)."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    # -- relations -------------------------------------------------------

    def overlaps(self, other: "Rect") -> bool:
        """Return True if the interiors of the two rectangles intersect.

        Rectangles that merely share an edge or a corner do NOT overlap.
        """
        return (
            self.x < other.x2 - GEOM_TOL
            and other.x < self.x2 - GEOM_TOL
            and self.y < other.y2 - GEOM_TOL
            and other.y < self.y2 - GEOM_TOL
        )

    def contains(self, other: "Rect") -> bool:
        """Return True if `other` lies entirely inside (or on) this rect."""
        return (
            other.x >= self.x - GEOM_TOL
            and other.y >= self.y - GEOM_TOL
            and other.x2 <= self.x2 + GEOM_TOL
            and other.y2 <= self.y2 + GEOM_TOL
        )

    def shared_edge_length(self, other: "Rect") -> float:
        """Length of the boundary shared with `other` (m).

        Two rectangles share an edge when they touch along a vertical or
        horizontal line over a segment of positive length.  Corner contact
        counts as zero.  Overlapping rectangles also return 0; overlap is a
        validation error handled elsewhere.
        """
        if self.overlaps(other):
            return 0.0
        # Vertical contact: my right edge on their left edge, or vice versa.
        if abs(self.x2 - other.x) <= GEOM_TOL or abs(other.x2 - self.x) <= GEOM_TOL:
            lo = max(self.y, other.y)
            hi = min(self.y2, other.y2)
            return max(0.0, hi - lo)
        # Horizontal contact: my top edge on their bottom edge, or vice versa.
        if abs(self.y2 - other.y) <= GEOM_TOL or abs(other.y2 - self.y) <= GEOM_TOL:
            lo = max(self.x, other.x)
            hi = min(self.x2, other.x2)
            return max(0.0, hi - lo)
        return 0.0

    def is_adjacent(self, other: "Rect") -> bool:
        """True when the two rectangles share an edge of positive length."""
        return self.shared_edge_length(other) > GEOM_TOL

    def center_distance(self, other: "Rect") -> float:
        """Euclidean centre-to-centre distance (m)."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return math.hypot(cx2 - cx1, cy2 - cy1)

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)


def bounding_box(rects: list[Rect]) -> Rect:
    """Smallest rectangle covering all `rects`.

    Raises:
        FloorplanError: if `rects` is empty.
    """
    if not rects:
        raise FloorplanError("cannot compute the bounding box of zero rectangles")
    box = rects[0]
    for rect in rects[1:]:
        box = box.union_bounds(rect)
    return box
