"""Parametric floorplan generators.

These produce small synthetic floorplans used by tests, examples and
ablations: pure core grids, core rows, and grids surrounded by a cache ring
(a miniature of the Niagara structure).  They let the optimizer and thermal
model be exercised on 2-16 core platforms without hand-writing layouts.
"""

from __future__ import annotations

from repro.errors import FloorplanError
from repro.floorplan.floorplan import Block, BlockKind, Floorplan
from repro.floorplan.geometry import Rect
from repro.units import mm


def core_row(
    n_cores: int,
    *,
    core_width: float = mm(2.5),
    core_height: float = mm(2.5),
    name: str = "row",
) -> Floorplan:
    """A single row of `n_cores` cores named C1..Cn.

    Args:
        n_cores: number of cores (>= 1).
        core_width: per-core width (m).
        core_height: per-core height (m).
        name: floorplan name.

    Raises:
        FloorplanError: if `n_cores` < 1.
    """
    if n_cores < 1:
        raise FloorplanError("core_row needs n_cores >= 1")
    blocks = [
        Block(
            f"C{i + 1}",
            Rect(i * core_width, 0.0, core_width, core_height),
            BlockKind.CORE,
        )
        for i in range(n_cores)
    ]
    return Floorplan(blocks=blocks, name=name)


def core_grid(
    rows: int,
    cols: int,
    *,
    core_width: float = mm(2.5),
    core_height: float = mm(2.5),
    name: str = "grid",
) -> Floorplan:
    """A `rows` x `cols` grid of cores named C1..C(rows*cols), row-major.

    Raises:
        FloorplanError: if rows or cols < 1.
    """
    if rows < 1 or cols < 1:
        raise FloorplanError("core_grid needs rows >= 1 and cols >= 1")
    blocks = []
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c + 1
            blocks.append(
                Block(
                    f"C{idx}",
                    Rect(c * core_width, r * core_height, core_width, core_height),
                    BlockKind.CORE,
                )
            )
    return Floorplan(blocks=blocks, name=name)


def core_grid_with_cache_ring(
    rows: int,
    cols: int,
    *,
    core_width: float = mm(2.5),
    core_height: float = mm(2.5),
    ring_width: float = mm(2.0),
    name: str = "grid_ring",
) -> Floorplan:
    """A core grid surrounded by four cache strips (N/S/E/W).

    The ring reproduces, in miniature, the Niagara property that periphery
    cores border cooler low-power blocks.

    Raises:
        FloorplanError: if any dimension argument is non-positive.
    """
    if ring_width <= 0:
        raise FloorplanError("ring_width must be positive")
    inner = core_grid(
        rows, cols, core_width=core_width, core_height=core_height
    )
    grid_w = cols * core_width
    grid_h = rows * core_height
    blocks = [
        Block(b.name, Rect(b.rect.x + ring_width, b.rect.y + ring_width,
                           b.rect.width, b.rect.height), b.kind)
        for b in inner.blocks
    ]
    total_w = grid_w + 2 * ring_width
    blocks += [
        Block("CACHE_S", Rect(0.0, 0.0, total_w, ring_width), BlockKind.CACHE),
        Block(
            "CACHE_N",
            Rect(0.0, ring_width + grid_h, total_w, ring_width),
            BlockKind.CACHE,
        ),
        Block(
            "CACHE_W",
            Rect(0.0, ring_width, ring_width, grid_h),
            BlockKind.CACHE,
        ),
        Block(
            "CACHE_E",
            Rect(ring_width + grid_w, ring_width, ring_width, grid_h),
            BlockKind.CACHE,
        ),
    ]
    return Floorplan(blocks=blocks, name=name)
